"""Setup script.

The build uses the legacy setuptools path on purpose: this environment
is offline and has no ``wheel`` package, so PEP 660 editable installs
(``pyproject.toml`` build-system) cannot produce the editable wheel.
``python -m pip install -e . --no-build-isolation`` works through this
file everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Timing-aware wrapper cell reduction for pre-bond testing of "
        "3D-ICs (SOCC 2019 reproduction)"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # numpy floor: the kernel backends use np.minimum.at/maximum.reduceat
    # on intp index arrays and little-endian "<u8" plane views, stable
    # since the 1.22 type-promotion cleanup. The python backend runs
    # without numpy at all (see repro.runtime.backend).
    install_requires=["numpy>=1.22", "networkx"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    license="MIT",
)
