"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one table or figure of the paper
and prints it, so ``pytest benchmarks/ --benchmark-only`` reproduces
the whole evaluation section at the configured scale.

Scale: benches default to the ``smoke`` scale (b11 + b12, reduced ATPG
budgets — minutes, exercising every code path). Set ``REPRO_SCALE=
default`` (all circuits but b18) or ``REPRO_SCALE=full`` for the
complete sweeps; see DESIGN.md §6.

Runtime: ``REPRO_JOBS=N`` fans experiment cells out over N worker
processes (0 = one per CPU) and ``REPRO_CACHE_DIR=PATH`` enables the
persistent result cache, so a repeated sweep replays from disk. Both
are byte-transparent: the regenerated tables are identical either way.
"""

import os

import pytest

from repro.experiments.common import SCALES, resolve_scale
from repro.runtime import configure, trace


@pytest.fixture(scope="session")
def scale():
    if "REPRO_SCALE" not in os.environ \
            and os.environ.get("REPRO_FULL_SCALE") != "1":
        chosen = SCALES["smoke"]
    else:
        chosen = resolve_scale()
    config = configure()  # adopt REPRO_JOBS / REPRO_CACHE_DIR
    cache = (config.cache_dir or "off") \
        if not config.no_cache else "disabled"
    print(f"\n[benchmarks running at scale={chosen.name}, "
          f"jobs={config.jobs}, cache={cache}; "
          f"set REPRO_SCALE=default|full for larger sweeps, "
          f"REPRO_JOBS/REPRO_CACHE_DIR to parallelize or cache]")
    return chosen


def pytest_sessionfinish(session, exitstatus):
    """Export regression-tracked timings next to this conftest.

    ``test_bench_kernels.py`` micro-benchmarks land in
    ``BENCH_kernels.json``, the ``test_bench_eco.py`` incremental-
    session latencies in ``BENCH_eco.json`` and the
    ``test_bench_serve.py`` warm service latencies in
    ``BENCH_serve.json``; the table sweeps carry their own outputs. The files land next to this conftest so repeated
    runs are easy to diff.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    for module, filename in (("test_bench_kernels", "BENCH_kernels.json"),
                             ("test_bench_eco", "BENCH_eco.json"),
                             ("test_bench_serve", "BENCH_serve.json"),
                             ("test_bench_scaling", "BENCH_scaling.json"),
                             ("test_bench_schedule",
                              "BENCH_schedule.json")):
        timings = {}
        for bench in bench_session.benchmarks:
            if module not in (bench.fullname or ""):
                continue
            stats = bench.stats
            timings[bench.name] = {
                "mean_s": stats.mean,
                "min_s": stats.min,
                "stddev_s": stats.stddev if stats.rounds > 1 else 0.0,
                "rounds": stats.rounds,
            }
            for key, value in (bench.extra_info or {}).items():
                timings[bench.name][key] = value
        if not timings:
            continue
        path = os.path.join(os.path.dirname(__file__), filename)
        trace.write_bench_json(path, timings)
        print(f"\n[{module} timings exported to {path}]")
        tracer = trace.active()
        if tracer is not None:
            label = f"bench_{module.replace('test_bench_', '')}"
            payload = trace.build_manifest(label, timings=timings,
                                           metrics=tracer.metrics)
            manifest_path = trace.write_manifest(
                tracer.trace_dir / f"manifest-{label}.json", payload)
            print(f"[bench manifest -> {manifest_path}]")


@pytest.fixture
def echo(capsys):
    """Print through the capture manager so regenerated tables land in
    the terminal (and in bench_output.txt) even for passing tests."""
    def _echo(*parts):
        with capsys.disabled():
            print(*parts)
    return _echo
