"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one table or figure of the paper
and prints it, so ``pytest benchmarks/ --benchmark-only`` reproduces
the whole evaluation section at the configured scale.

Scale: benches default to the ``smoke`` scale (b11 + b12, reduced ATPG
budgets — minutes, exercising every code path). Set ``REPRO_SCALE=
default`` (all circuits but b18) or ``REPRO_SCALE=full`` for the
complete sweeps; see DESIGN.md §6.

Runtime: ``REPRO_JOBS=N`` fans experiment cells out over N worker
processes (0 = one per CPU) and ``REPRO_CACHE_DIR=PATH`` enables the
persistent result cache, so a repeated sweep replays from disk. Both
are byte-transparent: the regenerated tables are identical either way.
"""

import os

import pytest

from repro.experiments.common import SCALES, resolve_scale
from repro.runtime import configure, trace


@pytest.fixture(scope="session")
def scale():
    if "REPRO_SCALE" not in os.environ \
            and os.environ.get("REPRO_FULL_SCALE") != "1":
        chosen = SCALES["smoke"]
    else:
        chosen = resolve_scale()
    config = configure()  # adopt REPRO_JOBS / REPRO_CACHE_DIR
    cache = (config.cache_dir or "off") \
        if not config.no_cache else "disabled"
    print(f"\n[benchmarks running at scale={chosen.name}, "
          f"jobs={config.jobs}, cache={cache}; "
          f"set REPRO_SCALE=default|full for larger sweeps, "
          f"REPRO_JOBS/REPRO_CACHE_DIR to parallelize or cache]")
    return chosen


def pytest_sessionfinish(session, exitstatus):
    """Export per-kernel timings to ``BENCH_kernels.json``.

    Only the ``test_bench_kernels.py`` micro-benchmarks are exported —
    they are the regression-tracked hot loops; the table sweeps carry
    their own outputs. The file lands next to this conftest so repeated
    runs are easy to diff.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    kernels = {}
    for bench in bench_session.benchmarks:
        if "test_bench_kernels" not in (bench.fullname or ""):
            continue
        stats = bench.stats
        kernels[bench.name] = {
            "mean_s": stats.mean,
            "min_s": stats.min,
            "stddev_s": stats.stddev if stats.rounds > 1 else 0.0,
            "rounds": stats.rounds,
        }
    if not kernels:
        return
    path = os.path.join(os.path.dirname(__file__), "BENCH_kernels.json")
    trace.write_bench_json(path, kernels)
    print(f"\n[kernel timings exported to {path}]")
    tracer = trace.active()
    if tracer is not None:
        payload = trace.build_manifest("bench_kernels", timings=kernels,
                                       metrics=tracer.metrics)
        manifest_path = trace.write_manifest(
            tracer.trace_dir / "manifest-bench_kernels.json", payload)
        print(f"[bench manifest -> {manifest_path}]")


@pytest.fixture
def echo(capsys):
    """Print through the capture manager so regenerated tables land in
    the terminal (and in bench_output.txt) even for passing tests."""
    def _echo(*parts):
        with capsys.disabled():
            print(*parts)
    return _echo
