"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one table or figure of the paper
and prints it, so ``pytest benchmarks/ --benchmark-only`` reproduces
the whole evaluation section at the configured scale.

Scale: benches default to the ``smoke`` scale (b11 + b12, reduced ATPG
budgets — minutes, exercising every code path). Set ``REPRO_SCALE=
default`` (all circuits but b18) or ``REPRO_SCALE=full`` for the
complete sweeps; see DESIGN.md §6.
"""

import os

import pytest

from repro.experiments.common import SCALES, resolve_scale


@pytest.fixture(scope="session")
def scale():
    if "REPRO_SCALE" not in os.environ \
            and os.environ.get("REPRO_FULL_SCALE") != "1":
        chosen = SCALES["smoke"]
    else:
        chosen = resolve_scale()
    print(f"\n[benchmarks running at scale={chosen.name}; "
          f"set REPRO_SCALE=default|full for larger sweeps]")
    return chosen


@pytest.fixture
def echo(capsys):
    """Print through the capture manager so regenerated tables land in
    the terminal (and in bench_output.txt) even for passing tests."""
    def _echo(*parts):
        with capsys.disabled():
            print(*parts)
    return _echo
