"""Bench: regenerate Table III (reused FFs / additional cells /
timing violations — the paper's headline result)."""

from repro.experiments import run_table3


def test_bench_table3(benchmark, scale, echo):
    result = benchmark.pedantic(run_table3, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    ours_violations, _total = result.violation_tally("ours_tight")
    agrawal_violations, total = result.violation_tally("agrawal_tight")
    echo(f"\nHeadline shapes: ours violates {ours_violations}/{total} "
          f"(paper 0/24), Agrawal violates {agrawal_violations}/{total} "
          f"(paper 20/24)")
    assert ours_violations == 0
    assert agrawal_violations > 0
    assert result.average("ours_area", "additional") \
        <= result.average("agrawal_area", "additional")
