"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes ONE ingredient of the proposed method and
re-measures, quantifying what that ingredient buys:

* **ordering** — larger-TSV-set-first vs [4]'s inbound-first,
* **accurate wire model** — ours with wire terms zeroed (still with
  repair) vs full ours: how much of the no-violation result is the
  model vs the ECO loop,
* **sign-off repair** — ours without the ECO loop: how far the purely
  predictive layer gets,
* **d_th** — distance threshold off: routing-driven sharing radius.
"""

from dataclasses import replace

from repro.core.flow import run_wcm_flow
from repro.experiments.common import (
    dies_for_scale,
    method_config,
    prepare_die,
    run_method,
)
from repro.util.tables import AsciiTable


def _tight_config(prepared, scale):
    _area, tight = prepared.scenarios()
    return method_config("ours", tight, scale), tight


def test_bench_ablation_ordering(benchmark, scale, echo):
    def run():
        rows = []
        for circuit, die_index in dies_for_scale(scale):
            prepared = prepare_die(circuit, die_index)
            config, _tight = _tight_config(prepared, scale)
            by_size = run_method(prepared, config)
            fixed = run_method(prepared, replace(config,
                                                 order_by_set_size=False))
            rows.append((f"{circuit}_d{die_index}", by_size, fixed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(["die", "larger-first r/a", "inbound-first r/a"],
                       title="\nAblation: TSV-set processing order "
                             "(ours, tight)")
    for name, by_size, fixed in rows:
        table.add_row([
            name,
            f"{by_size.reused_scan_ffs}/{by_size.additional_wrapper_cells}",
            f"{fixed.reused_scan_ffs}/{fixed.additional_wrapper_cells}",
        ])
    echo(table.render())
    assert rows


def test_bench_ablation_wire_model(benchmark, scale, echo):
    def run():
        rows = []
        for circuit, die_index in dies_for_scale(scale):
            prepared = prepare_die(circuit, die_index)
            config, _tight = _tight_config(prepared, scale)
            full = run_method(prepared, config)
            no_wire = run_method(prepared,
                                 replace(config, use_wire_delay=False))
            rows.append((f"{circuit}_d{die_index}", full, no_wire))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["die", "accurate r/a (viol)", "wire-blind+repair r/a (viol)"],
        title="\nAblation: wire terms in the reuse model (ours, tight)",
    )
    extra_without_wire = 0
    for name, full, no_wire in rows:
        table.add_row([
            name,
            f"{full.reused_scan_ffs}/{full.additional_wrapper_cells}"
            f" ({'X' if full.timing_violation else '-'})",
            f"{no_wire.reused_scan_ffs}/{no_wire.additional_wrapper_cells}"
            f" ({'X' if no_wire.timing_violation else '-'})",
        ])
        extra_without_wire += (no_wire.additional_wrapper_cells
                               - full.additional_wrapper_cells)
    echo(table.render())
    echo(f"\nWithout wire terms the ECO loop must evict its way to "
          f"closure: {extra_without_wire:+d} additional cells total.")
    assert rows


def test_bench_ablation_repair(benchmark, scale, echo):
    def run():
        rows = []
        for circuit, die_index in dies_for_scale(scale):
            prepared = prepare_die(circuit, die_index)
            config, tight = _tight_config(prepared, scale)
            with_repair = run_method(prepared, config)
            without = run_wcm_flow(prepared.problem_tight,
                                   replace(config, signoff_repair=False))
            rows.append((f"{circuit}_d{die_index}", with_repair, without))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["die", "predict+repair r/a (viol)", "predict only r/a (viol)"],
        title="\nAblation: the ECO sign-off repair loop (ours, tight)",
    )
    residual = 0
    for name, with_repair, without in rows:
        table.add_row([
            name,
            f"{with_repair.reused_scan_ffs}/"
            f"{with_repair.additional_wrapper_cells}"
            f" ({'X' if with_repair.timing_violation else '-'})",
            f"{without.reused_scan_ffs}/{without.additional_wrapper_cells}"
            f" ({'X' if without.timing_violation else '-'})",
        ])
        residual += int(without.timing_violation)
    echo(table.render())
    echo(f"\nPredictive layer alone leaves {residual}/{len(rows)} dies "
          f"violating (the global arrival fixed point it cannot see).")
    assert all(not with_repair.timing_violation
               for _n, with_repair, _w in rows)


def test_bench_ablation_dth(benchmark, scale, echo):
    def run():
        rows = []
        for circuit, die_index in dies_for_scale(scale):
            prepared = prepare_die(circuit, die_index)
            config, _tight = _tight_config(prepared, scale)
            bounded = run_method(prepared, config)
            unbounded = run_method(prepared,
                                   replace(config, d_th_fraction=None))
            rows.append((f"{circuit}_d{die_index}", bounded, unbounded))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = AsciiTable(
        ["die", "d_th=0.8*span r/a", "no d_th r/a"],
        title="\nAblation: the distance threshold d_th (ours, tight)",
    )
    for name, bounded, unbounded in rows:
        table.add_row([
            name,
            f"{bounded.reused_scan_ffs}/{bounded.additional_wrapper_cells}",
            f"{unbounded.reused_scan_ffs}/"
            f"{unbounded.additional_wrapper_cells}",
        ])
    echo(table.render())
    assert rows
