"""Micro-benchmarks of the substrate kernels.

These time the hot loops every experiment leans on (packed fault
simulation, STA, placement, clique partitioning) on a fixed mid-size
die, so performance regressions in the substrates are visible
independently of the table sweeps.
"""

import pytest

from repro.atpg.engine import AtpgConfig, run_stuck_at_atpg
from repro.atpg.sim import CompiledCircuit
from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.core.clique import partition_cliques
from repro.core.config import Scenario, WcmConfig
from repro.core.graph import build_wcm_graph
from repro.core.problem import build_problem, tight_clock_for
from repro.core.timing_model import ReuseTimingModel
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import dedicated_plan, insert_wrappers
from repro.netlist.core import PortKind
from repro.place.placer import place_die
from repro.runtime.backend import numpy_available
from repro.runtime.config import configure
from repro.sta.timer import TimingAnalyzer
from repro.util.rng import DeterministicRng


@pytest.fixture(params=["python", "numpy"])
def backend(request):
    """Backend axis for the kernels with two implementations; the
    parametrized bench names land as separate BENCH_kernels.json
    entries, so the numpy speedup is regression-tracked per kernel."""
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=request.param)
    yield request.param
    configure(backend="python")


@pytest.fixture(scope="module")
def kernel_die():
    netlist = generate_die(die_profile("b12", 1), seed=2019)
    place_die(netlist)
    stitch_scan_chains(netlist)
    return netlist


@pytest.fixture(scope="module")
def kernel_problem(kernel_die):
    return build_problem(kernel_die, already_prepared=True)


def test_bench_generate_and_place(benchmark, echo):
    def build():
        netlist = generate_die(die_profile("b12", 1), seed=7)
        place_die(netlist)
        return netlist

    result = benchmark(build)
    assert result.gate_count == 397


def test_bench_sta(benchmark, kernel_die, backend):
    timer = TimingAnalyzer(kernel_die)
    result = benchmark(timer.analyze)
    assert result.critical_path_ps > 0


def test_bench_packed_good_simulation(benchmark, kernel_die):
    wrapped, _ = insert_wrappers(kernel_die, dedicated_plan(kernel_die))
    stitch_scan_chains(wrapped, restitch=True)
    circuit = CompiledCircuit(build_prebond_test_view(wrapped))
    rng = DeterministicRng(3)
    mask = (1 << 256) - 1
    words = [rng.getrandbits(256) for _ in range(circuit.input_count)]
    values = benchmark(circuit.simulate, words, mask)
    assert len(values) == circuit.n_nets


def test_bench_stuck_at_atpg(benchmark, kernel_die, backend):
    wrapped, _ = insert_wrappers(kernel_die, dedicated_plan(kernel_die))
    stitch_scan_chains(wrapped, restitch=True)
    view = build_prebond_test_view(wrapped)
    config = AtpgConfig(seed=3, block_width=128, max_random_blocks=6,
                        podem_fault_limit=200)
    result = benchmark.pedantic(run_stuck_at_atpg, args=(view, config),
                                rounds=1, iterations=1)
    assert result.coverage > 0.9


def test_bench_event_propagation(benchmark, kernel_die):
    """Event-driven stem propagation over every gate output net."""
    wrapped, _ = insert_wrappers(kernel_die, dedicated_plan(kernel_die))
    stitch_scan_chains(wrapped, restitch=True)
    circuit = CompiledCircuit(build_prebond_test_view(wrapped))
    rng = DeterministicRng(5)
    mask = (1 << 192) - 1
    words = [rng.getrandbits(192) for _ in range(circuit.input_count)]
    good = circuit.simulate(words, mask)
    stems = [gate.out for gate in circuit.gates]

    def run():
        detect = 0
        for nid in stems:
            detect |= circuit.propagate_stem(good, nid, 0, mask)
            detect |= circuit.propagate_stem(good, nid, 1, mask)
        return detect

    detect = benchmark(run)
    assert detect != 0


def test_bench_graph_timed(benchmark, kernel_problem, backend):
    """Grid-indexed edge sweep under the tight clock (distance active)."""
    clock = tight_clock_for(kernel_problem)
    problem = kernel_problem.retime(clock)
    config = WcmConfig.ours(Scenario.performance_optimized(clock.period_ps))

    def run():
        return build_wcm_graph(problem, PortKind.TSV_INBOUND,
                               problem.scan_ffs, config)

    graph = benchmark(run)
    assert graph.stats.nodes > 0


def test_bench_graph_and_clique(benchmark, kernel_problem):
    config = WcmConfig.agrawal(Scenario.area_optimized())
    model = ReuseTimingModel(kernel_problem, config)

    def run():
        graph = build_wcm_graph(kernel_problem, PortKind.TSV_INBOUND,
                                kernel_problem.scan_ffs, config, model)
        return partition_cliques(graph, model)

    partition = benchmark(run)
    assert partition.cliques
