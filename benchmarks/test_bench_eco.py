"""Incremental-session (ECO) latency benchmark.

Measures the median single-edit re-solve latency of a warm
:class:`WcmSession` against a cold ``build_problem`` + ``run_wcm_flow``
on the same die, over a mixed edit workload (FF moves, TSV moves,
threshold re-tunes). The speedup and both medians are exported to
``BENCH_eco.json`` per backend, so the incremental path is
regression-tracked alongside the kernel micro-benchmarks.
"""

import statistics
import time

import pytest

from repro.bench.generator import generate_die
from repro.bench.itc99 import die_profile
from repro.core.config import Scenario, WcmConfig
from repro.core.flow import run_wcm_flow
from repro.core.problem import build_problem, tight_clock_for
from repro.core.session import MoveFf, MoveTsv, SetThreshold, WcmSession
from repro.dft.scan import stitch_scan_chains
from repro.place.placer import place_die
from repro.runtime.backend import numpy_available
from repro.runtime.config import configure

#: regression floor for warm/cold speedup; measured ~12x on an idle
#: machine (see BENCH_eco.json) — the slack absorbs CI noise.
MIN_SPEEDUP = 8.0

WARM_EDITS = 36
COLD_SOLVES = 3


@pytest.fixture(params=["python", "numpy"])
def backend(request):
    if request.param == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    configure(backend=request.param)
    yield request.param
    configure(backend="python")


@pytest.fixture(scope="module")
def eco_die():
    netlist = generate_die(die_profile("b12", 1), seed=2019)
    place_die(netlist)
    stitch_scan_chains(netlist)
    return netlist


def test_bench_eco_single_edit(benchmark, eco_die, backend, echo):
    netlist = eco_die.clone()
    problem = build_problem(netlist, already_prepared=True)
    clock = tight_clock_for(problem)
    config = WcmConfig.ours(Scenario.performance_optimized(clock.period_ps))

    session = WcmSession(netlist, config, already_prepared=True)
    session.solve()

    colds = []
    for _ in range(COLD_SOLVES):
        clone = netlist.clone()
        t0 = time.perf_counter()
        cold_problem = build_problem(clone, clock=config.scenario.clock,
                                     already_prepared=True)
        run_wcm_flow(cold_problem, config)
        colds.append(time.perf_counter() - t0)
    cold_median = statistics.median(colds)

    ffs = [inst.name for inst in netlist.scan_flip_flops()]
    tsvs = [p.name for p in netlist.ports.values() if p.is_tsv]
    d0 = config.d_th_um
    step = {"count": 0}

    def one_edit():
        k = step["count"]
        step["count"] += 1
        kind = ("ff", "tsv", "th")[k % 3]
        if kind == "ff":
            name = ffs[(k // 3) % len(ffs)]
            inst = netlist.instances[name]
            session.apply(MoveFf(name, inst.x + 0.1, inst.y + 0.1))
        elif kind == "tsv":
            name = tsvs[(k // 3) % len(tsvs)]
            port = netlist.ports[name]
            session.apply(MoveTsv(name, port.x + 0.1, port.y + 0.1))
        else:
            session.apply(SetThreshold(d_th_um=d0 + 0.2 * ((k // 3) % 5)))
        return session.solve()

    benchmark.pedantic(one_edit, rounds=WARM_EDITS, iterations=1,
                       warmup_rounds=3)
    warm_median = benchmark.stats.stats.median
    speedup = cold_median / warm_median
    benchmark.extra_info["cold_median_s"] = cold_median
    benchmark.extra_info["speedup"] = speedup
    echo(f"[eco/{backend}] cold {cold_median * 1000:.0f}ms, "
         f"warm edit {warm_median * 1000:.1f}ms, "
         f"speedup {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"incremental session regressed: {speedup:.1f}x < "
        f"{MIN_SPEEDUP}x (cold {cold_median * 1000:.0f}ms, "
        f"warm {warm_median * 1000:.1f}ms)")
