"""Warm service latency benchmark (``repro serve``).

Spins up a real :class:`WcmServer` over a Unix socket, primes its
result cache with one flow job, then hammers it with 32 concurrent
clients issuing the same submit — the steady-state "warm" path every
request after the first takes. Per-request submit→result latency is
collected across all clients and exported as p50/p95 to
``BENCH_serve.json``, so the daemon's dispatch overhead (socket,
admission, cache hit, response) is regression-tracked alongside the
kernel and ECO benchmarks via ``repro bench gate``.
"""

import statistics
import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.protocol import DONE
from repro.serve.server import WcmServer

CLIENTS = 32
ROUNDS = 8

#: regression ceiling for the p95 warm submit→result latency; measured
#: a few ms on an idle machine — the slack absorbs CI noise.
MAX_P95_S = 1.0

FLOW_PARAMS = {"circuit": "b11", "die": 1, "scale": "smoke"}


@pytest.fixture(scope="module")
def serve_daemon(tmp_path_factory):
    state = tmp_path_factory.mktemp("serve-bench")
    server = WcmServer(state, workers=2).start()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServeClient(server.socket_path)
    assert client.wait_until_up(timeout_s=30.0)
    # prime the cache: every benchmarked submit is the warm path
    primed = client.submit("flow", dict(FLOW_PARAMS), timeout_s=300.0)
    assert primed["state"] == DONE
    yield server
    server.stop()


def test_bench_serve_warm_submit(benchmark, serve_daemon, echo, scale):
    latencies = []

    def wave():
        barrier = threading.Barrier(CLIENTS)
        responses = [None] * CLIENTS

        def one_client(slot):
            client = ServeClient(serve_daemon.socket_path)
            barrier.wait()
            started = time.perf_counter()
            responses[slot] = client.submit("flow", dict(FLOW_PARAMS),
                                            timeout_s=60.0)
            latencies.append(time.perf_counter() - started)

        threads = [threading.Thread(target=one_client, args=(slot,))
                   for slot in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(r is not None and r["state"] == DONE
                   and r["cached"] for r in responses)

    benchmark.pedantic(wave, rounds=ROUNDS, iterations=1,
                       warmup_rounds=1)
    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["requests"] = len(ordered)
    benchmark.extra_info["p50_ms"] = p50 * 1000.0
    benchmark.extra_info["p95_ms"] = p95 * 1000.0
    echo(f"[serve] warm submit->result under {CLIENTS} clients: "
         f"p50 {p50 * 1000:.1f}ms, p95 {p95 * 1000:.1f}ms "
         f"({len(ordered)} requests)")
    assert p95 < MAX_P95_S, (
        f"warm serve latency regressed: p95 {p95 * 1000:.0f}ms >= "
        f"{MAX_P95_S * 1000:.0f}ms")
