"""Bench: regenerate Figure 7 (sharing-graph edge expansion)."""

from repro.experiments import run_figure7


def test_bench_figure7(benchmark, scale, echo):
    result = benchmark.pedantic(run_figure7, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    assert result.mean_increase_pct >= 0.0
