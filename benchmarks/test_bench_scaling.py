"""Trimmed scaling-law bench: the CI-tracked slice of ``repro scale``.

Benches the phases of the scaling sweep on two families at the
10^3-10^4-gate decades (generation, packed simulation, and the full WCM
flow at the low end), exporting ``BENCH_scaling.json`` through the
session-finish hook so ``repro bench gate`` tracks regressions. Each
entry carries the instance's content fingerprint as extra info — the
gate ignores it, the ``scaling-smoke`` CI job pins it across runs.

The full sweep (10^3-10^6 gates, all families, TSV-density knobs) runs
via ``repro scale``; see DESIGN.md §14.
"""

import pytest

from repro.atpg.sim import CompiledCircuit
from repro.bench.families import (FamilySpec, generate_family_die,
                                  netlist_fingerprint)
from repro.core.config import Scenario, WcmConfig
from repro.core.flow import run_wcm_flow
from repro.core.problem import build_problem, tight_clock_for
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.place.placer import place_die
from repro.util.rng import DeterministicRng

SEED = 2019
CELLS = [("grid", 1000), ("grid", 10000),
         ("htree", 1000), ("htree", 10000)]
_WIDTH = 64
_MASK = (1 << _WIDTH) - 1


def _die(family, gates):
    return generate_family_die(family, FamilySpec.from_density(gates),
                               seed=SEED)


@pytest.mark.parametrize("family,gates", CELLS,
                         ids=[f"{f}-g{g}" for f, g in CELLS])
def test_scaling_generate(benchmark, family, gates):
    netlist = benchmark(_die, family, gates)
    benchmark.extra_info["gates"] = gates
    benchmark.extra_info["fingerprint"] = netlist_fingerprint(netlist)


@pytest.mark.parametrize("family,gates", CELLS,
                         ids=[f"{f}-g{g}" for f, g in CELLS])
def test_scaling_sim(benchmark, family, gates):
    circuit = CompiledCircuit(build_prebond_test_view(_die(family,
                                                           gates)))
    rng = DeterministicRng(SEED).child("scale", "patterns")
    words = [rng.getrandbits(_WIDTH) for _ in range(circuit.input_count)]
    values = benchmark(circuit.simulate, words, _MASK)
    benchmark.extra_info["gates"] = gates
    benchmark.extra_info["fingerprint"] = f"{sum(values):x}"


@pytest.mark.parametrize("family", ["grid", "htree"])
def test_scaling_flow(benchmark, family):
    """Full WCM flow at the 10^3 decade only — the flow-capped end."""
    netlist = _die(family, 1000)
    place_die(netlist)
    stitch_scan_chains(netlist)
    problem = build_problem(netlist, already_prepared=True)
    problem = problem.retime(tight_clock_for(problem))
    config = WcmConfig.ours(Scenario.performance_optimized(
        problem.timing.constraint.period_ps))
    result = benchmark(run_wcm_flow, problem, config)
    from repro.core.session import result_fingerprint

    benchmark.extra_info["gates"] = 1000
    benchmark.extra_info["fingerprint"] = result_fingerprint(result)
