"""Wrapper/TAM co-optimization bench: driver sweep + packer throughput.

Two regression-tracked timings, exported to ``BENCH_schedule.json``
through the session-finish hook:

* the full ``repro schedule`` driver at the configured scale (fixed
  pattern counts, so the timing isolates the scheduling path from
  ATPG), asserting the paper's acceptance property — ours never tests
  slower than Agrawal on any die — as part of the bench, and
* the best-fit packer alone on a synthetic 64-die corpus, with the
  resulting makespan, utilization and schedule fingerprint pinned as
  extra info (the ``schedule-smoke`` CI job compares fingerprints
  across runs; the gate tracks the wall time).
"""

from repro.experiments.common import result_fingerprint
from repro.schedule import DieTestModel, best_fit_schedule, run_schedule
from repro.util.rng import DeterministicRng

FIXED_PATTERNS = 32
PACK_DIES = 64
PACK_BUDGET = 16


def test_bench_schedule_table(benchmark, scale, echo):
    result = benchmark.pedantic(
        run_schedule, args=(scale,),
        kwargs={"fixed_patterns": FIXED_PATTERNS},
        rounds=1, iterations=1)
    echo(result.render())
    assert not result.failures, result.failures
    leq, strict, total = result.die_wins()
    assert leq == total, "ours tested slower than Agrawal on a die"
    benchmark.extra_info["dies"] = total
    benchmark.extra_info["strict_wins"] = strict
    benchmark.extra_info["fingerprint"] = result_fingerprint(result)


def _pack_corpus():
    rng = DeterministicRng(2019).child("schedule", "bench")
    return [
        DieTestModel(
            f"d{i}",
            tuple(rng.randint(4, 40) for _ in range(rng.randint(1, 4))),
            rng.randint(0, 30), rng.randint(16, 96))
        for i in range(PACK_DIES)
    ]


def test_bench_schedule_packer(benchmark, echo):
    models = _pack_corpus()
    schedule = benchmark(best_fit_schedule, models, PACK_BUDGET)
    assert len(schedule.placements) == PACK_DIES
    echo(f"[schedule packer] {PACK_DIES} dies over {PACK_BUDGET} lanes: "
         f"makespan {schedule.makespan}, "
         f"utilization {100 * schedule.utilization:.0f}%")
    benchmark.extra_info["makespan"] = schedule.makespan
    benchmark.extra_info["utilization"] = round(schedule.utilization, 4)
    benchmark.extra_info["fingerprint"] = schedule.fingerprint()
