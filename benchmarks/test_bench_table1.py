"""Bench: regenerate Table I (TSV-set processing order, b12)."""

from repro.experiments import run_table1


def test_bench_table1(benchmark, scale, echo):
    result = benchmark.pedantic(run_table1, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    echo(f"larger-set-first no worse: {result.larger_set_no_worse()}")
    assert len(result.rows) == 4
