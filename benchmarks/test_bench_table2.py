"""Bench: regenerate Table II (benchmark characteristics)."""

from repro.experiments import run_table2


def test_bench_table2(benchmark, scale, echo):
    result = benchmark.pedantic(run_table2, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    assert result.rows
