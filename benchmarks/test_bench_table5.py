"""Bench: regenerate Table V (with/without overlapped-cone reuse)."""

from repro.experiments import run_table5


def test_bench_table5(benchmark, scale, echo):
    result = benchmark.pedantic(run_table5, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    no_cov, _ = result.average("no_overlap", "stuck_at")
    ov_cov, _ = result.average("overlap", "stuck_at")
    echo(f"\nHeadline shape: overlap costs "
          f"{100 * (no_cov - ov_cov):+.2f}pp stuck-at coverage "
          f"(paper: +0.23pp) for "
          f"{result.average('no_overlap', 'additional') - result.average('overlap', 'additional'):+.2f} cells")
    assert result.cells
