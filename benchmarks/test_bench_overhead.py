"""Bench: area-overhead analysis (um², beyond the paper's cell counts)."""

from repro.experiments import run_overhead


def test_bench_overhead(benchmark, scale, echo):
    result = benchmark.pedantic(run_overhead, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    assert result.average("ours_overhead") \
        <= result.average("dedicated_overhead")
