"""Bench: regenerate Table IV (fault coverage & pattern counts)."""

from repro.experiments import run_table4


def test_bench_table4(benchmark, scale, echo):
    result = benchmark.pedantic(run_table4, args=(scale,),
                                rounds=1, iterations=1)
    echo()
    echo(result.render())
    ours_cov, _ = result.average("ours", "stuck_at")
    agrawal_cov, _ = result.average("agrawal", "stuck_at")
    echo(f"\nHeadline shape: coverage competitive "
          f"(ours {ours_cov:.4f} vs Agrawal {agrawal_cov:.4f})")
    assert abs(ours_cov - agrawal_cov) < 0.03
