"""Deterministic, supervised parallel experiment runtime.

Five orthogonal capabilities behind one import:

* :mod:`repro.runtime.supervisor` — supervised per-cell execution with
  crash isolation, wall-clock timeouts, bounded same-seed retry and
  checkpoint/resume (every cell comes back as a
  :class:`~repro.runtime.supervisor.CellOutcome`),
* :mod:`repro.runtime.parallel` — ordered strict map over experiment
  cells with per-cell seed derivation (serial ≡ parallel),
* :mod:`repro.runtime.cache` — content-addressed on-disk cache of WCM
  flow summaries and ATPG results, with corrupt-entry quarantine,
* :mod:`repro.runtime.chaos` — deterministic fault injection (worker
  crashes, cell hangs, malformed netlists, cache corruption) used to
  validate the failure semantics above,
* :mod:`repro.runtime.instrument` — opt-in per-phase timers and
  counters threaded through the flow, partitioner and ATPG engine,
* :mod:`repro.runtime.trace` — structured tracing under the instrument
  API: attributed spans streamed to JSONL event logs, a metrics
  registry (counters/gauges/histograms) with order-independent
  rollups, and content-fingerprinted run manifests consumed by
  ``repro trace show|diff`` and ``repro bench gate``.

Configuration (worker count, cache directory) lives in
:mod:`repro.runtime.config` and is set once per process by the CLI or
environment variables.

This ``__init__`` deliberately imports only the dependency-light
modules; :mod:`repro.runtime.cache` imports the flow/ATPG types it
serializes, which in turn import :mod:`repro.runtime.instrument` —
importing the cache eagerly here would make that cycle real. Cache
names are re-exported lazily via module ``__getattr__``.
"""

from repro.runtime import trace
from repro.runtime.chaos import ChaosPlan, ChaosSpec
from repro.runtime.config import (
    RuntimeConfig,
    configure,
    current_config,
    resolve_jobs,
)
from repro.runtime.instrument import RunReport, collect, count, phase
from repro.runtime.parallel import cell_seed, parallel_map
from repro.runtime.supervisor import (
    CellOutcome,
    SupervisorPolicy,
    SweepResult,
    supervised_map,
)

_CACHE_EXPORTS = (
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "WcmSummary",
    "active_cache",
    "atpg_cache_key",
    "atpg_result_from_payload",
    "atpg_result_to_payload",
    "wcm_cache_key",
)

__all__ = [
    "CellOutcome",
    "ChaosPlan",
    "ChaosSpec",
    "RunReport",
    "RuntimeConfig",
    "SupervisorPolicy",
    "SweepResult",
    "cell_seed",
    "collect",
    "configure",
    "count",
    "current_config",
    "parallel_map",
    "phase",
    "resolve_jobs",
    "supervised_map",
    "trace",
    *_CACHE_EXPORTS,
]


def __getattr__(name: str):
    if name in _CACHE_EXPORTS:
        from repro.runtime import cache
        return getattr(cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
