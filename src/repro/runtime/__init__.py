"""Deterministic parallel experiment runtime.

Three orthogonal capabilities behind one import:

* :mod:`repro.runtime.parallel` — ordered process-pool map over
  experiment cells with per-cell seed derivation (serial ≡ parallel),
* :mod:`repro.runtime.cache` — content-addressed on-disk cache of WCM
  flow summaries and ATPG results,
* :mod:`repro.runtime.instrument` — opt-in per-phase timers and
  counters threaded through the flow, partitioner and ATPG engine.

Configuration (worker count, cache directory) lives in
:mod:`repro.runtime.config` and is set once per process by the CLI or
environment variables.

This ``__init__`` deliberately imports only the dependency-light
modules; :mod:`repro.runtime.cache` imports the flow/ATPG types it
serializes, which in turn import :mod:`repro.runtime.instrument` —
importing the cache eagerly here would make that cycle real. Cache
names are re-exported lazily via module ``__getattr__``.
"""

from repro.runtime.config import (
    RuntimeConfig,
    configure,
    current_config,
    resolve_jobs,
)
from repro.runtime.instrument import RunReport, collect, count, phase
from repro.runtime.parallel import cell_seed, parallel_map

_CACHE_EXPORTS = (
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "WcmSummary",
    "active_cache",
    "atpg_cache_key",
    "atpg_result_from_payload",
    "atpg_result_to_payload",
    "wcm_cache_key",
)

__all__ = [
    "RunReport",
    "RuntimeConfig",
    "cell_seed",
    "collect",
    "configure",
    "count",
    "current_config",
    "parallel_map",
    "phase",
    "resolve_jobs",
    *_CACHE_EXPORTS,
]


def __getattr__(name: str):
    if name in _CACHE_EXPORTS:
        from repro.runtime import cache
        return getattr(cache, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
