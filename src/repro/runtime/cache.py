"""Content-addressed on-disk result cache for experiment cells.

The experiment matrix recomputes identical (die, method, scenario)
cells across tables: Table III's ``ours/tight`` flow is the same flow
Table IV runs ATPG on, and a rerun of any driver repeats everything.
This module caches the two expensive products:

* **WCM flow summaries** (:class:`WcmSummary`) — everything the table
  drivers read off a :class:`~repro.core.flow.WcmRunResult` *except*
  the wrapped netlist (plans, counts, verdicts, graph stats),
* **ATPG results** (:class:`~repro.atpg.engine.AtpgResult`) — coverage
  and pattern accounting per fault model.

Keys are SHA-256 fingerprints (:mod:`repro.util.fingerprint`) of the
die profile, the method/scenario spec, every configuration field that
feeds the computation, the root seed, and :data:`CACHE_SCHEMA_VERSION`.
Nothing is keyed by wall-clock, hostname or process state, so a cache
is valid across machines; bump the schema version whenever the
semantics of any cached field change.

Entries are one JSON file each under ``<root>/<key[:2]>/<key>.json``,
written atomically (temp file + rename) so parallel workers can share
one cache directory without locking: worst case two workers compute
the same cell and the second rename wins with identical content.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.atpg.engine import AtpgConfig, AtpgResult
from repro.bench.itc99 import DieProfile
from repro.core.flow import WcmRunResult
from repro.core.graph import GraphStats
from repro.dft.wrapper import WrapperGroup, WrapperPlan
from repro.netlist.core import PortKind
from repro.runtime import trace
from repro.runtime.config import current_config
from repro.util.fingerprint import fingerprint

#: bump when the serialized payloads or the flow semantics change
CACHE_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Serializable WCM flow summary
# ---------------------------------------------------------------------------
@dataclass
class WcmSummary:
    """The cacheable slice of one WCM flow run.

    Mirrors the :class:`~repro.core.flow.WcmRunResult` properties the
    experiment drivers consume; carries the full wrapper plan so area
    analyses can re-price a cached run without re-running the flow.
    """

    die_name: str
    method: str
    scenario: str
    reused: int
    additional: int
    violation: bool
    worst_slack_ps: float
    order: Tuple[str, ...]
    graph_stats: Dict[str, GraphStats]
    plan: WrapperPlan

    @property
    def total_graph_edges(self) -> int:
        return sum(s.edges for s in self.graph_stats.values())

    @property
    def overlap_edges(self) -> int:
        return sum(s.overlap_edges for s in self.graph_stats.values())

    @classmethod
    def from_run(cls, run: WcmRunResult) -> "WcmSummary":
        return cls(
            die_name=run.die_name,
            method=run.method,
            scenario=run.scenario,
            reused=run.reused_scan_ffs,
            additional=run.additional_wrapper_cells,
            violation=run.timing_violation,
            worst_slack_ps=run.worst_slack_ps,
            order=tuple(kind.value for kind in run.order),
            graph_stats=dict(run.graph_stats),
            plan=run.plan,
        )

    # -- JSON round-trip -------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "die_name": self.die_name,
            "method": self.method,
            "scenario": self.scenario,
            "reused": self.reused,
            "additional": self.additional,
            "violation": self.violation,
            "worst_slack_ps": self.worst_slack_ps,
            "order": list(self.order),
            "graph_stats": {kind: vars(stats).copy()
                            for kind, stats in self.graph_stats.items()},
            "plan": {
                "die_name": self.plan.die_name,
                "groups": [
                    {"kind": group.kind.value,
                     "tsvs": list(group.tsvs),
                     "reused_ff": group.reused_ff}
                    for group in self.plan.groups
                ],
                "excluded_tsvs": list(self.plan.excluded_tsvs),
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "WcmSummary":
        plan_data = payload["plan"]
        plan = WrapperPlan(
            die_name=plan_data["die_name"],
            groups=[
                WrapperGroup(kind=PortKind(g["kind"]),
                             tsvs=list(g["tsvs"]),
                             reused_ff=g["reused_ff"])
                for g in plan_data["groups"]
            ],
            excluded_tsvs=list(plan_data["excluded_tsvs"]),
        )
        return cls(
            die_name=payload["die_name"],
            method=payload["method"],
            scenario=payload["scenario"],
            reused=payload["reused"],
            additional=payload["additional"],
            violation=payload["violation"],
            worst_slack_ps=payload["worst_slack_ps"],
            order=tuple(payload["order"]),
            graph_stats={kind: GraphStats(**stats)
                         for kind, stats in payload["graph_stats"].items()},
            plan=plan,
        )


def atpg_result_to_payload(result: AtpgResult) -> Dict[str, Any]:
    """Serialize an :class:`AtpgResult`; patterns are plain ints (JSON
    integers are unbounded in Python)."""
    return {
        "total_faults": result.total_faults,
        "detected": result.detected,
        "proven_untestable": result.proven_untestable,
        "aborted": result.aborted,
        "pattern_count": result.pattern_count,
        "random_patterns": result.random_patterns,
        "deterministic_patterns": result.deterministic_patterns,
        "prebond_untestable": result.prebond_untestable,
        "patterns": list(result.patterns),
    }


def atpg_result_from_payload(payload: Dict[str, Any]) -> AtpgResult:
    return AtpgResult(
        total_faults=payload["total_faults"],
        detected=payload["detected"],
        proven_untestable=payload["proven_untestable"],
        aborted=payload["aborted"],
        pattern_count=payload["pattern_count"],
        random_patterns=payload["random_patterns"],
        deterministic_patterns=payload["deterministic_patterns"],
        prebond_untestable=payload["prebond_untestable"],
        patterns=list(payload["patterns"]),
    )


# ---------------------------------------------------------------------------
# Key derivation
# ---------------------------------------------------------------------------
def wcm_cache_key(profile: DieProfile, seed: int, spec: Any,
                  estimator_budget: int) -> str:
    """Key of one WCM flow cell.

    *spec* is the driver-level method spec (method, scenario name,
    variant flags, order override) — deliberately *not* the realized
    :class:`WcmConfig`, whose tight-scenario clock period would force a
    full die preparation just to test for a cache hit. The period is a
    pure function of (profile, seed), which the key already covers.
    """
    return fingerprint({
        "kind": "wcm",
        "schema": CACHE_SCHEMA_VERSION,
        "profile": profile,
        "seed": int(seed),
        "spec": spec,
        "estimator_budget": int(estimator_budget),
    })


def atpg_cache_key(profile: DieProfile, seed: int, spec: Any,
                   estimator_budget: int, atpg_config: AtpgConfig,
                   fault_model: str) -> str:
    """Key of one ATPG measurement on one WCM cell's wrapped die."""
    return fingerprint({
        "kind": "atpg",
        "schema": CACHE_SCHEMA_VERSION,
        "profile": profile,
        "seed": int(seed),
        "spec": spec,
        "estimator_budget": int(estimator_budget),
        "atpg": atpg_config,
        "fault_model": fault_model,
    })


# ---------------------------------------------------------------------------
# The cache itself
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0


#: subdirectory corrupt entries are moved into (never read back)
QUARANTINE_DIR = "quarantine"

#: lock file serializing the startup stale-tmp sweep across processes
SWEEP_LOCK_NAME = ".sweep.lock"


class _SweepLock:
    """Non-blocking exclusive flock guarding the stale-tmp sweep.

    Many processes open the same cache root at once (daemon + workers,
    parallel sweeps); without a lock they race each other quarantining
    the same ``*.tmp`` files, and a file one sweeper just moved shows
    up as an ``OSError`` mid-``os.replace`` for the next. The sweep is
    purely janitorial, so contention means *skip*, never wait. On
    platforms without ``fcntl`` the lock degrades to a no-op (the sweep
    itself tolerates racing — this lock just silences the noise)."""

    def __init__(self, root: Path) -> None:
        self.path = Path(root) / SWEEP_LOCK_NAME
        self._handle = None

    def acquire(self) -> bool:
        try:
            import fcntl
        except ImportError:
            return True
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(self.path, "a+")
        except OSError:
            return False
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            return False
        self._handle = handle
        return True

    def release(self) -> None:
        if self._handle is None:
            return
        try:
            import fcntl
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        except (ImportError, OSError):
            pass
        self._handle.close()
        self._handle = None


class ResultCache:
    """One cache directory of JSON entries, addressed by key.

    A shared cache directory outlives any single run, so a corrupt or
    truncated entry (torn write on a crashed machine, disk hiccup,
    stray editor) must never abort a sweep: unreadable files — and
    files whose payload no longer deserializes — are moved into a
    ``quarantine/`` sibling and the cell recomputes as a plain miss.
    """

    #: a ``*.tmp`` older than this is an orphan from a crashed writer,
    #: not an in-flight write on a parallel worker
    STALE_TMP_SECONDS = 3600.0

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.stats = CacheStats()
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Quarantine temp files orphaned by crashed writers.

        :meth:`put` unlinks its temp file on every failure path, but a
        hard kill between ``mkstemp`` and the rename leaves the file
        behind; without a sweep those accumulate in the shard
        directories forever. Wall-clock mtime is the right measure
        here (the writer may have been a different process/boot).

        The sweep runs under a non-blocking exclusive file lock
        (``.sweep.lock``): if another process is already sweeping this
        root, ours skips — the orphans are that sweeper's problem."""
        if not self.root.is_dir():
            return
        lock = _SweepLock(self.root)
        if not lock.acquire():
            trace.event("cache.sweep_skipped", root=str(self.root))
            return
        try:
            cutoff = time.time() - self.STALE_TMP_SECONDS
            destination_dir = self.root / QUARANTINE_DIR
            for tmp in self.root.glob("[0-9a-f][0-9a-f]/*.tmp"):
                try:
                    if tmp.stat().st_mtime > cutoff:
                        continue  # possibly an in-flight write elsewhere
                    destination_dir.mkdir(parents=True, exist_ok=True)
                    os.replace(tmp, destination_dir / tmp.name)
                except OSError:
                    continue
                self.stats.quarantined += 1
                trace.inc("cache.quarantined")
                trace.event("cache.quarantine", key=tmp.name,
                            destination=str(destination_dir / tmp.name))
        finally:
            lock.release()

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            trace.inc("cache.misses")
            return None
        with handle:
            try:
                payload = json.load(handle)
            except ValueError:
                # entry exists but is not JSON: torn write or corruption
                self.quarantine(key)
                self.stats.misses += 1
                trace.inc("cache.misses")
                return None
        if not isinstance(payload, dict):
            self.quarantine(key)
            self.stats.misses += 1
            trace.inc("cache.misses")
            return None
        self.stats.hits += 1
        trace.inc("cache.hits")
        return payload

    def quarantine(self, key: str) -> Optional[Path]:
        """Move a bad entry aside so the cell recomputes; returns the
        quarantined path (``None`` if the file vanished meanwhile)."""
        path = self.path_for(key)
        destination_dir = self.root / QUARANTINE_DIR
        destination = destination_dir / path.name
        try:
            destination_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            # cross-device, permissions, or already gone: last resort is
            # deleting it, so the poisoned entry can't resurface
            try:
                os.unlink(path)
            except OSError:
                return None
            destination = None
        self.stats.quarantined += 1
        trace.inc("cache.quarantined")
        trace.event("cache.quarantine", key=key,
                    destination=str(destination) if destination else None)
        return destination

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        committed = False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                fd = -1  # the file object owns the descriptor now
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
            committed = True
        finally:
            if fd >= 0:
                # os.fdopen itself failed: the raw descriptor would
                # leak (and pin the temp file on some platforms)
                try:
                    os.close(fd)
                except OSError:
                    pass
            if not committed:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.stats.stores += 1
        trace.inc("cache.stores")

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        # two-hex-digit shards only: quarantined entries don't count
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))


#: one ResultCache per root, so hit/miss stats accumulate per process
_CACHES: Dict[str, ResultCache] = {}


def active_cache() -> Optional[ResultCache]:
    """The process's cache per the runtime config, or ``None``."""
    config = current_config()
    if config.no_cache or not config.cache_dir:
        return None
    cache = _CACHES.get(config.cache_dir)
    if cache is None:
        cache = _CACHES[config.cache_dir] = ResultCache(config.cache_dir)
    return cache
