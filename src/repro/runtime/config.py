"""Process-wide runtime configuration: workers, cache, supervision.

One small mutable singleton, set once per process (from CLI flags, the
benchmark harness, or environment variables) and read by the parallel
map, the supervisor and the result cache:

* ``jobs`` — worker processes for :func:`repro.runtime.parallel.parallel_map`
  (``1`` = serial, the default; ``0``/``None`` = one per CPU),
* ``cache_dir`` — root of the on-disk result cache (``None`` disables),
* ``no_cache`` — hard override disabling the cache even when a
  directory is configured,
* ``timeout_s`` — wall-clock budget per experiment cell; a cell past
  its budget is killed and marked ``timeout`` (``None`` = unlimited),
* ``retries`` — how many times a failed/crashed/timed-out cell is
  re-attempted (with the same derived seed) before it counts as failed,
* ``strict`` — fail the sweep fast on the first terminal cell failure
  instead of completing with the cell marked failed,
* ``checkpoint_dir`` — directory of sweep checkpoint files; completed
  cells are journaled there so an interrupted sweep resumes from them,
* ``trace_dir`` — root of the structured trace output (JSONL event
  logs, run manifests); setting it starts the process tracer
  (:mod:`repro.runtime.trace`) and worker processes adopt it too,
* ``chaos`` — an optional :class:`repro.runtime.chaos.ChaosPlan` of
  deterministic fault injections (set programmatically by the chaos
  harness, or via ``REPRO_CHAOS`` as JSON),
* ``backend`` — which kernel implementations to use, ``python`` or
  ``numpy`` (see :mod:`repro.runtime.backend`); byte-identical either
  way, and worker processes inherit the parent's choice.

Environment fallbacks (read when :func:`configure` is not given an
explicit value): ``REPRO_JOBS``, ``REPRO_CACHE_DIR``,
``REPRO_NO_CACHE=1``, ``REPRO_TIMEOUT`` (seconds; ``0`` disables),
``REPRO_RETRIES``, ``REPRO_STRICT=1``, ``REPRO_CHECKPOINT_DIR``,
``REPRO_TRACE_DIR``, ``REPRO_BACKEND`` and ``REPRO_CHAOS`` (JSON, see
:func:`repro.runtime.chaos.plan_from_json`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.util.errors import ConfigError


@dataclass
class RuntimeConfig:
    """Mutable per-process runtime settings."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False
    timeout_s: Optional[float] = None
    retries: int = 0
    strict: bool = False
    checkpoint_dir: Optional[str] = None
    trace_dir: Optional[str] = None
    #: deterministic fault-injection plan (ChaosPlan), tests/CI only
    chaos: Optional[Any] = None
    #: kernel implementation set: "python" (default) or "numpy"
    backend: str = "python"


_CONFIG = RuntimeConfig()


def _env_jobs() -> Optional[int]:
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}"
                          ) from None


def _env_timeout() -> Optional[float]:
    raw = os.environ.get("REPRO_TIMEOUT")
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigError(f"REPRO_TIMEOUT must be a number of seconds, "
                          f"got {raw!r}") from None


def _env_retries() -> Optional[int]:
    raw = os.environ.get("REPRO_RETRIES")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_RETRIES must be an integer, got {raw!r}"
                          ) from None


def _env_chaos() -> Optional[Any]:
    raw = os.environ.get("REPRO_CHAOS")
    if raw is None:
        return None
    from repro.runtime.chaos import plan_from_json
    return plan_from_json(raw)


def configure(jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              no_cache: Optional[bool] = None,
              timeout_s: Optional[float] = None,
              retries: Optional[int] = None,
              strict: Optional[bool] = None,
              checkpoint_dir: Optional[str] = None,
              trace_dir: Optional[str] = None,
              chaos: Optional[Any] = None,
              backend: Optional[str] = None) -> RuntimeConfig:
    """Update the per-process runtime config; omitted arguments fall
    back to the environment, then to the current values."""
    if jobs is None:
        jobs = _env_jobs()
    if jobs is not None:
        if jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {jobs}")
        _CONFIG.jobs = jobs or (os.cpu_count() or 1)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is not None:
        _CONFIG.cache_dir = cache_dir
    if no_cache is None and os.environ.get("REPRO_NO_CACHE") == "1":
        no_cache = True
    if no_cache is not None:
        _CONFIG.no_cache = no_cache
    if timeout_s is None:
        timeout_s = _env_timeout()
    if timeout_s is not None:
        if timeout_s < 0:
            raise ConfigError(f"timeout must be >= 0 seconds, "
                              f"got {timeout_s}")
        # 0 explicitly switches the per-cell budget off
        _CONFIG.timeout_s = timeout_s or None
    if retries is None:
        retries = _env_retries()
    if retries is not None:
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        _CONFIG.retries = retries
    if strict is None and os.environ.get("REPRO_STRICT") == "1":
        strict = True
    if strict is not None:
        _CONFIG.strict = strict
    if checkpoint_dir is None:
        checkpoint_dir = os.environ.get("REPRO_CHECKPOINT_DIR")
    if checkpoint_dir is not None:
        _CONFIG.checkpoint_dir = checkpoint_dir
    if trace_dir is None:
        trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir is not None:
        _CONFIG.trace_dir = trace_dir
        from repro.runtime import trace
        trace.ensure_started(trace_dir)
    if chaos is None:
        chaos = _env_chaos()
    if chaos is not None:
        _CONFIG.chaos = chaos
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND")
    if backend is not None:
        from repro.runtime.backend import validate_backend
        _CONFIG.backend = validate_backend(backend)
    return _CONFIG


def current_config() -> RuntimeConfig:
    return _CONFIG


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit argument > configured value."""
    if jobs is None:
        return max(1, _CONFIG.jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs or (os.cpu_count() or 1)


def apply_config(config: RuntimeConfig) -> None:
    """Adopt *config* wholesale (used by worker-process initializers).

    Workers always run serially (``jobs=1``) — nested pools would
    oversubscribe the machine without changing any result — and never
    supervise sub-sweeps of their own, so the supervision fields are
    carried only for completeness.
    """
    _CONFIG.jobs = 1
    _CONFIG.cache_dir = config.cache_dir
    _CONFIG.no_cache = config.no_cache
    _CONFIG.timeout_s = config.timeout_s
    _CONFIG.retries = config.retries
    _CONFIG.strict = config.strict
    _CONFIG.checkpoint_dir = config.checkpoint_dir
    _CONFIG.trace_dir = config.trace_dir
    _CONFIG.chaos = config.chaos
    _CONFIG.backend = config.backend
    if config.trace_dir:
        from repro.runtime import trace
        trace.ensure_started(config.trace_dir, role="worker")
