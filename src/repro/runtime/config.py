"""Process-wide runtime configuration: worker count and cache location.

One small mutable singleton, set once per process (from CLI flags, the
benchmark harness, or environment variables) and read by the parallel
map and the result cache:

* ``jobs`` — worker processes for :func:`repro.runtime.parallel.parallel_map`
  (``1`` = serial, the default; ``0``/``None`` = one per CPU),
* ``cache_dir`` — root of the on-disk result cache (``None`` disables),
* ``no_cache`` — hard override disabling the cache even when a
  directory is configured.

Environment fallbacks (read when :func:`configure` is not given an
explicit value): ``REPRO_JOBS``, ``REPRO_CACHE_DIR``, and
``REPRO_NO_CACHE=1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.util.errors import ConfigError


@dataclass
class RuntimeConfig:
    """Mutable per-process runtime settings."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    no_cache: bool = False


_CONFIG = RuntimeConfig()


def _env_jobs() -> Optional[int]:
    raw = os.environ.get("REPRO_JOBS")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}"
                          ) from None


def configure(jobs: Optional[int] = None,
              cache_dir: Optional[str] = None,
              no_cache: Optional[bool] = None) -> RuntimeConfig:
    """Update the per-process runtime config; omitted arguments fall
    back to the environment, then to the current values."""
    if jobs is None:
        jobs = _env_jobs()
    if jobs is not None:
        if jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {jobs}")
        _CONFIG.jobs = jobs or (os.cpu_count() or 1)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is not None:
        _CONFIG.cache_dir = cache_dir
    if no_cache is None and os.environ.get("REPRO_NO_CACHE") == "1":
        no_cache = True
    if no_cache is not None:
        _CONFIG.no_cache = no_cache
    return _CONFIG


def current_config() -> RuntimeConfig:
    return _CONFIG


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit argument > configured value."""
    if jobs is None:
        return max(1, _CONFIG.jobs)
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs or (os.cpu_count() or 1)


def apply_config(config: RuntimeConfig) -> None:
    """Adopt *config* wholesale (used by worker-process initializers).

    Workers always run serially (``jobs=1``) — nested pools would
    oversubscribe the machine without changing any result.
    """
    _CONFIG.jobs = 1
    _CONFIG.cache_dir = config.cache_dir
    _CONFIG.no_cache = config.no_cache
