"""Kernel backend selection: pure-Python vs NumPy bit-plane kernels.

Three hot kernels have two interchangeable implementations (DESIGN.md
§11): packed-pattern fault simulation (:mod:`repro.atpg`), the STA
arrival/required sweeps (:mod:`repro.sta.timer`) and the grid-bucket
distance sweep (:mod:`repro.core.graph`). The *backend* names which
implementation the process uses:

* ``python`` — the original big-int / dict kernels; no third-party
  dependencies. The default.
* ``numpy`` — uint64 bit-plane arrays and vectorized sweeps, plus the
  incremental PODEM implication engine. Requires :mod:`numpy`.

Both backends are **byte-identical**: results, per-category statistics
and manifest fingerprints must not depend on the choice (enforced by
``tests/test_kernel_equivalence.py`` and the fuzz oracles, which run
over both). Selection precedence is ``--backend`` flag > explicit
:func:`repro.runtime.configure` argument > ``$REPRO_BACKEND`` > the
``python`` default; worker processes inherit the parent's choice via
:func:`repro.runtime.config.apply_config`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.util.errors import ConfigError

#: recognized backend names, in documentation order
BACKENDS: Tuple[str, ...] = ("python", "numpy")

_NUMPY_OK: Optional[bool] = None


def numpy_available() -> bool:
    """Whether :mod:`numpy` is importable (cached per process)."""
    global _NUMPY_OK
    if _NUMPY_OK is None:
        try:
            import numpy  # noqa: F401
        except ImportError:
            _NUMPY_OK = False
        else:
            _NUMPY_OK = True
    return _NUMPY_OK


def validate_backend(name: str) -> str:
    """Check *name* is a usable backend; returns it normalized.

    Raises :class:`~repro.util.errors.ConfigError` for unknown names
    and for ``numpy`` when the interpreter has no numpy installed —
    callers surface that as a clean CLI error, not a traceback.
    """
    normalized = str(name).strip().lower()
    if normalized not in BACKENDS:
        raise ConfigError(
            f"unknown backend {name!r} (choose from "
            f"{', '.join(BACKENDS)})")
    if normalized == "numpy" and not numpy_available():
        raise ConfigError(
            "backend 'numpy' requires the numpy package, which is not "
            "installed; install numpy or use --backend python")
    return normalized


def active_backend() -> str:
    """The backend currently configured for this process."""
    from repro.runtime.config import current_config

    return current_config().backend


def use_numpy() -> bool:
    """True when the numpy kernels should be used."""
    return active_backend() == "numpy"
