"""Structured tracing + metrics: spans, histograms, run manifests.

This layer sits *under* :mod:`repro.runtime.instrument`: the flat
per-phase timers and counters keep their API, but when a tracer is
started they additionally stream a structured event trail and feed a
metrics registry.

Three cooperating pieces:

* **Spans** — nested, attributed intervals (run → experiment → die →
  phase → cell) with stable sequential ids, wall-clock and CPU time.
  Every span start/end is appended to a JSONL event log, flushed per
  line so a crashed or killed process still leaves its trail behind.
* **Metrics** — a registry of counters, gauges and bucketed histograms
  (clique sizes, slack margins, coverage drops, cache hit ratios,
  supervisor retries/timeouts). Rollups are *order-independent*:
  merging per-cell registries in any order — serial, ``--jobs 4``,
  completion order — produces the identical rollup, which is what lets
  a run manifest be fingerprinted reproducibly.
* **Run manifests** — one JSON document per run: config identity,
  seed, scale, git describe, the metric rollup, and BENCH-compatible
  span timings. The manifest carries a content fingerprint over its
  *deterministic* sections (timings, git state and volatile metrics
  such as cache hit counts are excluded), so two runs of the same code
  on the same inputs — at any worker count — agree byte-for-byte.

``repro trace show`` renders a manifest, ``repro trace diff`` compares
two, and ``repro bench gate`` accepts/rejects a candidate manifest (or
a raw ``BENCH_*.json`` timings file) against a golden one with a
timing tolerance — nonzero exit on regression, for CI.

When no tracer is started (the default) every module-level helper is a
no-op costing one global read, so instrumented hot paths pay nothing.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.fingerprint import canonicalize, fingerprint

#: bump when the event or manifest schema changes shape
TRACE_SCHEMA_VERSION = 1

#: metric-name prefixes excluded from the manifest fingerprint: real
#: but environment-dependent (cache warmth, injected faults, worker
#: scheduling), so they would break run-to-run comparability.
#: ``sim.propagate_events`` is backend-dependent rather than
#: environment-dependent — the numpy bit-plane kernels replace the
#: event-driven propagator wholesale — but it is excluded for the same
#: reason: manifests must fingerprint identically across backends.
VOLATILE_PREFIXES = ("cache.", "supervisor.", "chaos.",
                     "sim.propagate_events")

#: default histogram buckets by metric name (upper bounds; one
#: overflow bucket is appended implicitly)
DEFAULT_BUCKETS: Dict[str, Tuple[float, ...]] = {
    "clique.size": (1, 2, 3, 4, 6, 8, 12, 16, 24, 32),
    "sta.worst_slack_ps": (-1000.0, -100.0, -10.0, 0.0, 10.0, 100.0,
                           1000.0, 10000.0),
    "graph.coverage_drop": (0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1),
    "graph.edges": (0, 10, 100, 1000, 10000, 100000),
    "supervisor.attempts": (1, 2, 3, 5, 8),
}

#: generic fallback buckets (decades)
GENERIC_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


def default_buckets(name: str) -> Tuple[float, ...]:
    return DEFAULT_BUCKETS.get(name, GENERIC_BUCKETS)


def _stable_float(value: Any) -> Any:
    """Round a float accumulator to 9 significant digits (fingerprint
    stability across summation orders)."""
    if isinstance(value, float) and math.isfinite(value):
        return float(f"{value:.9g}")
    return value


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
@dataclass
class GaugeStat:
    """Order-independent summary of every ``set`` of one gauge."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def set(self, value: float) -> None:
        value = float(value)  # payload round-trips coerce to float;
        self.count += 1       # record as float so serial == parallel
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "GaugeStat") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_payload(self) -> Dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "GaugeStat":
        stat = cls(count=int(payload["count"]),
                   total=float(payload["total"]))
        stat.minimum = (math.inf if payload.get("min") is None
                        else float(payload["min"]))
        stat.maximum = (-math.inf if payload.get("max") is None
                        else float(payload["max"]))
        return stat


class Histogram:
    """Fixed-bucket histogram; bucket k counts values <= buckets[k],
    with one implicit overflow bucket at the end."""

    __slots__ = ("buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)  # as GaugeStat.set: serial == parallel
        # bisect_left: a value equal to a bound lands in that bucket
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}")
        for k, n in enumerate(other.counts):
            self.counts[k] += n
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_payload(self) -> Dict[str, Any]:
        return {"buckets": list(self.buckets),
                "counts": list(self.counts),
                "count": self.count, "total": self.total,
                "min": self.minimum if self.count else None,
                "max": self.maximum if self.count else None}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Histogram":
        histogram = cls(payload["buckets"])
        histogram.counts = [int(n) for n in payload["counts"]]
        histogram.count = int(payload["count"])
        histogram.total = float(payload["total"])
        histogram.minimum = (math.inf if payload.get("min") is None
                             else float(payload["min"]))
        histogram.maximum = (-math.inf if payload.get("max") is None
                             else float(payload["max"]))
        return histogram


class MetricsRegistry:
    """Counters, gauges and histograms for one run (or one cell).

    ``merge`` is associative and commutative, so per-cell registries
    shipped back from worker processes fold into the run-level registry
    in completion order yet roll up identically to a serial run.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording -------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        stat = self.gauges.get(name)
        if stat is None:
            stat = self.gauges[name] = GaugeStat()
        stat.set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(
                buckets if buckets is not None else default_buckets(name))
        histogram.observe(value)

    # -- folding ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        for name, amount in other.counters.items():
            self.inc(name, amount)
        for name, stat in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                mine = self.gauges[name] = GaugeStat()
            mine.merge(stat)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_payload(
                    histogram.to_payload())
            else:
                mine.merge(histogram)

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        self.merge(MetricsRegistry.from_payload(payload))

    # -- serialization ---------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_payload()
                       for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_payload()
                           for k in sorted(self.histograms)},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.counters = {str(k): int(v)
                             for k, v in payload.get("counters", {}).items()}
        registry.gauges = {str(k): GaugeStat.from_payload(v)
                           for k, v in payload.get("gauges", {}).items()}
        registry.histograms = {
            str(k): Histogram.from_payload(v)
            for k, v in payload.get("histograms", {}).items()}
        return registry

    def rollup(self, volatile: bool = True) -> Dict[str, Any]:
        """Serializable rollup; ``volatile=False`` drops the metric
        names whose values depend on environment, not computation, and
        rounds float accumulators to 9 significant digits — float
        addition is not associative, so a ``--jobs N`` merge order
        differs from serial by ~1e-12 relative, far below the rounding.
        """
        payload = self.to_payload()
        if volatile:
            return payload
        def keep(name: str) -> bool:
            return not name.startswith(VOLATILE_PREFIXES)
        def stable(value: Any) -> Any:
            if isinstance(value, dict):
                return {k: (_stable_float(v) if k == "total" else v)
                        for k, v in value.items()}
            return value
        return {section: {name: stable(value)
                          for name, value in mapping.items() if keep(name)}
                for section, mapping in payload.items()}


# ---------------------------------------------------------------------------
# Spans and the tracer
# ---------------------------------------------------------------------------
class _NoopSpan:
    """Shared do-nothing context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """One live span: emits start/end events, accumulates timings."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "kind",
                 "attrs", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", span_id: str,
                 parent_id: Optional[str], name: str, kind: str,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        tracer._stack.append(self)
        record = {"ev": "span_start", "id": self.span_id,
                  "parent": self.parent_id, "name": self.name,
                  "kind": self.kind}
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._emit(record)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self._wall0
        cpu_s = time.process_time() - self._cpu0
        tracer = self.tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        record = {"ev": "span_end", "id": self.span_id,
                  "name": self.name, "wall_s": round(wall_s, 9),
                  "cpu_s": round(cpu_s, 9)}
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tracer._emit(record)
        tracer._accumulate_timing(self.name, wall_s)
        return False


class TraceSink:
    """Append-only JSONL event log, flushed per line.

    Per-line flushing is the crash contract: a worker killed by a
    timeout, an ``os._exit`` chaos injection or a supervisor kill still
    leaves every event it emitted on disk.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(record, separators=(",", ":"),
                                          default=str) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


class Tracer:
    """Per-process tracing state: span stack, metrics, event sink."""

    def __init__(self, trace_dir: os.PathLike, role: str = "main") -> None:
        self.trace_dir = Path(trace_dir)
        self.role = role
        pid = os.getpid()
        stem = "events.jsonl" if role == "main" else f"events-w{pid}.jsonl"
        self.sink = TraceSink(self.trace_dir / stem)
        self.metrics = MetricsRegistry()
        self.pid = pid
        self._stack: List[_Span] = []
        self._seq = 0
        #: name -> [rounds, total_s, min_s, max_s, sum_sq]
        self._timing: Dict[str, List[float]] = {}
        self.sink.write({"ev": "trace_start", "schema": TRACE_SCHEMA_VERSION,
                         "role": role, "pid": pid,
                         "ts": round(time.time(), 6)})

    # -- spans -----------------------------------------------------------
    def span(self, name: str, kind: str = "span", **attrs: Any) -> _Span:
        self._seq += 1
        span_id = f"{self.role[0]}{self.pid:x}-{self._seq:06d}"
        parent = self._stack[-1].span_id if self._stack else None
        return _Span(self, span_id, parent, name, kind, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        record = {"ev": "point", "name": name,
                  "parent": self._stack[-1].span_id if self._stack else None}
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def _emit(self, record: Dict[str, Any]) -> None:
        record["pid"] = self.pid
        # Event "ts" is wall-clock on purpose: it correlates events
        # across processes and machines. Durations never come from it —
        # spans measure with perf_counter.
        record["ts"] = round(time.time(), 6)
        self.sink.write(record)

    def _accumulate_timing(self, name: str, wall_s: float) -> None:
        stat = self._timing.get(name)
        if stat is None:
            self._timing[name] = [1, wall_s, wall_s, wall_s,
                                  wall_s * wall_s]
        else:
            stat[0] += 1
            stat[1] += wall_s
            stat[2] = min(stat[2], wall_s)
            stat[3] = max(stat[3], wall_s)
            stat[4] += wall_s * wall_s

    # -- outputs ---------------------------------------------------------
    def bench_timings(self) -> Dict[str, Dict[str, float]]:
        """Span timings in the ``BENCH_*.json`` shape (per span name)."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._timing):
            rounds, total, low, high, sum_sq = self._timing[name]
            rounds = int(rounds)
            mean = total / rounds
            variance = max(0.0, sum_sq / rounds - mean * mean)
            out[name] = {"mean_s": mean, "min_s": low,
                         "stddev_s": math.sqrt(variance)
                         if rounds > 1 else 0.0,
                         "rounds": rounds}
        return out

    def close(self) -> None:
        # A forked child inherits the parent's tracer; its copy of the
        # handle shares the parent's file offset, so only the owning
        # process may write the closing event.
        if self.pid == os.getpid():
            self.sink.write({"ev": "trace_end", "pid": self.pid,
                             "ts": round(time.time(), 6)})
        self.sink.close()


#: the process's tracer (None = tracing off, the no-op fast path)
_TRACER: Optional[Tracer] = None


def start(trace_dir: os.PathLike, role: str = "main") -> Tracer:
    """Start (or replace) the process tracer writing under *trace_dir*."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(trace_dir, role=role)
    return _TRACER


def stop() -> Optional[Tracer]:
    """Stop the tracer (close the sink); returns it for inspection."""
    global _TRACER
    tracer = _TRACER
    _TRACER = None
    if tracer is not None:
        tracer.close()
    return tracer


def active() -> Optional[Tracer]:
    return _TRACER


def ensure_started(trace_dir: Optional[str],
                   role: str = "main") -> Optional[Tracer]:
    """Idempotent start used by ``configure`` and worker initializers.

    A tracer inherited across ``fork`` (same dir, different pid) is
    replaced — the child must not share the parent's event log handle.
    """
    if trace_dir is None:
        return _TRACER
    tracer = _TRACER
    if tracer is not None and str(tracer.trace_dir) == str(trace_dir) \
            and tracer.pid == os.getpid():
        return tracer
    return start(trace_dir, role=role)


# -- module-level helpers (no-ops when tracing is off) ---------------------
def span(name: str, **attrs: Any):
    tracer = _TRACER
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **attrs)


def inc(name: str, amount: int = 1) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.inc(name, amount)


def observe(name: str, value: float,
            buckets: Optional[Sequence[float]] = None) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.observe(name, value, buckets)


def set_gauge(name: str, value: float) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.metrics.set_gauge(name, value)


class _MetricsCapture:
    """Swap a fresh registry in for the block (worker per-cell scope)."""

    __slots__ = ("registry", "_saved")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._saved: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        tracer = _TRACER
        if tracer is not None:
            self._saved = tracer.metrics
            tracer.metrics = self.registry
        return self.registry

    def __exit__(self, *exc: object) -> bool:
        tracer = _TRACER
        if tracer is not None and self._saved is not None:
            tracer.metrics = self._saved
        return False


def capture_metrics() -> _MetricsCapture:
    """Collect this block's metrics into a fresh registry.

    Used by supervised workers to ship one cell's metrics back to the
    parent, where they merge order-independently into the run rollup.
    When tracing is off the returned registry simply stays empty.
    """
    return _MetricsCapture()


# ---------------------------------------------------------------------------
# Run manifests
# ---------------------------------------------------------------------------
#: manifest keys covered by the content fingerprint — everything a
#: correct rerun must reproduce; timings/git/volatile metrics are not
FINGERPRINTED_KEYS = ("schema", "label", "config", "seed", "scale",
                      "metrics", "result_fingerprint")


def git_describe(repo_dir: Optional[os.PathLike] = None) -> str:
    """``git describe --always --dirty`` of the repo, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=repo_dir or os.getcwd(), capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def manifest_fingerprint(payload: Dict[str, Any]) -> str:
    """Content fingerprint over the deterministic manifest sections."""
    return fingerprint({key: payload.get(key)
                        for key in FINGERPRINTED_KEYS})


def build_manifest(label: str, *,
                   config: Any = None,
                   seed: Optional[int] = None,
                   scale: Optional[str] = None,
                   result_fingerprint: Optional[str] = None,
                   metrics: Optional[MetricsRegistry] = None,
                   timings: Optional[Dict[str, Dict[str, float]]] = None,
                   ) -> Dict[str, Any]:
    """Assemble one run's manifest payload (fingerprint included)."""
    registry = metrics if metrics is not None else MetricsRegistry()
    payload: Dict[str, Any] = {
        "schema": TRACE_SCHEMA_VERSION,
        "label": label,
        "config": canonicalize(config) if config is not None else None,
        "seed": seed,
        "scale": scale,
        "git": git_describe(),
        "metrics": registry.rollup(volatile=False),
        "volatile_metrics": {
            section: {name: value for name, value in mapping.items()
                      if name.startswith(VOLATILE_PREFIXES)}
            for section, mapping in registry.to_payload().items()},
        "result_fingerprint": result_fingerprint,
        "timings": dict(timings) if timings else {},
    }
    payload["fingerprint"] = manifest_fingerprint(payload)
    return payload


def write_manifest(path: os.PathLike, payload: Dict[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_manifest(path: os.PathLike) -> Dict[str, Any]:
    """Load a manifest — or a raw ``BENCH_*.json`` timings file, which
    is normalized into a timings-only manifest so ``bench gate`` can
    consume either format."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "schema" in payload and "label" in payload:
        return payload
    if payload and all(isinstance(v, dict) and "mean_s" in v
                       for v in payload.values()):
        # timings-only: no identity sections, so a gate against (or
        # of) a raw BENCH file checks timings and nothing else
        return {"schema": TRACE_SCHEMA_VERSION, "label": None,
                "config": None, "seed": None, "scale": None,
                "git": "unknown", "metrics": {}, "volatile_metrics": {},
                "result_fingerprint": None, "timings": payload,
                "fingerprint": None}
    raise ValueError(f"{path}: neither a run manifest nor a BENCH "
                     f"timings file")


def write_bench_json(path: os.PathLike,
                     timings: Dict[str, Dict[str, float]]) -> Path:
    """Write a ``BENCH_*.json``-shaped timings file (sorted, indented)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(timings, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# Manifest comparison: `repro trace diff` and `repro bench gate`
# ---------------------------------------------------------------------------
def _flatten_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """``{"counters": {"a": 1}}`` -> ``{"counters.a": 1}`` (histograms
    and gauges flatten to their payload dicts)."""
    flat: Dict[str, Any] = {}
    for section, mapping in (metrics or {}).items():
        for name, value in (mapping or {}).items():
            flat[f"{section}.{name}"] = value
    return flat


def diff_manifests(golden: Dict[str, Any], candidate: Dict[str, Any],
                   tolerance_pct: float = 10.0) -> List[str]:
    """Human-readable differences; empty means the candidate passes.

    Identity sections (config, seed, scale, metrics, result
    fingerprint) must match exactly; timings shared by both manifests
    may regress by at most *tolerance_pct* percent (being faster never
    fails). Sections absent from the golden manifest — e.g. a golden
    with timings stripped — are not checked.
    """
    problems: List[str] = []
    for key in ("schema", "label", "config", "seed", "scale",
                "result_fingerprint"):
        golden_value = golden.get(key)
        if golden_value is None:
            continue
        candidate_value = candidate.get(key)
        if canonicalize(golden_value) != canonicalize(candidate_value):
            problems.append(f"{key}: expected {golden_value!r}, "
                            f"got {candidate_value!r}")

    golden_metrics = _flatten_metrics(golden.get("metrics"))
    candidate_metrics = _flatten_metrics(candidate.get("metrics"))
    if golden_metrics:
        for name in sorted(golden_metrics):
            expected = golden_metrics[name]
            got = candidate_metrics.get(name)
            if canonicalize(expected) != canonicalize(got):
                problems.append(f"metric {name}: expected {expected!r}, "
                                f"got {got!r}")
        for name in sorted(set(candidate_metrics) - set(golden_metrics)):
            problems.append(f"metric {name}: unexpected "
                            f"(value {candidate_metrics[name]!r})")

    golden_fp = golden.get("fingerprint")
    candidate_fp = candidate.get("fingerprint")
    if golden_fp and candidate_fp and golden_fp != candidate_fp:
        problems.append(f"fingerprint: expected {golden_fp}, "
                        f"got {candidate_fp}")

    golden_timings = golden.get("timings") or {}
    candidate_timings = candidate.get("timings") or {}
    allowed = 1.0 + tolerance_pct / 100.0
    for name in sorted(set(golden_timings) & set(candidate_timings)):
        base = float(golden_timings[name].get("mean_s", 0.0))
        mean = float(candidate_timings[name].get("mean_s", 0.0))
        if base > 0.0 and mean > base * allowed:
            problems.append(
                f"timing {name}: mean {mean * 1e3:.3f}ms exceeds golden "
                f"{base * 1e3:.3f}ms by more than {tolerance_pct:g}% "
                f"({100.0 * (mean / base - 1.0):+.1f}%)")
    return problems


def gate(candidate_path: os.PathLike, golden_path: os.PathLike,
         tolerance_pct: float = 10.0) -> Tuple[bool, List[str]]:
    """Gate *candidate* against *golden*; ``(ok, report lines)``."""
    golden = load_manifest(golden_path)
    candidate = load_manifest(candidate_path)
    problems = diff_manifests(golden, candidate,
                              tolerance_pct=tolerance_pct)
    lines = [f"gate: candidate {candidate_path}",
             f"gate: golden    {golden_path} "
             f"(tolerance {tolerance_pct:g}%)"]
    if problems:
        lines.append(f"gate: FAIL — {len(problems)} problem(s):")
        lines.extend(f"  - {p}" for p in problems)
    else:
        checked = []
        if golden.get("fingerprint"):
            checked.append("fingerprint")
        if golden.get("metrics"):
            checked.append("metrics")
        shared = set(golden.get("timings") or ()) \
            & set(candidate.get("timings") or ())
        if shared:
            checked.append(f"{len(shared)} timing(s)")
        lines.append("gate: OK"
                     + (f" ({', '.join(checked)} checked)" if checked
                        else ""))
    return not problems, lines


def render_manifest(payload: Dict[str, Any]) -> str:
    """Human-readable manifest summary for ``repro trace show``."""
    from repro.util.tables import AsciiTable

    lines = [f"run manifest — {payload.get('label')}"]
    for key in ("fingerprint", "result_fingerprint", "scale", "seed",
                "git", "schema"):
        value = payload.get(key)
        if value is not None:
            lines.append(f"  {key:19s}{value}")
    metrics = payload.get("metrics") or {}
    counters = dict(metrics.get("counters") or {})
    volatile = (payload.get("volatile_metrics") or {}).get("counters") or {}
    counters.update(volatile)
    if counters:
        table = AsciiTable(["counter", "value"])
        for name in sorted(counters):
            table.add_row([name, counters[name]])
        lines.append(table.render())
    histograms = metrics.get("histograms") or {}
    if histograms:
        table = AsciiTable(["histogram", "count", "mean", "min", "max"])
        for name in sorted(histograms):
            h = histograms[name]
            count = int(h.get("count", 0))
            mean = (float(h.get("total", 0.0)) / count) if count else 0.0
            table.add_row([name, count, f"{mean:.4g}",
                           f"{h.get('min')}", f"{h.get('max')}"])
        lines.append(table.render())
    timings = payload.get("timings") or {}
    if timings:
        table = AsciiTable(["span", "rounds", "mean_ms", "min_ms"])
        for name in sorted(timings):
            t = timings[name]
            table.add_row([name, int(t.get("rounds", 0)),
                           f"{1e3 * float(t.get('mean_s', 0.0)):.3f}",
                           f"{1e3 * float(t.get('min_s', 0.0)):.3f}"])
        lines.append(table.render())
    return "\n".join(lines)


def read_events(trace_dir: os.PathLike) -> Iterator[Dict[str, Any]]:
    """Yield every event from every JSONL log under *trace_dir*
    (main first, then workers by filename; torn tails are skipped)."""
    for path in sorted(Path(trace_dir).glob("events*.jsonl")):
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed process
