"""Deterministic ordered map over experiment cells (legacy strict API).

The experiment matrix is embarrassingly parallel: every (die, method,
scenario) cell is an independent computation. :func:`parallel_map`
fans cells out over worker processes and collects results **in
submission order**, so a driver's table is byte-identical whether it
ran on one worker or sixteen.

Since the supervised runtime landed, this module is a thin strict
facade over :func:`repro.runtime.supervisor.supervised_map`: the same
worker management, per-cell reseeding and (when configured) timeouts
and retries — but any cell that terminally fails raises
:class:`~repro.util.errors.RuntimeExecutionError` instead of coming
back as a marked outcome. Drivers that want partial results use
``supervised_map`` directly. Tracing (spans per sweep and per cell,
worker metric ship-back) is inherited from the supervised layer — a
``parallel_map`` under an active tracer emits the same event shapes
as a supervised sweep.

Determinism contract:

* results come back ordered, never in completion order;
* before each cell — in the serial path *and* in workers — the global
  ``random`` module is re-seeded from
  :func:`repro.util.rng.derive_seed` of the root seed and the cell
  index, so even a stray library call into global ``random`` draws
  from a per-cell deterministic stream instead of whatever state the
  previous cell left behind;
* workers inherit the parent's runtime config (cache directory) but
  are pinned to ``jobs=1`` — no nested pools.

Workers must be given a module-level function and picklable cells.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.runtime.supervisor import SupervisorPolicy, supervised_map
from repro.util.rng import derive_seed

Cell = TypeVar("Cell")
Result = TypeVar("Result")

#: root label mixed into every per-cell seed derivation
_CELL_STREAM = "runtime.cell"


def cell_seed(root: int, *labels: object) -> int:
    """Deterministic per-cell seed (exposed for drivers that need an
    independent stream per cell)."""
    return derive_seed(root, _CELL_STREAM, *labels)


def parallel_map(fn: Callable[[Cell], Result], cells: Iterable[Cell],
                 jobs: Optional[int] = None, seed: int = 0
                 ) -> List[Result]:
    """Map *fn* over *cells*, in order, on ``jobs`` worker processes.

    ``jobs`` falls back to the runtime config (default 1 = serial,
    in-process). The serial path applies the same per-cell reseeding as
    the workers, so serial and parallel runs are interchangeable.
    Raises on the first terminal cell failure (strict semantics);
    checkpointing is the supervised drivers' concern, not this map's.
    """
    policy = dataclasses.replace(SupervisorPolicy.from_config(),
                                 strict=True, checkpoint_dir=None)
    sweep = supervised_map(fn, cells, jobs=jobs, seed=seed,
                           label="parallel_map", policy=policy)
    return sweep.results_or_raise()
