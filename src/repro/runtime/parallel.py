"""Deterministic process-pool map over experiment cells.

The experiment matrix is embarrassingly parallel: every (die, method,
scenario) cell is an independent computation (the same structure
wrapper/TAM co-optimization treats as independently schedulable
per-core test runs). :func:`parallel_map` fans cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor` and collects results
**in submission order**, so a driver's table is byte-identical whether
it ran on one worker or sixteen.

Determinism contract:

* results come back ordered (``Executor.map`` semantics), never in
  completion order;
* before each cell — in the serial path *and* in workers — the global
  ``random`` module is re-seeded from
  :func:`repro.util.rng.derive_seed` of the root seed and the cell
  index, so even a stray library call into global ``random`` draws
  from a per-cell deterministic stream instead of whatever state the
  previous cell left behind;
* workers inherit the parent's runtime config (cache directory) but
  are pinned to ``jobs=1`` — no nested pools.

Workers must be given a module-level function and picklable cells.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, TypeVar

from repro.runtime.config import (
    RuntimeConfig,
    apply_config,
    current_config,
    resolve_jobs,
)
from repro.util.rng import derive_seed

Cell = TypeVar("Cell")
Result = TypeVar("Result")

#: root label mixed into every per-cell seed derivation
_CELL_STREAM = "runtime.cell"


def cell_seed(root: int, *labels: object) -> int:
    """Deterministic per-cell seed (exposed for drivers that need an
    independent stream per cell)."""
    return derive_seed(root, _CELL_STREAM, *labels)


# Worker-side state, set by the pool initializer.
_WORKER_FN: Optional[Callable] = None
_WORKER_SEED: int = 0


def _init_worker(config: RuntimeConfig, fn: Callable, seed: int) -> None:
    global _WORKER_FN, _WORKER_SEED
    apply_config(config)
    _WORKER_FN = fn
    _WORKER_SEED = seed


def _run_cell(indexed_cell: "tuple[int, Any]") -> Any:
    index, cell = indexed_cell
    random.seed(cell_seed(_WORKER_SEED, index))
    return _WORKER_FN(cell)


def parallel_map(fn: Callable[[Cell], Result], cells: Iterable[Cell],
                 jobs: Optional[int] = None, seed: int = 0
                 ) -> List[Result]:
    """Map *fn* over *cells*, in order, on ``jobs`` worker processes.

    ``jobs`` falls back to the runtime config (default 1 = serial,
    in-process). The serial path applies the same per-cell reseeding as
    the workers, so serial and parallel runs are interchangeable.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(cells) <= 1:
        results: List[Result] = []
        for index, cell in enumerate(cells):
            random.seed(cell_seed(seed, index))
            results.append(fn(cell))
        return results

    config = current_config()
    with ProcessPoolExecutor(
            max_workers=min(jobs, len(cells)),
            initializer=_init_worker,
            initargs=(config, fn, seed)) as pool:
        return list(pool.map(_run_cell, enumerate(cells)))
