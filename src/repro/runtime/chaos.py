"""Deterministic fault injection for the supervised runtime.

The supervisor's failure semantics (crash isolation, timeouts, retry,
quarantine, resume) are only trustworthy if they are exercised against
*real* failures, reproducibly. This module injects them on demand:

* ``crash``   — the worker process dies via ``os._exit`` (simulating a
  segfaulting native kernel or an OOM kill),
* ``hang``    — the cell sleeps far past any sane budget (simulating a
  wedged PODEM search), to be killed by the per-cell timeout,
* ``raise``   — the cell raises :class:`ChaosError`,
* ``netlist`` — the cell raises :class:`~repro.util.errors.NetlistError`
  (simulating a malformed generated netlist reaching the flow),
* ``delay``   — the cell stalls ``seconds`` before running normally
  (service chaos: exercises job deadlines, slow workers and backoff
  windows while the result must still come back correct).

A :class:`ChaosPlan` targets cells by *sweep index* and is applied by
the supervisor in the worker, after the per-cell reseed and before the
cell function runs — so a surviving or retried cell draws exactly the
random stream a clean run would. Injection is attempt-bounded
(``attempts=1`` injures only the first try, letting the retry path be
validated end to end), and plans travel to workers with the rest of
the runtime config, so ``--jobs N`` sweeps are injured deterministically
regardless of which worker picks a cell up.

Cache corruption — the fourth defect class — does not involve workers;
:func:`corrupt_cache_entry` deterministically mangles an on-disk entry
so the quarantine path can be asserted.

Plans are installed programmatically (``configure(chaos=plan)``) or via
``REPRO_CHAOS`` as JSON, e.g.::

    REPRO_CHAOS='{"cells": {"1": {"action": "crash"}},
                  "hang_seconds": 600}'
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.errors import ConfigError, NetlistError, ReproError

#: recognised injection actions
ACTIONS = ("crash", "hang", "raise", "netlist", "delay")


class ChaosError(ReproError):
    """An injected (deliberate) cell failure."""


@dataclass(frozen=True)
class ChaosSpec:
    """One cell's injection: what to do and for how many attempts."""

    action: str
    #: injure this many attempts; later attempts run clean (so
    #: ``attempts=1`` with one retry must reproduce a clean cell)
    attempts: int = 1
    message: str = "chaos: injected failure"
    #: how long a "delay" stalls the cell before running it normally
    #: (service chaos: exercises deadline/timeout paths without the
    #: assertion itself ever reading a clock)
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ConfigError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {ACTIONS}")
        if self.attempts < 1:
            raise ConfigError(
                f"chaos attempts must be >= 1, got {self.attempts}")


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic injection plan for one sweep, keyed by cell index."""

    cells: Dict[int, ChaosSpec] = field(default_factory=dict)
    #: how long a "hang" sleeps; keep it far above the cell timeout
    hang_seconds: float = 3600.0
    #: exit status a "crash" dies with (139 looks like a SIGSEGV)
    crash_code: int = 139

    def spec_for(self, index: int, attempt: int) -> Optional[ChaosSpec]:
        spec = self.cells.get(index)
        if spec is None or attempt > spec.attempts:
            return None
        return spec

    def apply(self, index: int, attempt: int) -> None:
        """Injure cell *index* on *attempt* per the plan (worker-side)."""
        spec = self.spec_for(index, attempt)
        if spec is None:
            return
        from repro.runtime import trace
        trace.inc("chaos.injections")
        trace.event("chaos.injected", index=index, attempt=attempt,
                    action=spec.action)
        if spec.action == "crash":
            os._exit(self.crash_code)
        if spec.action == "hang":
            time.sleep(self.hang_seconds)
            return
        if spec.action == "delay":
            # stall, then let the cell run normally: the job must still
            # come back correct (or be killed by its deadline)
            time.sleep(spec.seconds)
            return
        if spec.action == "netlist":
            raise NetlistError("chaos: malformed netlist")
        raise ChaosError(spec.message)


def plan_from_json(raw: str) -> ChaosPlan:
    """Parse a ``REPRO_CHAOS`` JSON payload into a plan."""
    try:
        data = json.loads(raw)
    except ValueError:
        raise ConfigError(f"REPRO_CHAOS is not valid JSON: {raw!r}"
                          ) from None
    if not isinstance(data, dict):
        raise ConfigError("REPRO_CHAOS must be a JSON object")
    cells: Dict[int, ChaosSpec] = {}
    for key, spec in dict(data.get("cells", {})).items():
        try:
            index = int(key)
        except ValueError:
            raise ConfigError(
                f"REPRO_CHAOS cell keys must be integers, got {key!r}"
            ) from None
        cells[index] = ChaosSpec(
            action=spec.get("action", "raise"),
            attempts=int(spec.get("attempts", 1)),
            message=spec.get("message", "chaos: injected failure"),
            seconds=float(spec.get("seconds", 0.05)),
        )
    return ChaosPlan(
        cells=cells,
        hang_seconds=float(data.get("hang_seconds", 3600.0)),
        crash_code=int(data.get("crash_code", 139)),
    )


def corrupt_cache_entry(root: os.PathLike, nth: int = 0,
                        mode: str = "truncate") -> str:
    """Deterministically corrupt the *nth* cache entry under *root*.

    ``truncate`` chops the JSON mid-stream (a crash during a write on a
    filesystem without atomic rename); ``garbage`` overwrites it with
    non-JSON bytes; ``empty`` leaves a zero-byte file; ``misshape``
    keeps valid JSON but drops every key the loader needs. Returns the
    corrupted file's path.
    """
    from pathlib import Path

    entries = sorted(Path(root).glob("[0-9a-f][0-9a-f]/*.json"))
    if not entries:
        raise FileNotFoundError(f"no cache entries under {root}")
    target = entries[nth % len(entries)]
    if mode == "truncate":
        data = target.read_bytes()
        target.write_bytes(data[:max(1, len(data) // 2)])
    elif mode == "garbage":
        target.write_bytes(b"\x00\xffnot json\xfe")
    elif mode == "empty":
        target.write_bytes(b"")
    elif mode == "misshape":
        target.write_text('{"schema": "wrong-shape"}', encoding="utf-8")
    else:
        raise ConfigError(f"unknown corruption mode {mode!r}")
    return str(target)
