"""Supervised execution of experiment sweeps: per-cell isolation,
wall-clock timeouts, bounded retry, checkpoint/resume.

:func:`repro.runtime.parallel.parallel_map` gave the experiment matrix
ordered, deterministic fan-out — but one worker crash, one wedged PODEM
cell or one unpicklable exception aborted the whole sweep with nothing
to show. This module replaces the bare pool ``map`` with a supervisor
that owns its worker processes outright (one duplex pipe each, so a
hung worker can actually be killed) and turns every per-cell mishap
into data instead of an abort:

* **crash isolation** — a worker that dies mid-cell (segfault,
  ``os._exit``, OOM kill) yields a ``failed`` :class:`CellOutcome`;
  a replacement worker is forked and the sweep continues,
* **timeouts** — a cell past ``timeout_s`` has its worker killed and
  comes back as ``timeout``,
* **bounded retry** — a failed cell is re-attempted up to ``retries``
  times *with the same derived per-cell seed* (the reseed happens per
  attempt, before any injection or work), so a retried cell is
  byte-identical to a first-try cell,
* **checkpoint/resume** — each completed cell is journaled to a
  checkpoint file (magic + header + length-prefixed pickled records;
  a torn tail from a killed sweep is truncated on resume), so an
  interrupted sweep recomputes only the incomplete cells,
* **strict mode** — fail fast: the first terminal failure raises
  :class:`~repro.util.errors.RuntimeExecutionError` (or
  :class:`~repro.util.errors.CellTimeoutError`) instead of completing.

Determinism contract: identical to :mod:`repro.runtime.parallel` —
outcomes come back in submission order, every attempt of every cell
reseeds global ``random`` from ``cell_seed(seed, index)``, and workers
inherit the parent's runtime config pinned to ``jobs=1``. A sweep with
injected faults leaves every *surviving* cell byte-identical to a
clean serial run (asserted by the chaos suite).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import multiprocessing.connection as mp_connection
import os
import pickle
import random
import struct
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.runtime import instrument, trace
from repro.runtime.config import (
    RuntimeConfig,
    apply_config,
    current_config,
    resolve_jobs,
)
from repro.util.errors import CellTimeoutError, RuntimeExecutionError
from repro.util.fingerprint import fingerprint
from repro.util.rng import derive_seed

#: root label mixed into every per-cell seed derivation (shared with
#: repro.runtime.parallel so the two layers seed identically)
CELL_STREAM = "runtime.cell"

# Outcome statuses
OK = "ok"
RETRIED = "retried"       # ok, but needed more than one attempt
FAILED = "failed"         # exception or worker crash, retries exhausted
TIMEOUT = "timeout"       # wall-clock budget exceeded, worker killed
PENDING = "pending"       # never started: sweep drained first


# ---------------------------------------------------------------------------
# Graceful drain: SIGTERM/SIGINT-safe early stop.
#
# A drained sweep finishes the cells already on workers (journaling
# them to the checkpoint as usual), skips everything still queued, and
# returns a SweepResult whose unstarted cells are ``pending`` — so a
# resumed sweep completes byte-identically from the checkpoint. The
# flag is process-wide (one sweep runs at a time per process) and is
# cleared by every supervised_map entry so a drain cannot leak into
# the next sweep.
# ---------------------------------------------------------------------------
import threading as _threading

_DRAIN = _threading.Event()


def request_drain() -> None:
    """Ask the running sweep to stop after its in-flight cells."""
    _DRAIN.set()


def drain_requested() -> bool:
    return _DRAIN.is_set()


def clear_drain() -> None:
    _DRAIN.clear()


def install_drain_handlers(signals: Optional[Tuple[int, ...]] = None
                           ) -> None:
    """Route SIGTERM/SIGINT to :func:`request_drain` (main thread only).

    Used by long-running drivers (and the test harness) so an orderly
    shutdown checkpoints instead of tearing the sweep mid-write."""
    import signal as _signal

    for signum in signals or (_signal.SIGTERM, _signal.SIGINT):
        _signal.signal(signum, lambda _s, _f: request_drain())


def cell_seed(root: int, *labels: object) -> int:
    """Deterministic per-cell seed (same derivation for every attempt)."""
    return derive_seed(root, CELL_STREAM, *labels)


@dataclass
class CellOutcome:
    """Structured fate of one experiment cell."""

    index: int
    status: str
    result: Any = None
    error: Optional[str] = None
    attempts: int = 1
    from_checkpoint: bool = False
    #: original exception when it survived pickling (strict re-raise)
    exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status in (OK, RETRIED)

    def describe(self) -> str:
        if self.ok:
            if self.from_checkpoint:
                return "ok (restored from checkpoint)"
            return (f"ok after {self.attempts} attempt(s)"
                    if self.attempts > 1 else "ok")
        return f"{self.status} after {self.attempts} attempt(s): {self.error}"


@dataclass(frozen=True)
class SupervisorPolicy:
    """How a sweep reacts to failure (defaults: complete, never hang)."""

    timeout_s: Optional[float] = None
    retries: int = 0
    strict: bool = False
    checkpoint_dir: Optional[str] = None
    #: deterministic fault injection (ChaosPlan), applied worker-side
    chaos: Optional[Any] = None

    @classmethod
    def from_config(cls, config: Optional[RuntimeConfig] = None
                    ) -> "SupervisorPolicy":
        config = config or current_config()
        return cls(timeout_s=config.timeout_s, retries=config.retries,
                   strict=config.strict,
                   checkpoint_dir=config.checkpoint_dir,
                   chaos=config.chaos)


@dataclass
class SweepResult:
    """All outcomes of one supervised sweep, in submission order."""

    label: str
    outcomes: List[CellOutcome]

    @property
    def results(self) -> List[Any]:
        """Per-cell results (``None`` where the cell did not survive)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def failures(self) -> List[CellOutcome]:
        return [outcome for outcome in self.outcomes
                if not outcome.ok and outcome.status != PENDING]

    @property
    def pending(self) -> List[CellOutcome]:
        """Cells a drain stopped before they ever started."""
        return [outcome for outcome in self.outcomes
                if outcome.status == PENDING]

    @property
    def drained(self) -> bool:
        return bool(self.pending)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.pending

    def results_or_raise(self) -> List[Any]:
        for outcome in self.outcomes:
            if not outcome.ok:
                raise _terminal_error(self.label, outcome)
        return self.results


def _terminal_error(label: str, outcome: CellOutcome
                    ) -> RuntimeExecutionError:
    kind = CellTimeoutError if outcome.status == TIMEOUT \
        else RuntimeExecutionError
    error = kind(f"{label}[{outcome.index}] {outcome.describe()}")
    if outcome.exception is not None:
        error.__cause__ = outcome.exception
    return error


# ---------------------------------------------------------------------------
# Checkpoint file: magic + header record + (index, result) records.
# ---------------------------------------------------------------------------
_MAGIC = b"RPRO-CKPT1\n"
_LEN = struct.Struct(">I")


def sweep_fingerprint(label: str, seed: int, cells: List[Any]) -> str:
    """Identity of a sweep: same label + seed + cells == same sweep."""
    try:
        return fingerprint({"label": label, "seed": int(seed),
                            "cells": cells})
    except TypeError:
        # cells outside the canonicalizer's vocabulary: fall back to
        # their pickled bytes (stable for identical values + interpreter)
        blob = pickle.dumps((label, int(seed), cells), protocol=4)
        return hashlib.sha256(blob).hexdigest()


class SweepCheckpoint:
    """Append-only journal of completed cells for one sweep.

    Records are length-prefixed pickles; a torn tail (the sweep was
    killed mid-write) is detected on resume and truncated away, never
    raised. A file whose magic or header does not match the sweep is
    discarded and rewritten — a checkpoint can only ever *skip* cells
    of the exact sweep that wrote it.
    """

    def __init__(self, path: Path, header: Dict[str, Any]) -> None:
        self.path = Path(path)
        self.header = header
        self._handle = None

    # -- resume ----------------------------------------------------------
    @classmethod
    def resume(cls, path: Path, header: Dict[str, Any]
               ) -> Tuple["SweepCheckpoint", Dict[int, Any]]:
        """Open (or create) the journal; return it plus completed cells."""
        checkpoint = cls(path, header)
        completed, good_offset = checkpoint._read_existing()
        checkpoint.path.parent.mkdir(parents=True, exist_ok=True)
        if good_offset is None:
            handle = open(checkpoint.path, "wb")
            handle.write(_MAGIC)
            handle.write(_frame(header))
            handle.flush()
        else:
            handle = open(checkpoint.path, "r+b")
            handle.truncate(good_offset)
            handle.seek(good_offset)
        checkpoint._handle = handle
        return checkpoint, completed

    def _read_existing(self) -> Tuple[Dict[int, Any], Optional[int]]:
        completed: Dict[int, Any] = {}
        try:
            handle = open(self.path, "rb")
        except OSError:
            return completed, None
        with handle:
            if handle.read(len(_MAGIC)) != _MAGIC:
                return {}, None
            first = _read_frame(handle)
            if first is None or first[0] != self.header:
                return {}, None
            good_offset = first[1]
            while True:
                frame = _read_frame(handle)
                if frame is None:
                    break
                record, good_offset = frame
                try:
                    index, result = record
                    completed[int(index)] = result
                except (TypeError, ValueError):
                    break
            return completed, good_offset

    # -- append ----------------------------------------------------------
    def append(self, index: int, result: Any) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(_frame((index, result)))
            self._handle.flush()
        except (OSError, pickle.PicklingError):
            # an unjournalable result only costs resume coverage
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _frame(obj: Any) -> bytes:
    blob = pickle.dumps(obj, protocol=4)
    return _LEN.pack(len(blob)) + blob


def _read_frame(handle) -> Optional[Tuple[Any, int]]:
    """One record plus the offset after it, or ``None`` on a torn tail."""
    raw = handle.read(_LEN.size)
    if len(raw) < _LEN.size:
        return None
    (length,) = _LEN.unpack(raw)
    blob = handle.read(length)
    if len(blob) < length:
        return None
    try:
        return pickle.loads(blob), handle.tell()
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _pickle_safe(exc: BaseException) -> Optional[BaseException]:
    try:
        pickle.dumps(exc, protocol=4)
        return exc
    except Exception:
        return None


def _worker_main(conn, config: RuntimeConfig, fn: Callable, seed: int,
                 chaos: Optional[Any]) -> None:
    apply_config(config)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            conn.close()
            return
        index, attempt, cell = task
        random.seed(cell_seed(seed, index))
        metrics_payload = None
        try:
            # Per-cell metrics capture: the cell's counters/histograms
            # ship back with the result and merge into the parent's
            # registry, so a --jobs N rollup equals a serial one.
            with trace.capture_metrics() as cell_metrics, \
                    trace.span("cell", index=index, attempt=attempt):
                if chaos is not None:
                    chaos.apply(index, attempt)
                result = fn(cell)
            if trace.active() is not None:
                metrics_payload = cell_metrics.to_payload()
        except Exception as exc:
            message = (f"{type(exc).__name__}: {exc}"
                       or type(exc).__name__)
            payload = ("err", index, attempt, message,
                       _pickle_safe(exc), None)
        else:
            payload = ("ok", index, attempt, None, result, metrics_payload)
        try:
            conn.send(payload)
        except Exception:
            try:
                conn.send(("err", index, attempt,
                           "result could not be sent back "
                           "(unpicklable or parent gone)", None, None))
            except Exception:
                return


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
class _Worker:
    """One supervised worker process and its command pipe."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, ctx, config: RuntimeConfig, fn: Callable,
                 seed: int, chaos: Optional[Any]) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, config, fn, seed, chaos),
            daemon=True)
        self.process.start()
        child_conn.close()
        self.task: Optional[Tuple[int, int]] = None  # (index, attempt)
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError, ValueError):
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self) -> None:
        """Graceful stop for an idle worker; kill if it won't go."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


class _Supervisor:
    """State machine driving one process-backed sweep."""

    def __init__(self, fn: Callable, cells: List[Any], jobs: int,
                 seed: int, policy: SupervisorPolicy, label: str,
                 outcomes: List[Optional[CellOutcome]],
                 checkpoint: Optional[SweepCheckpoint]) -> None:
        self.fn = fn
        self.cells = cells
        self.seed = seed
        self.policy = policy
        self.label = label
        self.outcomes = outcomes
        self.checkpoint = checkpoint
        self.ctx = mp.get_context()
        self.config = current_config()
        self.workers: List[_Worker] = []
        self.idle: List[_Worker] = []
        self.queue: deque = deque()
        self.jobs = jobs
        self._spawn_strikes = 0

    # -- lifecycle -------------------------------------------------------
    def run(self, todo: List[int]) -> None:
        self.queue.extend((index, 1) for index in todo)
        try:
            for _ in range(min(self.jobs, len(self.queue))):
                self._spawn()
            while self.queue or self._busy():
                if drain_requested():
                    # stop feeding: let in-flight cells finish (they
                    # journal to the checkpoint), leave the rest queued
                    if not self._busy():
                        trace.event("supervisor.drained",
                                    remaining=len(self.queue))
                        break
                else:
                    self._assign()
                self._wait_and_collect()
        finally:
            self._shutdown_all()

    def _spawn(self) -> None:
        worker = _Worker(self.ctx, self.config, self.fn, self.seed,
                         self.policy.chaos)
        self.workers.append(worker)
        self.idle.append(worker)

    def _retire(self, worker: _Worker, kill: bool) -> None:
        if kill:
            worker.kill()
        else:
            worker.shutdown()
        if worker in self.workers:
            self.workers.remove(worker)
        if worker in self.idle:
            self.idle.remove(worker)

    def _busy(self) -> List[_Worker]:
        return [w for w in self.workers if w.task is not None]

    def _shutdown_all(self) -> None:
        for worker in list(self.workers):
            self._retire(worker, kill=worker.task is not None)

    # -- scheduling ------------------------------------------------------
    def _assign(self) -> None:
        while self.queue and self.idle:
            index, attempt = self.queue.popleft()
            worker = self.idle.pop()
            try:
                worker.conn.send((index, attempt, self.cells[index]))
            except (OSError, ValueError, pickle.PicklingError) as exc:
                # worker unusable before the cell even started: the
                # attempt is not charged to the cell, but a pool that
                # can't keep a worker alive long enough to hand a task
                # over is broken — bound the respawn loop.
                self._retire(worker, kill=True)
                self._spawn_strikes += 1
                if self._spawn_strikes > 8 + 2 * self.jobs:
                    raise RuntimeExecutionError(
                        f"{self.label}: worker pool broken "
                        f"({self._spawn_strikes} consecutive failed "
                        f"hand-offs; last: {exc})") from exc
                self.queue.appendleft((index, attempt))
                self._spawn()
                continue
            worker.task = (index, attempt)
            worker.deadline = (time.monotonic() + self.policy.timeout_s
                               if self.policy.timeout_s else None)

    def _wait_and_collect(self) -> None:
        busy = self._busy()
        if not busy:
            return
        timeout = None
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - time.monotonic())
        ready = set(mp_connection.wait([w.conn for w in busy],
                                       timeout=timeout))
        now = time.monotonic()
        for worker in busy:
            if worker.conn in ready:
                self._collect(worker)
            elif worker.deadline is not None and now >= worker.deadline:
                self._on_timeout(worker)

    def _collect(self, worker: _Worker) -> None:
        index, attempt = worker.task
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # the worker died mid-cell: crash isolation path
            instrument.count("supervisor.crashes")
            exitcode = worker.process.exitcode
            trace.event("supervisor.crash", index=index, attempt=attempt,
                        exit_code=exitcode)
            self._retire(worker, kill=True)
            self._task_failed(
                index, attempt, FAILED,
                f"worker crashed (exit code {exitcode})", None)
            self._refill()
            return
        worker.task = None
        worker.deadline = None
        self.idle.append(worker)
        self._spawn_strikes = 0
        kind, r_index, r_attempt, error, payload, metrics = message
        tracer = trace.active()
        if metrics is not None and tracer is not None:
            tracer.metrics.merge_payload(metrics)
        if kind == "ok":
            self._task_done(r_index, r_attempt, payload)
        else:
            self._task_failed(r_index, r_attempt, FAILED, error, payload)

    def _on_timeout(self, worker: _Worker) -> None:
        index, attempt = worker.task
        instrument.count("supervisor.timeouts")
        trace.event("supervisor.timeout", index=index, attempt=attempt,
                    timeout_s=self.policy.timeout_s)
        self._retire(worker, kill=True)
        self._task_failed(
            index, attempt, TIMEOUT,
            f"exceeded {self.policy.timeout_s:g}s wall-clock", None)
        self._refill()

    def _refill(self) -> None:
        """Replace a retired worker while work remains."""
        if self.queue and len(self.workers) < self.jobs:
            self._spawn()

    # -- outcome recording ----------------------------------------------
    def _task_done(self, index: int, attempt: int, result: Any) -> None:
        outcome = CellOutcome(
            index=index,
            status=OK if attempt == 1 else RETRIED,
            result=result,
            attempts=attempt)
        self.outcomes[index] = outcome
        instrument.count("supervisor.cells")
        trace.observe("supervisor.attempts", attempt)
        if self.checkpoint is not None:
            self.checkpoint.append(index, result)

    def _task_failed(self, index: int, attempt: int, status: str,
                     error: Optional[str],
                     exception: Optional[BaseException]) -> None:
        if attempt <= self.policy.retries:
            instrument.count("supervisor.retries")
            trace.event("supervisor.retry", index=index,
                        attempt=attempt, error=error)
            self.queue.append((index, attempt + 1))
            return
        outcome = CellOutcome(index=index, status=status, error=error,
                              attempts=attempt, exception=exception)
        self.outcomes[index] = outcome
        instrument.count("supervisor.failures")
        trace.event("supervisor.cell_failed", index=index, status=status,
                    attempts=attempt, error=error)
        if self.policy.strict:
            raise _terminal_error(self.label, outcome)


# ---------------------------------------------------------------------------
# Serial path (no isolation required): same seeding, same outcomes.
# ---------------------------------------------------------------------------
def _run_serial(fn: Callable, cells: List[Any], todo: List[int],
                seed: int, policy: SupervisorPolicy, label: str,
                outcomes: List[Optional[CellOutcome]],
                checkpoint: Optional[SweepCheckpoint]) -> None:
    for position, index in enumerate(todo):
        if drain_requested():
            trace.event("supervisor.drained",
                        remaining=len(todo) - position)
            break
        attempt = 0
        while True:
            attempt += 1
            random.seed(cell_seed(seed, index))
            try:
                with trace.span("cell", index=index, attempt=attempt):
                    result = fn(cells[index])
            except Exception as exc:
                if attempt <= policy.retries:
                    instrument.count("supervisor.retries")
                    trace.event("supervisor.retry", index=index,
                                attempt=attempt,
                                error=f"{type(exc).__name__}: {exc}")
                    continue
                outcome = CellOutcome(
                    index=index, status=FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=attempt, exception=exc)
                outcomes[index] = outcome
                instrument.count("supervisor.failures")
                trace.event("supervisor.cell_failed", index=index,
                            status=FAILED, attempts=attempt,
                            error=outcome.error)
                if policy.strict:
                    raise _terminal_error(label, outcome) from exc
                break
            outcomes[index] = CellOutcome(
                index=index,
                status=OK if attempt == 1 else RETRIED,
                result=result, attempts=attempt)
            instrument.count("supervisor.cells")
            trace.observe("supervisor.attempts", attempt)
            if checkpoint is not None:
                checkpoint.append(index, result)
            break


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def supervised_map(fn: Callable[[Any], Any], cells: Iterable[Any],
                   jobs: Optional[int] = None, seed: int = 0,
                   label: str = "sweep",
                   policy: Optional[SupervisorPolicy] = None
                   ) -> SweepResult:
    """Map *fn* over *cells* under supervision; never lose the sweep.

    Returns a :class:`SweepResult` whose outcomes are in submission
    order. With ``policy=None`` the policy comes from the runtime
    config (CLI flags / environment). Workers must be given a
    module-level function and picklable cells, as with
    :func:`~repro.runtime.parallel.parallel_map`.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if policy is None:
        policy = SupervisorPolicy.from_config()
    # a drain belongs to exactly one sweep: a request left over from a
    # previous (already finished) sweep must not abort this one
    clear_drain()

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)

    checkpoint: Optional[SweepCheckpoint] = None
    if policy.checkpoint_dir:
        identity = sweep_fingerprint(label, seed, cells)
        header = {"label": label, "seed": int(seed),
                  "total": len(cells), "fingerprint": identity}
        path = Path(policy.checkpoint_dir) / f"{label}-{identity[:12]}.ckpt"
        checkpoint, completed = SweepCheckpoint.resume(path, header)
        for index, result in completed.items():
            if 0 <= index < len(cells):
                outcomes[index] = CellOutcome(
                    index=index, status=OK, result=result,
                    attempts=0, from_checkpoint=True)
                instrument.count("supervisor.checkpoint_restored")

    todo = [index for index in range(len(cells)) if outcomes[index] is None]
    # process isolation is required to enforce timeouts and to survive
    # crash-class chaos; otherwise a single pending cell stays in-process
    isolate = policy.timeout_s is not None or policy.chaos is not None
    try:
        if todo:
            with trace.span("sweep", label=label, cells=len(cells),
                            todo=len(todo), jobs=jobs,
                            strict=policy.strict):
                if isolate or (jobs > 1 and len(todo) > 1):
                    supervisor = _Supervisor(fn, cells, jobs, seed, policy,
                                             label, outcomes, checkpoint)
                    supervisor.run(todo)
                else:
                    _run_serial(fn, cells, todo, seed, policy, label,
                                outcomes, checkpoint)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    for index in range(len(cells)):
        if outcomes[index] is None:
            # a drain stopped the sweep before this cell started; a
            # resumed sweep picks it up from the checkpoint
            outcomes[index] = CellOutcome(
                index=index, status=PENDING, attempts=0,
                error="drained before start")
    return SweepResult(label=label, outcomes=outcomes)
