"""Lightweight per-phase instrumentation: timers and counters.

The flow, the clique partitioner and the ATPG engine report *where the
time goes* (wall-clock per phase) and *how hard they worked* (random
blocks simulated, PODEM attempts and backtracks, clique merges and
rejections, ECO repair rounds) into a structured :class:`RunReport`.

Collection is opt-in and stack-scoped::

    with instrument.collect() as report:
        run_wcm_flow(problem, config)
    print(report.render())

When no collector is active (the common case — experiment sweeps,
tests), :func:`phase` and :func:`count` are no-ops costing one list
check, so instrumented hot paths pay nothing in production runs.
Reports merge (:meth:`RunReport.merge`), so per-cell reports from
parallel workers can be folded into one run-level view.

This module is also the hook point for the structured tracing layer
(:mod:`repro.runtime.trace`): when a tracer is started, every
:func:`phase` additionally opens a span (streamed to the JSONL event
log and aggregated into BENCH-compatible timings) and every
:func:`count` feeds the tracer's metrics registry — with no change to
the call sites and no cost when tracing is off.

Re-entrancy: a phase that re-enters itself under the same name (e.g. a
recursive repair loop) charges its wall-clock only once, at the
outermost level — inner entries bump ``calls`` but contribute zero
seconds, so a report's per-phase seconds never exceed real elapsed
time and :meth:`RunReport.render` shares stay <= 100%.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.runtime import trace
from repro.util.tables import AsciiTable


@dataclass
class PhaseStat:
    """Accumulated wall-clock of one named phase."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class RunReport:
    """Structured outcome of one instrumented run."""

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    #: live same-name phase nesting depth (not part of the payload)
    _phase_depth: Dict[str, int] = field(default_factory=dict, init=False,
                                         repr=False, compare=False)

    def add_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        stat = self.phases.setdefault(name, PhaseStat())
        stat.calls += calls
        stat.seconds += seconds

    def add_count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other: "RunReport") -> None:
        for name, stat in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStat())
            mine.calls += stat.calls
            mine.seconds += stat.seconds
        for name, amount in other.counters.items():
            self.add_count(name, amount)

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.phases.values())

    # ------------------------------------------------------------------
    def render(self, title: str = "run profile") -> str:
        total = self.total_seconds
        table = AsciiTable(["phase", "calls", "seconds", "share"],
                           title=title)
        for name in sorted(self.phases):
            stat = self.phases[name]
            share = 100.0 * stat.seconds / total if total else 0.0
            table.add_row([name, stat.calls, f"{stat.seconds:.3f}",
                           f"{share:5.1f}%"])
        lines = [table.render()]
        if self.counters:
            counter_table = AsciiTable(["counter", "value"])
            for name in sorted(self.counters):
                counter_table.add_row([name, self.counters[name]])
            lines.append(counter_table.render())
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, object]:
        return {
            "phases": {name: {"calls": s.calls, "seconds": s.seconds}
                       for name, s in self.phases.items()},
            "counters": dict(self.counters),
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "RunReport":
        report = cls()
        for name, stat in dict(payload.get("phases", {})).items():
            report.phases[str(name)] = PhaseStat(
                calls=int(stat["calls"]), seconds=float(stat["seconds"]))
        for name, amount in dict(payload.get("counters", {})).items():
            report.counters[str(name)] = int(amount)
        return report


#: stack of active collectors (innermost last); per process
_ACTIVE: List[RunReport] = []


@contextmanager
def collect(report: Optional[RunReport] = None) -> Iterator[RunReport]:
    """Activate a collector for the dynamic extent of the block."""
    report = report if report is not None else RunReport()
    _ACTIVE.append(report)
    try:
        yield report
    finally:
        _ACTIVE.pop()


def active_report() -> Optional[RunReport]:
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the block under *name* (no-op without collector or tracer).

    With a collector: the innermost report accrues the phase; a
    re-entrant phase of the same name charges seconds only at its
    outermost level (calls still count every entry). With a tracer: a
    span of the same name is opened so the phase lands in the JSONL
    event trail and the manifest timings.
    """
    report = _ACTIVE[-1] if _ACTIVE else None
    tracer = trace._TRACER
    if report is None and tracer is None:
        yield
        return
    span = tracer.span(name, kind="phase") if tracer is not None else None
    if span is not None:
        span.__enter__()
    depth = 0
    if report is not None:
        depth = report._phase_depth.get(name, 0)
        report._phase_depth[name] = depth + 1
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        if report is not None:
            if depth:
                report._phase_depth[name] = depth
            else:
                report._phase_depth.pop(name, None)
            report.add_phase(name, elapsed if depth == 0 else 0.0)
        if span is not None:
            span.__exit__(None, None, None)


def count(name: str, amount: int = 1) -> None:
    """Bump counter *name* (no-op without a collector or tracer)."""
    if _ACTIVE:
        _ACTIVE[-1].add_count(name, amount)
    tracer = trace._TRACER
    if tracer is not None:
        tracer.metrics.inc(name, amount)
