"""Lightweight per-phase instrumentation: timers and counters.

The flow, the clique partitioner and the ATPG engine report *where the
time goes* (wall-clock per phase) and *how hard they worked* (random
blocks simulated, PODEM attempts and backtracks, clique merges and
rejections, ECO repair rounds) into a structured :class:`RunReport`.

Collection is opt-in and stack-scoped::

    with instrument.collect() as report:
        run_wcm_flow(problem, config)
    print(report.render())

When no collector is active (the common case — experiment sweeps,
tests), :func:`phase` and :func:`count` are no-ops costing one list
check, so instrumented hot paths pay nothing in production runs.
Reports merge (:meth:`RunReport.merge`), so per-cell reports from
parallel workers can be folded into one run-level view.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.util.tables import AsciiTable


@dataclass
class PhaseStat:
    """Accumulated wall-clock of one named phase."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class RunReport:
    """Structured outcome of one instrumented run."""

    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def add_phase(self, name: str, seconds: float) -> None:
        stat = self.phases.setdefault(name, PhaseStat())
        stat.calls += 1
        stat.seconds += seconds

    def add_count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def merge(self, other: "RunReport") -> None:
        for name, stat in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStat())
            mine.calls += stat.calls
            mine.seconds += stat.seconds
        for name, amount in other.counters.items():
            self.add_count(name, amount)

    # ------------------------------------------------------------------
    def render(self, title: str = "run profile") -> str:
        total = sum(stat.seconds for stat in self.phases.values())
        table = AsciiTable(["phase", "calls", "seconds", "share"],
                           title=title)
        for name in sorted(self.phases):
            stat = self.phases[name]
            share = 100.0 * stat.seconds / total if total else 0.0
            table.add_row([name, stat.calls, f"{stat.seconds:.3f}",
                           f"{share:5.1f}%"])
        lines = [table.render()]
        if self.counters:
            counter_table = AsciiTable(["counter", "value"])
            for name in sorted(self.counters):
                counter_table.add_row([name, self.counters[name]])
            lines.append(counter_table.render())
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, object]:
        return {
            "phases": {name: {"calls": s.calls, "seconds": s.seconds}
                       for name, s in self.phases.items()},
            "counters": dict(self.counters),
        }


#: stack of active collectors (innermost last); per process
_ACTIVE: List[RunReport] = []


@contextmanager
def collect(report: Optional[RunReport] = None) -> Iterator[RunReport]:
    """Activate a collector for the dynamic extent of the block."""
    report = report if report is not None else RunReport()
    _ACTIVE.append(report)
    try:
        yield report
    finally:
        _ACTIVE.pop()


def active_report() -> Optional[RunReport]:
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time the block under *name* (no-op without a collector)."""
    if not _ACTIVE:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        _ACTIVE[-1].add_phase(name, time.perf_counter() - started)


def count(name: str, amount: int = 1) -> None:
    """Bump counter *name* (no-op without a collector)."""
    if _ACTIVE:
        _ACTIVE[-1].add_count(name, amount)
