"""The ``repro schedule`` experiment: ours-vs-Agrawal test time.

The paper's payoff chain, measured end to end: fewer additional
wrapper cells (the WCM win, area scenario) -> shorter wrapper scan
chains at every TAM width -> shorter per-die test time -> shorter
pre-bond session makespan for the whole stack. Three methods per die:

* ``dedicated`` — the pre-reuse baseline [1], [2], [13]: one wrapper
  cell per TSV,
* ``agrawal``   — reuse per [4],
* ``ours``      — the paper's timing-aware reduction.

Patterns come from real stuck-at ATPG on the wrapped die by default
(both methods are compared at the SAME pattern count — the max of the
two — so every delta is chain length, not coverage accounting);
``fixed_patterns`` pins them instead for cheap deterministic runs.
Benchmark dies ride through the cached ``run_cell`` machinery and the
supervised sweep like every other table; PR 9 topology families are
scheduled as small fixed-pattern stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.schedule.chains import (
    DieTestModel,
    balanced_chain_lengths,
    internal_chain_count,
    staircase,
)
from repro.schedule.pack import Schedule, best_fit_schedule
from repro.util.errors import ConfigError
from repro.util.tables import AsciiTable

#: stack-level TAM budget (lanes) and the per-die reference width the
#: per-die table reports test times at
DEFAULT_TAM_BUDGET = 8
DEFAULT_REF_WIDTH = 2

#: methods in baseline -> best order (render + packing order)
METHODS = ("dedicated", "agrawal", "ours")

#: topology-family section: small fixed-pattern stacks
FAMILY_NAMES = ("grid", "htree")
FAMILY_DIES = 3
FAMILY_PATTERNS = 48
_FAMILY_GATES = 360
_FAMILY_FFS = 24
_FAMILY_TSV = 12


@dataclass
class ScheduleCell:
    """One die's scheduling inputs, all three methods."""

    patterns: int
    #: method -> DieTestModel (internal chains + wrapper cells)
    models: Dict[str, DieTestModel]
    #: method -> reused scan FF count (context column)
    reused: Dict[str, int]

    def time_at(self, method: str, width: int) -> int:
        return staircase(self.models[method], width)[-1].time


@dataclass
class ScheduleResult:
    scale_name: str
    budget: int = DEFAULT_TAM_BUDGET
    ref_width: int = DEFAULT_REF_WIDTH
    #: "atpg" or "fixed:N"
    patterns_mode: str = "atpg"
    #: (circuit, die) -> cell
    cells: Dict[Tuple[str, int], ScheduleCell] = field(default_factory=dict)
    #: (family, die_index) -> cell
    family_cells: Dict[Tuple[str, int], ScheduleCell] = field(
        default_factory=dict)
    failures: Dict[object, str] = field(default_factory=dict)

    # -- aggregates ------------------------------------------------------
    def stack_schedule(self, cells: Dict[Tuple[str, int], ScheduleCell],
                       group: str, method: str) -> Optional[Schedule]:
        models = [cell.models[method]
                  for (name, _die), cell in sorted(cells.items())
                  if name == group]
        if not models:
            return None
        return best_fit_schedule(models, self.budget)

    def _groups(self, cells: Dict[Tuple[str, int], ScheduleCell]
                ) -> List[str]:
        return sorted({name for name, _die in cells})

    def die_wins(self) -> Tuple[int, int, int]:
        """(ours <= agrawal, strict wins, total) over benchmark dies."""
        total = len(self.cells)
        leq = strict = 0
        for cell in self.cells.values():
            ours = cell.time_at("ours", self.ref_width)
            agrawal = cell.time_at("agrawal", self.ref_width)
            if ours <= agrawal:
                leq += 1
            if ours < agrawal:
                strict += 1
        return leq, strict, total

    # -- rendering -------------------------------------------------------
    def _die_table(self, title: str,
                   cells: Dict[Tuple[str, int], ScheduleCell]) -> str:
        table = AsciiTable(
            ["die", "patt", "cells D", "cells A", "cells O",
             f"T_D(w{self.ref_width})", f"T_A(w{self.ref_width})",
             f"T_O(w{self.ref_width})", "O vs A"],
            title=title)
        times: Dict[str, List[int]] = {m: [] for m in METHODS}
        for key, cell in sorted(cells.items()):
            row_times = {m: cell.time_at(m, self.ref_width)
                         for m in METHODS}
            for method in METHODS:
                times[method].append(row_times[method])
            delta = row_times["agrawal"] - row_times["ours"]
            pct = (100.0 * delta / row_times["agrawal"]
                   if row_times["agrawal"] else 0.0)
            table.add_row([
                f"{key[0]}_d{key[1]}", cell.patterns,
                cell.models["dedicated"].wrapper_cells,
                cell.models["agrawal"].wrapper_cells,
                cell.models["ours"].wrapper_cells,
                row_times["dedicated"], row_times["agrawal"],
                row_times["ours"], f"-{pct:.1f}%",
            ])
        if times["agrawal"]:
            table.add_separator()
            means = {m: sum(v) / len(v) for m, v in times.items()}
            pct = (100.0 * (means["agrawal"] - means["ours"])
                   / means["agrawal"] if means["agrawal"] else 0.0)
            table.add_row([
                "Average", "",
                "", "", "",
                f"{means['dedicated']:.1f}", f"{means['agrawal']:.1f}",
                f"{means['ours']:.1f}", f"-{pct:.1f}%",
            ])
        return table.render()

    def _stack_table(self, title: str,
                     cells: Dict[Tuple[str, int], ScheduleCell]) -> str:
        table = AsciiTable(
            ["stack", "dies", "makespan D", "makespan A", "makespan O",
             "O vs A", "util O"],
            title=title)
        for group in self._groups(cells):
            spans = {}
            for method in METHODS:
                schedule = self.stack_schedule(cells, group, method)
                spans[method] = schedule
            ours = spans["ours"]
            agrawal = spans["agrawal"]
            if ours is None or agrawal is None:
                continue
            delta = agrawal.makespan - ours.makespan
            pct = (100.0 * delta / agrawal.makespan
                   if agrawal.makespan else 0.0)
            table.add_row([
                group,
                len(ours.placements),
                spans["dedicated"].makespan, agrawal.makespan,
                ours.makespan, f"-{pct:.1f}%",
                f"{100.0 * ours.utilization:.0f}%",
            ])
        return table.render()

    def render(self) -> str:
        lines = [
            f"Pre-bond test scheduling — TAM budget {self.budget} "
            f"lanes, per-die reference width {self.ref_width}, "
            f"patterns {self.patterns_mode} (scale={self.scale_name})",
            "",
        ]
        if self.cells:
            lines.append(self._die_table(
                "Per-die test time (cycles): dedicated [1] / "
                "Agrawal [4] / ours", self.cells))
            leq, strict, total = self.die_wins()
            lines.append(f"ours <= Agrawal on {leq}/{total} dies "
                         f"({strict} strictly shorter)")
            lines.append("")
            lines.append(self._stack_table(
                "Stack pre-bond session makespan (cycles)", self.cells))
        if self.family_cells:
            lines.append("")
            lines.append(self._die_table(
                f"Topology families ({FAMILY_DIES}-die stacks, "
                f"{FAMILY_PATTERNS} fixed patterns)", self.family_cells))
            lines.append("")
            lines.append(self._stack_table(
                "Family stack makespan (cycles)", self.family_cells))
        if self.failures:
            lines += ["", render_failures(self.failures, label=str)]
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Sweep cells (run in worker processes)
# ---------------------------------------------------------------------------
def _models_from_counts(name: str, internal: Tuple[int, ...],
                        counts: Dict[str, int], patterns: int
                        ) -> Dict[str, DieTestModel]:
    return {method: DieTestModel(name=name, internal_chains=internal,
                                 wrapper_cells=cells, patterns=patterns)
            for method, cells in counts.items()}


def _bench_cell(circuit: str, die_index: int, seed: int,
                scale: ExperimentScale,
                fixed_patterns: Optional[int]) -> ScheduleCell:
    """One benchmark die: both WCM flows (area scenario), stuck-at
    ATPG for the pattern count unless pinned, then the three models."""
    from repro.bench.itc99 import die_profile

    summaries = {}
    pattern_counts = {}
    for method in ("agrawal", "ours"):
        spec = MethodSpec(method, "area")
        summary, report = run_cell(
            circuit, die_index, seed, scale, spec,
            with_atpg=fixed_patterns is None, include_transition=False)
        summaries[method] = summary
        if fixed_patterns is None:
            pattern_counts[method] = report.stuck_at.pattern_count
    patterns = (fixed_patterns if fixed_patterns is not None
                else max(pattern_counts.values()))
    profile = die_profile(circuit, die_index)
    internal = balanced_chain_lengths(
        profile.scan_flip_flops,
        internal_chain_count(profile.scan_flip_flops))
    counts = {
        "dedicated": summaries["ours"].plan.wrapped_tsv_count,
        "agrawal": summaries["agrawal"].additional,
        "ours": summaries["ours"].additional,
    }
    return ScheduleCell(
        patterns=patterns,
        models=_models_from_counts(profile.name, internal, counts,
                                   patterns),
        reused={m: summaries[m].reused for m in ("agrawal", "ours")},
    )


def _family_cell(family: str, die_index: int, seed: int) -> ScheduleCell:
    """One topology-family die: generate, place, stitch, run both
    flows cold (area scenario), fixed pattern count."""
    from repro.bench.families import (FamilySpec, family_die_specs,
                                      generate_family_die)
    from repro.core.config import Scenario, WcmConfig
    from repro.core.flow import run_wcm_flow
    from repro.core.problem import build_problem
    from repro.dft.scan import stitch_scan_chains
    from repro.place.placer import place_die

    base = FamilySpec(gates=_FAMILY_GATES, ffs=_FAMILY_FFS,
                      tsv_in=_FAMILY_TSV, tsv_out=_FAMILY_TSV)
    spec = family_die_specs(base, FAMILY_DIES)[die_index]
    name = f"{family}_d{die_index}"
    netlist = generate_family_die(family, spec, seed=seed + die_index,
                                  name=name)
    place_die(netlist)
    stitch_scan_chains(netlist)
    problem = build_problem(netlist, already_prepared=True)
    scenario = Scenario.area_optimized()
    counts: Dict[str, int] = {}
    reused: Dict[str, int] = {}
    for method, config in (("agrawal", WcmConfig.agrawal(scenario)),
                           ("ours", WcmConfig.ours(scenario))):
        run = run_wcm_flow(problem, config)
        counts[method] = run.additional_wrapper_cells
        reused[method] = run.reused_scan_ffs
        counts.setdefault("dedicated", run.plan.wrapped_tsv_count)
    internal = balanced_chain_lengths(spec.ffs,
                                      internal_chain_count(spec.ffs))
    return ScheduleCell(
        patterns=FAMILY_PATTERNS,
        models=_models_from_counts(name, internal, counts,
                                   FAMILY_PATTERNS),
        reused=reused,
    )


def _schedule_cell(args: tuple) -> ScheduleCell:
    """Sweep dispatcher (module-level for worker processes)."""
    tag = args[0]
    if tag == "bench":
        _tag, circuit, die_index, seed, scale, fixed = args
        return _bench_cell(circuit, die_index, seed, scale, fixed)
    if tag == "family":
        _tag, family, die_index, seed = args
        return _family_cell(family, die_index, seed)
    raise ConfigError(f"unknown schedule cell tag {tag!r}")


@traced_experiment("schedule")
def run_schedule(scale: Optional[ExperimentScale] = None,
                 seed: int = DEFAULT_SEED, verbose: bool = False,
                 jobs: Optional[int] = None,
                 budget: int = DEFAULT_TAM_BUDGET,
                 ref_width: int = DEFAULT_REF_WIDTH,
                 fixed_patterns: Optional[int] = None,
                 families: Tuple[str, ...] = FAMILY_NAMES,
                 circuits: Optional[Tuple[str, ...]] = None
                 ) -> ScheduleResult:
    """Wrapper/TAM co-optimization table over the in-scale dies plus
    the topology-family stacks."""
    if budget < 1 or ref_width < 1:
        raise ConfigError(f"budget/ref_width must be >= 1, got "
                          f"{budget}/{ref_width}")
    if ref_width > budget:
        raise ConfigError(f"per-die reference width {ref_width} exceeds "
                          f"the TAM budget {budget}")
    scale = scale or resolve_scale()
    result = ScheduleResult(
        scale_name=scale.name, budget=budget, ref_width=ref_width,
        patterns_mode=("atpg" if fixed_patterns is None
                       else f"fixed:{fixed_patterns}"))
    keys: List[tuple] = []
    cells: List[tuple] = []
    for circuit, die_index in dies_for_scale(scale, circuits):
        keys.append(("bench", circuit, die_index))
        cells.append(("bench", circuit, die_index, seed, scale,
                      fixed_patterns))
    for family in families:
        for die_index in range(FAMILY_DIES):
            keys.append(("family", family, die_index))
            cells.append(("family", family, die_index, seed))
    ok, result.failures = sweep_cells(_schedule_cell, keys, cells,
                                      jobs=jobs, seed=seed,
                                      label="schedule")
    for key, cell in ok.items():
        if key[0] == "bench":
            result.cells[(key[1], key[2])] = cell
        else:
            result.family_cells[(key[1], key[2])] = cell
        if verbose:
            ours = cell.time_at("ours", ref_width)
            agrawal = cell.time_at("agrawal", ref_width)
            print(f"  {key[1]}_d{key[2]}: T_ours={ours} "
                  f"T_agrawal={agrawal} patterns={cell.patterns}")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
