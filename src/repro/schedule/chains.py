"""Wrapper scan-chain design: (TAM width x test time) staircases.

The WCM flow decides *how many* wrapper cells a die carries; this
module decides how those cells plus the die's internal scan chains are
stitched into ``w`` balanced wrapper scan chains for a TAM of width
``w`` — the classic wrapper-design half of wrapper/TAM co-optimization
(arXiv 1008.3320, 1008.4448).

The model is deliberately small and exact:

* an **internal scan chain** is atomic (re-stitching functional chains
  per TAM width is not free on silicon), with an integer length,
* every **wrapper cell** (dedicated cell or reused-FF wrapper stage)
  is a single scan bit, freely assignable,
* the per-width test time is the standard scan formula
  ``T(w) = (1 + max_chain_length) * patterns + max_chain_length``
  (scan-in and scan-out share the same chains, one extra shift to
  flush the last response).

The designer is LPT list scheduling on ``w`` identical machines:
internal chains first (longest first), then the unit wrapper cells
water-filled one at a time onto the least-loaded chain. Every job is
placed longest-first (the units are never longer than any chain), so
Graham's bound applies: the realized ``max_chain_length`` is within
``4/3 - 1/(3w)`` of optimal — ``repro.schedule.oracle`` holds the
designer to exactly that bound, and the water-fill makes the staircase
*provably* monotone in the wrapper-cell count: fewer cells (the WCM
win) can never test slower at equal width and patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.errors import ConfigError
from repro.util.fingerprint import fingerprint


@dataclass(frozen=True)
class DieTestModel:
    """Everything the scheduler needs to know about one die.

    ``internal_chains`` are the die's functional scan-chain lengths
    (atomic); ``wrapper_cells`` counts single-bit wrapper stages (the
    WCM plan's additional cells, or every TSV for the dedicated
    baseline); ``patterns`` is the scan pattern count the die needs.
    """

    name: str
    internal_chains: Tuple[int, ...]
    wrapper_cells: int
    patterns: int

    def __post_init__(self) -> None:
        if any(length < 1 for length in self.internal_chains):
            raise ConfigError(f"{self.name}: internal chain lengths must "
                              f"be >= 1, got {self.internal_chains}")
        if self.wrapper_cells < 0:
            raise ConfigError(f"{self.name}: negative wrapper cell count")
        if self.patterns < 1:
            raise ConfigError(f"{self.name}: patterns must be >= 1, got "
                              f"{self.patterns}")

    @property
    def total_bits(self) -> int:
        return sum(self.internal_chains) + self.wrapper_cells

    @property
    def element_count(self) -> int:
        return len(self.internal_chains) + self.wrapper_cells


def balanced_chain_lengths(ffs: int, chains: int) -> Tuple[int, ...]:
    """Internal chain lengths for *ffs* scan FFs stitched into *chains*
    chains, mirroring ``stitch_scan_chains``' ceil split (every chain
    gets ``ceil(ffs / chains)`` FFs except a shorter last one)."""
    if ffs < 0:
        raise ConfigError(f"negative FF count {ffs}")
    if ffs == 0:
        return ()
    chains = max(1, min(chains, ffs))
    per_chain = -(-ffs // chains)
    lengths: List[int] = []
    taken = 0
    while taken < ffs:
        lengths.append(min(per_chain, ffs - taken))
        taken += per_chain
    return tuple(lengths)


def internal_chain_count(ffs: int) -> int:
    """Default chain-count policy for the experiment driver: one chain
    per ~16 scan FFs, capped at 4 (the ITC'99 dies are small)."""
    return max(1, min(4, -(-ffs // 16)))


def _fill_target(loads: Sequence[int]) -> int:
    """Index of the least-loaded wrapper chain (lowest index on ties).

    Module-level so the mutation-kill self-check can break the
    water-fill in one place (``schedule-fill-longest``).
    """
    return min(range(len(loads)), key=lambda index: (loads[index], index))


def _unit_ids(model: DieTestModel) -> List[str]:
    """Element ids of the single-bit wrapper cells, ``wc0..wcN-1``.

    Module-level seam for the ``schedule-chain-drop`` mutant: the
    cover check must notice a designer that loses a cell.
    """
    return [f"wc{index}" for index in range(model.wrapper_cells)]


@dataclass(frozen=True)
class WrapperChainPlan:
    """One die's wrapper chains at one TAM width.

    ``chains[i]`` holds element ids: ``icK`` = internal chain *K* of
    the model (atomic, length ``internal_chains[K]``), ``wcK`` = one
    wrapper cell bit. ``lengths[i]`` is chain *i*'s total bit count.
    """

    die: str
    width: int
    chains: Tuple[Tuple[str, ...], ...]
    lengths: Tuple[int, ...]

    @property
    def max_length(self) -> int:
        return max(self.lengths) if self.lengths else 0


def design_wrapper(model: DieTestModel, width: int) -> WrapperChainPlan:
    """Partition the die's scan elements into *width* wrapper chains.

    LPT: internal chains descending by length onto the least-loaded
    chain, then wrapper-cell bits water-filled one at a time. The
    internal-chain placement never looks at ``wrapper_cells``, which is
    what makes the staircase monotone in the cell count.
    """
    if width < 1:
        raise ConfigError(f"TAM width must be >= 1, got {width}")
    bins: List[List[str]] = [[] for _ in range(width)]
    loads = [0] * width
    order = sorted(range(len(model.internal_chains)),
                   key=lambda i: (-model.internal_chains[i], i))
    for index in order:
        target = _fill_target(loads)
        bins[target].append(f"ic{index}")
        loads[target] += model.internal_chains[index]
    for unit in _unit_ids(model):
        target = _fill_target(loads)
        bins[target].append(unit)
        loads[target] += 1
    return WrapperChainPlan(die=model.name, width=width,
                            chains=tuple(tuple(b) for b in bins),
                            lengths=tuple(loads))


def chain_test_time(max_length: int, patterns: int) -> int:
    """Scan test time in cycles: ``(1 + L) * p + L`` for the longest
    wrapper chain ``L`` (scan-in overlapped with scan-out of the
    previous pattern; one trailing flush)."""
    return (1 + max_length) * patterns + max_length


@dataclass(frozen=True)
class WidthTimePoint:
    """Test time of one die at one TAM width.

    ``used_width`` is the width of the configuration actually realizing
    ``time`` — a die offered ``w`` lanes may do no better than its
    best narrower design, in which case the extra lanes are wasted and
    ``used_width < width``.
    """

    width: int
    time: int
    used_width: int
    max_length: int


def staircase(model: DieTestModel, max_width: int
              ) -> Tuple[WidthTimePoint, ...]:
    """Per-width test-time points for widths ``1..max_width``.

    Monotone non-increasing *by construction*: the point at width ``w``
    is the best design over all widths ``<= w`` (a die given ``w``
    lanes can always use fewer), so widening never hurts even if the
    greedy designer happens to stumble at some exact width.
    """
    if max_width < 1:
        raise ConfigError(f"max TAM width must be >= 1, got {max_width}")
    points: List[WidthTimePoint] = []
    best_time = None
    best_length = 0
    best_width = 1
    for width in range(1, max_width + 1):
        plan = design_wrapper(model, width)
        time = chain_test_time(plan.max_length, model.patterns)
        if best_time is None or time < best_time:
            best_time, best_length, best_width = time, plan.max_length, width
        points.append(WidthTimePoint(width=width, time=best_time,
                                     used_width=best_width,
                                     max_length=best_length))
    return tuple(points)


def pareto_points(points: Sequence[WidthTimePoint]
                  ) -> Tuple[WidthTimePoint, ...]:
    """The staircase's corners: widths that strictly improve on every
    narrower design. Corner points satisfy ``used_width == width``, so
    they are exactly the (width, time) rectangles worth packing."""
    corners: List[WidthTimePoint] = []
    for point in points:
        if not corners or point.time < corners[-1].time:
            corners.append(point)
    return tuple(corners)


def staircase_fingerprint(model: DieTestModel, max_width: int) -> str:
    """Content fingerprint of one die's staircase (determinism tests)."""
    return fingerprint([
        {"width": p.width, "time": p.time, "used_width": p.used_width,
         "max_length": p.max_length}
        for p in staircase(model, max_width)
    ])
