"""Wrapper/TAM co-optimization and pre-bond test scheduling (DESIGN.md
§15).

Downstream of the WCM flow: turn each die's wrapper-cell count plus
its internal scan chains into balanced wrapper chains per TAM width
(:mod:`repro.schedule.chains`), pack one (width, time) rectangle per
die into the stack's TAM budget (:mod:`repro.schedule.pack`), verify
both against exhaustive oracles (:mod:`repro.schedule.oracle`), and
measure ours-vs-Agrawal test time over the benchmarks and topology
families (:mod:`repro.schedule.experiment`, ``repro schedule``).
"""

from repro.schedule.chains import (
    DieTestModel,
    WidthTimePoint,
    WrapperChainPlan,
    balanced_chain_lengths,
    chain_test_time,
    design_wrapper,
    internal_chain_count,
    pareto_points,
    staircase,
    staircase_fingerprint,
)
from repro.schedule.experiment import ScheduleResult, run_schedule
from repro.schedule.oracle import (
    exact_schedule,
    exact_wrapper_max_length,
    waterfill_max,
)
from repro.schedule.pack import (
    Placement,
    Schedule,
    best_fit_schedule,
    candidate_points,
    schedule_violations,
)

__all__ = [
    "DieTestModel",
    "Placement",
    "Schedule",
    "ScheduleResult",
    "WidthTimePoint",
    "WrapperChainPlan",
    "balanced_chain_lengths",
    "best_fit_schedule",
    "candidate_points",
    "chain_test_time",
    "design_wrapper",
    "exact_schedule",
    "exact_wrapper_max_length",
    "internal_chain_count",
    "pareto_points",
    "run_schedule",
    "schedule_violations",
    "staircase",
    "staircase_fingerprint",
    "waterfill_max",
]
