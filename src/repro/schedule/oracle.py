"""Brute-force scheduling oracles (small instances only).

Two exhaustive references, in the spirit of ``repro.verify.oracles``:

* :func:`exact_wrapper_max_length` — the true optimal longest wrapper
  chain at one width, by enumerating every internal-chain-to-chain
  assignment (with identical-bin symmetry breaking) and water-filling
  the unit wrapper cells optimally on top (closed form). The greedy
  designer must land within Graham's LPT bound of this.
* :func:`exact_schedule` — the true minimum-makespan session, by
  branch-and-bound over (staircase corner, lane offset, start time)
  per die. Placements are enumerated in non-decreasing start order and
  every start must be 0 or touch a placed rectangle's finish on an
  overlapping lane — the standard left-shift normalization, which
  loses no optimal packing. The best-fit heuristic seeds the incumbent
  (so the oracle is never worse than it) and an area lower bound plus
  equal-start symmetry breaking keep <= 6-die stacks tractable.

Both raise :class:`~repro.util.errors.ReproError` past their node
guards instead of silently degrading — oracles must be exact or
absent.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.schedule.chains import DieTestModel
from repro.schedule.pack import (
    Placement,
    Schedule,
    best_fit_schedule,
    candidate_points,
)
from repro.util.errors import ConfigError, ReproError

#: default search guards — generous for the corpus sizes the tests use
MAX_DESIGN_NODES = 200_000
MAX_PACK_NODES = 2_000_000
#: the exhaustive scheduler is for small stacks only
MAX_ORACLE_DIES = 8


def waterfill_max(levels: Sequence[int], units: int, width: int) -> int:
    """Minimal achievable max load after adding *units* unit jobs to
    bins with base loads *levels* (len <= width; missing bins are
    empty). Closed form: fill every bin up to the current max first,
    then spread the remainder evenly."""
    if width < 1:
        raise ConfigError(f"width must be >= 1, got {width}")
    if units < 0:
        raise ConfigError(f"negative unit count {units}")
    base = list(levels) + [0] * (width - len(levels))
    top = max(base) if base else 0
    capacity = sum(top - level for level in base)
    if units <= capacity:
        return top
    return top + -(-(units - capacity) // width)


def exact_wrapper_max_length(model: DieTestModel, width: int,
                             max_nodes: int = MAX_DESIGN_NODES) -> int:
    """The optimal longest wrapper chain for *model* at *width*."""
    if width < 1:
        raise ConfigError(f"TAM width must be >= 1, got {width}")
    chains = sorted(model.internal_chains, reverse=True)
    units = model.wrapper_cells
    if width == 1:
        return sum(chains) + units
    best = [sum(chains) + units]  # serial chain is always feasible
    levels = [0] * width
    nodes = [0]

    def recurse(index: int, used_bins: int) -> None:
        nodes[0] += 1
        if nodes[0] > max_nodes:
            raise ReproError(
                f"exact wrapper design exceeded {max_nodes} nodes for "
                f"{model.name} at width {width}")
        if max(levels) >= best[0]:
            return  # already no better than the incumbent
        if index == len(chains):
            best[0] = min(best[0], waterfill_max(levels, units, width))
            return
        # A chain may open at most one new (empty) bin: empty bins are
        # interchangeable, so trying more than the first is symmetric.
        limit = min(used_bins + 1, width)
        for bin_index in range(limit):
            levels[bin_index] += chains[index]
            recurse(index + 1,
                    used_bins + (1 if bin_index == used_bins else 0))
            levels[bin_index] -= chains[index]

    recurse(0, 0)
    return best[0]


def exact_schedule(models: Sequence[DieTestModel], budget: int,
                   max_nodes: int = MAX_PACK_NODES) -> Schedule:
    """The minimum-makespan schedule, exhaustively.

    Deterministic: fixed die order, fixed corner/lane/start iteration,
    strict-improvement incumbent updates — so two runs return the
    byte-identical schedule, and when the heuristic is already optimal
    the heuristic's own placements are returned.
    """
    if budget < 1:
        raise ConfigError(f"TAM budget must be >= 1, got {budget}")
    if len(models) > MAX_ORACLE_DIES:
        raise ReproError(f"exact_schedule is for <= {MAX_ORACLE_DIES} "
                         f"dies, got {len(models)}")
    incumbent = best_fit_schedule(models, budget)
    if not models:
        return incumbent
    entries = sorted(
        [(m.name, candidate_points(m, budget)) for m in models],
        key=lambda e: (-e[1][-1].time, e[0]))
    min_area = [min(p.used_width * p.time for p in points)
                for _name, points in entries]
    min_time = [min(p.time for p in points) for _name, points in entries]
    best = [incumbent.makespan, incumbent.placements]
    placements: List[Placement] = []
    nodes = [0]

    def overlaps(lane: int, width: int, start: int, time: int) -> bool:
        for p in placements:
            if (lane < p.lane + p.width and p.lane < lane + width
                    and start < p.end and p.start < start + time):
                return True
        return False

    def recurse(remaining: Tuple[int, ...], last_start: int,
                last_entry: int, makespan: int, area: int) -> None:
        nodes[0] += 1
        if nodes[0] > max_nodes:
            raise ReproError(
                f"exact schedule exceeded {max_nodes} nodes for "
                f"{len(entries)} dies, budget {budget}")
        if not remaining:
            if makespan < best[0]:
                best[0] = makespan
                best[1] = tuple(placements)
            return
        rem_area = sum(min_area[i] for i in remaining)
        bound = max(makespan,
                    -(-(area + rem_area) // budget),
                    max(min_time[i] for i in remaining))
        if bound >= best[0]:
            return
        starts = sorted({0} | {p.end for p in placements})
        for position, index in enumerate(remaining):
            # Equal-start symmetry: among rectangles sharing a start,
            # only enumerate them in entry order once.
            name, points = entries[index]
            rest = remaining[:position] + remaining[position + 1:]
            for point in points:
                width = point.used_width
                for start in starts:
                    if start < last_start:
                        continue
                    if start == last_start and index < last_entry:
                        continue
                    if start + point.time >= best[0]:
                        continue  # cannot strictly improve
                    for lane in range(budget - width + 1):
                        if start > 0 and not any(
                                p.end == start
                                and lane < p.lane + p.width
                                and p.lane < lane + width
                                for p in placements):
                            continue  # not left-shift normalized
                        if overlaps(lane, width, start, point.time):
                            continue
                        placements.append(Placement(
                            die=name, width=width, lane=lane,
                            start=start, time=point.time))
                        recurse(rest, start, index,
                                max(makespan, start + point.time),
                                area + width * point.time)
                        placements.pop()

    recurse(tuple(range(len(entries))), 0, -1, 0, 0)
    return Schedule(budget=budget, placements=best[1])
