"""Pre-bond session scheduling: pack (width x time) rectangles.

Each die contributes the Pareto corners of its wrapper staircase
(:func:`repro.schedule.chains.pareto_points`); the packer picks ONE
corner per die and places it as a rectangle — ``width`` contiguous TAM
lanes for ``time`` cycles — inside the stack's TAM budget, minimizing
the session makespan. This is 2D strip packing with selectable
rectangle heights, the NP-hard core of the TAM-optimization papers;
the production path is a deterministic best-fit skyline heuristic and
``repro.schedule.oracle.exact_schedule`` is its exhaustive
differential oracle on small stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.schedule.chains import (
    DieTestModel,
    WidthTimePoint,
    pareto_points,
    staircase,
)
from repro.util.errors import ConfigError
from repro.util.fingerprint import fingerprint


@dataclass(frozen=True)
class Placement:
    """One die's scheduled rectangle: lanes ``[lane, lane+width)`` for
    cycles ``[start, end)``."""

    die: str
    width: int
    lane: int
    start: int
    time: int

    @property
    def end(self) -> int:
        return self.start + self.time


@dataclass(frozen=True)
class Schedule:
    """A complete pre-bond session for one stack."""

    budget: int
    placements: Tuple[Placement, ...]

    @property
    def makespan(self) -> int:
        return max((p.end for p in self.placements), default=0)

    @property
    def utilization(self) -> float:
        """Busy lane-cycles over the session's bounding box."""
        box = self.budget * self.makespan
        if box == 0:
            return 0.0
        return sum(p.width * p.time for p in self.placements) / box

    def payload(self) -> Dict[str, object]:
        """Canonical JSON-able content (fingerprints, manifests)."""
        return {
            "budget": self.budget,
            "makespan": self.makespan,
            "placements": [
                {"die": p.die, "width": p.width, "lane": p.lane,
                 "start": p.start, "time": p.time}
                for p in sorted(self.placements, key=lambda p: p.die)
            ],
        }

    def fingerprint(self) -> str:
        return fingerprint(self.payload())


def candidate_points(model: DieTestModel, budget: int
                     ) -> Tuple[WidthTimePoint, ...]:
    """The die's packable configurations: staircase corners at widths
    the budget admits. Never empty — width 1 always exists."""
    if budget < 1:
        raise ConfigError(f"TAM budget must be >= 1, got {budget}")
    return pareto_points(staircase(model, budget))


def _occupy(free: List[int], lane: int, width: int, finish: int) -> None:
    """Raise the skyline over ``[lane, lane+width)`` to *finish*.

    Module-level seam for the ``schedule-pack-overlap`` mutant: a
    packer that forgets to claim its lanes schedules every die on top
    of the others, and the validity check must catch it.
    """
    for index in range(lane, lane + width):
        free[index] = finish


def _pack_order(entries: Sequence[Tuple[str, Tuple[WidthTimePoint, ...]]]
                ) -> List[Tuple[str, Tuple[WidthTimePoint, ...]]]:
    """Longest-processing-time order: dies descending by their best
    (widest-corner) time, name-tie-broken — the classic LPT opening
    for makespan heuristics, and deterministic."""
    return sorted(entries, key=lambda e: (-e[1][-1].time, e[0]))


def best_fit_schedule(models: Sequence[DieTestModel], budget: int
                      ) -> Schedule:
    """Deterministic best-fit skyline packing.

    Dies are visited in LPT order; each die tries every staircase
    corner at every lane offset and takes the placement finishing
    earliest (ties: earlier start, narrower width, lower lane). The
    skyline ``free[lane]`` tracks when each TAM lane frees up, so a
    candidate's start is the max over its lane span.
    """
    if budget < 1:
        raise ConfigError(f"TAM budget must be >= 1, got {budget}")
    names = [m.name for m in models]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate die names in schedule: {names}")
    entries = [(m.name, candidate_points(m, budget)) for m in models]
    free = [0] * budget
    placements: List[Placement] = []
    for name, points in _pack_order(entries):
        best = None
        best_key = None
        for point in points:
            width = point.used_width
            for lane in range(budget - width + 1):
                start = max(free[lane:lane + width])
                key = (start + point.time, start, width, lane)
                if best_key is None or key < best_key:
                    best_key = key
                    best = Placement(die=name, width=width, lane=lane,
                                     start=start, time=point.time)
        assert best is not None  # points is never empty
        placements.append(best)
        _occupy(free, best.lane, best.width, best.end)
    return Schedule(budget=budget, placements=tuple(placements))


def schedule_violations(schedule: Schedule,
                        models: Sequence[DieTestModel],
                        budget: int) -> List[str]:
    """Validity oracle for any schedule, heuristic or exact.

    Checks: every die placed exactly once, rectangles inside the lane
    budget, no two placements overlap in (lanes x time), every
    placement's time is achievable by the wrapper designer at its
    width, and the payload's recorded makespan is the max rectangle
    end.
    """
    out: List[str] = []
    by_name = {m.name: m for m in models}
    placed = [p.die for p in schedule.placements]
    if sorted(placed) != sorted(by_name):
        out.append(f"die set mismatch: placed {sorted(placed)} vs "
                   f"models {sorted(by_name)}")
        return out
    if schedule.budget != budget:
        out.append(f"schedule budget {schedule.budget} != {budget}")
    for p in schedule.placements:
        if p.width < 1 or p.lane < 0 or p.lane + p.width > budget:
            out.append(f"{p.die}: lanes [{p.lane}, {p.lane + p.width}) "
                       f"outside budget {budget}")
        if p.start < 0:
            out.append(f"{p.die}: negative start {p.start}")
        model = by_name[p.die]
        if p.width >= 1:
            achievable = staircase(model, p.width)[-1].time
            if p.time != achievable:
                out.append(f"{p.die}: time {p.time} at width {p.width} "
                           f"!= designed {achievable}")
    for i, a in enumerate(schedule.placements):
        for b in schedule.placements[i + 1:]:
            lanes_meet = (a.lane < b.lane + b.width
                          and b.lane < a.lane + a.width)
            times_meet = a.start < b.end and b.start < a.end
            if lanes_meet and times_meet:
                out.append(f"overlap: {a.die} lanes [{a.lane},"
                           f"{a.lane + a.width}) x [{a.start},{a.end}) vs "
                           f"{b.die} lanes [{b.lane},{b.lane + b.width}) "
                           f"x [{b.start},{b.end})")
    recorded = schedule.payload()["makespan"]
    expected = max((p.end for p in schedule.placements), default=0)
    if recorded != expected:
        out.append(f"makespan {recorded} != max rectangle end {expected}")
    return out
