"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1 | table2 | table3 | table4 | table5 | figure7`` — regenerate
  one of the paper's artifacts and print it (``--scale smoke|default|
  full`` overrides ``$REPRO_SCALE``),
* ``all-tables`` (alias ``tables``) — everything, in paper order,
* ``die <circuit> <die>`` — run both methods on one die and print the
  head-to-head (plus ``--atpg`` for coverage, ``--area`` for um²),
* ``profile <circuit> <die>`` — run both methods instrumented and
  print per-phase wall-clock timers and work counters,
* ``export <path>`` — write every table as markdown into a results file,
* ``fuzz`` — differentially fuzz the optimized kernels against the
  brute-force oracles (``--budget N`` / ``--seconds S``; ``--self-check``
  runs the mutation-kill harness; ``--repro-dir`` promotes shrunk
  failures to JSON repros),
* ``schedule`` — wrapper/TAM co-optimization: balance each die's
  reduced wrapper cells and scan chains into wrapper chains, pack one
  (width, time) rectangle per die into the stack's TAM budget, and
  print the ours-vs-Agrawal pre-bond test-time table (``--tam`` lanes,
  ``--width`` per-die reference width, ``--fixed-patterns N`` to skip
  ATPG, ``--families A,B`` for the topology stacks),
* ``session <circuit> <die>`` — incremental ECO re-solves: load the die
  once, then apply ``move-ff``/``move-tsv``/``add-tsv``/``remove-tsv``/
  ``set`` edits and ``solve`` from a script (``--script``) or
  interactively; ``--verify`` checks every solve against a cold run,
* ``serve`` — run the WCM job daemon: warm worker pool + resident ECO
  sessions behind a Unix socket under ``--state-dir``, with admission
  control, deterministic backoff, circuit breakers and graceful drain
  on SIGTERM/SIGINT (DESIGN.md §13),
* ``submit <kind> [KEY=VALUE ...]`` — submit one job to the daemon and
  (by default) wait for the result; sheds are retried with capped
  backoff; the exit code encodes the terminal state,
* ``jobs`` — list the daemon's jobs (``--stats`` for counters and
  breaker state, ``--drain`` to ask it to exit),
* ``trace show <manifest>`` — render a run manifest (counters,
  histograms, span timings),
* ``trace diff <golden> <candidate>`` — compare two run manifests
  (identity sections exactly, timings within a tolerance),
* ``bench gate <candidate>`` — accept/reject a manifest (or raw
  ``BENCH_*.json``) against a golden one; exit 1 on regression (CI).

Runtime flags (valid before or after the subcommand):

* ``--jobs N`` — run experiment cells on N worker processes (``0`` =
  one per CPU). Output is byte-identical to a serial run.
* ``--cache-dir PATH`` — enable the content-addressed result cache
  rooted at PATH (``$REPRO_CACHE_DIR`` is the env equivalent); reruns
  then skip every already-computed flow/ATPG cell.
* ``--no-cache`` — force the cache off even when configured.
* ``--timeout S`` — per-cell wall-clock budget; a cell that exceeds it
  is killed and reported as failed (``0`` disables).
* ``--retries N`` — re-run a crashed/failed cell up to N times with the
  same derived seed before marking it failed.
* ``--strict`` — abort on the first failed cell instead of rendering
  the table with the survivors.
* ``--checkpoint-dir PATH`` — journal completed cells so an
  interrupted sweep resumes where it left off.
* ``--trace-dir PATH`` — stream a structured JSONL event trail (spans,
  metrics) to PATH and write a fingerprinted run manifest per driver
  (``$REPRO_TRACE_DIR`` is the env equivalent).
* ``--backend python|numpy`` — kernel implementation set
  (``$REPRO_BACKEND`` is the env equivalent). Byte-identical results;
  ``numpy`` vectorizes the fault-simulation, STA and graph kernels.

Exit status: 0 when every cell succeeded, 1 when a table rendered with
failed cells excluded, 2 when a strict sweep aborted.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import Callable, Dict, Optional

from repro.experiments import (
    resolve_scale,
    run_figure7,
    run_overhead,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.common import scale_banner
from repro.runtime import configure
from repro.util.errors import (ConfigError, NetlistError,
                               RuntimeExecutionError)

_DRIVERS: Dict[str, Callable] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure7": run_figure7,
    "overhead": run_overhead,
}

#: regeneration order for `all-tables` / `export` (paper order)
_EXPORT_ORDER = ("table2", "table1", "table3", "table4", "table5",
                 "figure7")


def _run_driver(name: str, scale_name: Optional[str],
                verbose: bool, seed: Optional[int] = None) -> int:
    """Regenerate one artifact; returns the number of failed cells."""
    from repro.experiments.common import DEFAULT_SEED, driver_manifest
    from repro.runtime import trace

    scale = resolve_scale(scale_name)
    print(scale_banner(scale))
    seed = DEFAULT_SEED if seed is None else seed
    started = time.perf_counter()
    result = _DRIVERS[name](scale, seed=seed, verbose=verbose)
    rendered = result.render()
    print(rendered)
    print(f"[{name} regenerated in "
          f"{time.perf_counter() - started:.1f}s]")
    tracer = trace.active()
    if tracer is not None:
        payload = driver_manifest(name, result, scale, seed)
        path = trace.write_manifest(
            tracer.trace_dir / f"manifest-{name}.json", payload)
        print(f"[manifest {payload['fingerprint'][:12]} -> {path}]")
    return len(getattr(result, "failures", ()))


def _cmd_die(args: argparse.Namespace) -> int:
    from repro.atpg.engine import AtpgConfig
    from repro.bench import die_profile, generate_die
    from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
    from repro.core.flow import measure_testability
    from repro.core.problem import tight_clock_for
    from repro.dft.area import plan_area_estimate
    from repro.util.tables import AsciiTable, format_percent

    seed = getattr(args, "seed", 2019)
    profile = die_profile(args.circuit, args.die)
    netlist = generate_die(profile, seed=seed)
    problem = build_problem(netlist)
    clock = tight_clock_for(problem)
    problem_tight = problem.retime(clock)
    scenarios = {
        "area": (Scenario.area_optimized(), problem),
        "tight": (Scenario.performance_optimized(clock.period_ps),
                  problem_tight),
    }
    table = AsciiTable(["method/scenario", "#reused", "#additional",
                        "violation", "DFT area overhead"],
                       title=f"{profile.name} — wrapper minimization")
    for scenario_name, (scenario, prob) in scenarios.items():
        for method_name, config in (
                ("agrawal", WcmConfig.agrawal(scenario)),
                ("ours", WcmConfig.ours(scenario))):
            run = run_wcm_flow(prob, config)
            area = plan_area_estimate(netlist, run.plan)
            table.add_row([
                f"{method_name}/{scenario_name}",
                run.reused_scan_ffs, run.additional_wrapper_cells,
                "X" if run.timing_violation else "-",
                format_percent(area.overhead_fraction),
            ])
            if args.atpg and scenario_name == "tight":
                report = measure_testability(
                    run, AtpgConfig(seed=seed),
                    include_transition=False)
                print(f"  {method_name}: stuck-at coverage "
                      f"{format_percent(report.stuck_at.coverage)}, "
                      f"{report.stuck_at.pattern_count} patterns")
    print(table.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Instrumented head-to-head of one die: where does the time go?"""
    from repro.atpg.engine import AtpgConfig
    from repro.bench import die_profile, generate_die
    from repro.core import Scenario, WcmConfig, build_problem, run_wcm_flow
    from repro.core.flow import measure_testability
    from repro.core.problem import tight_clock_for
    from repro.runtime import instrument

    seed = getattr(args, "seed", 2019)
    profile = die_profile(args.circuit, args.die)
    print(f"profiling {profile.name} (seed {seed})")
    netlist = generate_die(profile, seed=seed)
    problem = build_problem(netlist)
    clock = tight_clock_for(problem)
    problem_tight = problem.retime(clock)
    scenario = Scenario.performance_optimized(clock.period_ps)
    for method_name, config in (
            ("agrawal", WcmConfig.agrawal(scenario)),
            ("ours", WcmConfig.ours(scenario))):
        with instrument.collect() as report:
            started = time.perf_counter()
            run = run_wcm_flow(problem_tight, config)
            if args.atpg:
                measure_testability(run, AtpgConfig(seed=seed),
                                    include_transition=False)
            elapsed = time.perf_counter() - started
        print(report.render(
            title=f"{profile.name} {method_name}/tight — "
                  f"{elapsed:.2f}s wall-clock"))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    scale = resolve_scale(getattr(args, "scale", None))
    sections = []
    failures = 0
    for name in _EXPORT_ORDER:
        print(f"regenerating {name}...", flush=True)
        result = _DRIVERS[name](scale)
        failures += len(getattr(result, "failures", ()))
        sections.append(f"## {name}\n\n```\n{result.render()}\n```\n")
    with open(args.path, "w") as handle:
        handle.write(f"# Regenerated results (scale={scale.name})\n\n")
        handle.write("\n".join(sections))
    print(f"wrote {args.path}")
    if failures:
        print(f"{failures} cell(s) failed; see the exported tables",
              file=sys.stderr)
        return 1
    return 0


def _common_options() -> argparse.ArgumentParser:
    """Options shared by the root parser and every subcommand.

    Subparsers must default to SUPPRESS: a plain default would
    overwrite a value the user already gave before the subcommand.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", choices=("smoke", "default", "full"),
                        default=argparse.SUPPRESS)
    common.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    common.add_argument("-v", "--verbose", action="store_true",
                        default=argparse.SUPPRESS)
    common.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                        metavar="N",
                        help="worker processes for experiment cells "
                             "(0 = one per CPU; default serial)")
    common.add_argument("--cache-dir", default=argparse.SUPPRESS,
                        metavar="PATH",
                        help="enable the on-disk result cache at PATH")
    common.add_argument("--no-cache", action="store_true",
                        default=argparse.SUPPRESS,
                        help="disable the result cache")
    common.add_argument("--timeout", type=float, default=argparse.SUPPRESS,
                        metavar="S",
                        help="per-cell wall-clock budget in seconds "
                             "(0 disables)")
    common.add_argument("--retries", type=int, default=argparse.SUPPRESS,
                        metavar="N",
                        help="re-run a failed cell up to N times with "
                             "the same seed")
    common.add_argument("--strict", action="store_true",
                        default=argparse.SUPPRESS,
                        help="abort on the first failed cell")
    common.add_argument("--checkpoint-dir", default=argparse.SUPPRESS,
                        metavar="PATH",
                        help="journal completed cells so interrupted "
                             "sweeps resume")
    common.add_argument("--trace-dir", default=argparse.SUPPRESS,
                        metavar="PATH",
                        help="stream structured trace events and run "
                             "manifests to PATH")
    common.add_argument("--backend", choices=("python", "numpy"),
                        default=argparse.SUPPRESS,
                        help="kernel implementation set (default "
                             "python; results are byte-identical)")
    return common


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing of the optimized kernels (DESIGN.md §8)."""
    from repro.verify import render_results, run_fuzz, self_check

    seed = getattr(args, "seed", 0) or 0
    checks = ([c for c in args.checks.split(",") if c]
              if args.checks else None)
    if args.self_check:
        mutants = ([m for m in args.mutants.split(",") if m]
                   if args.mutants else None)
        try:
            results = self_check(root_seed=seed,
                                 budget=args.budget or 150,
                                 checks=checks,
                                 mutant_names=mutants)
        except ValueError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        print(render_results(results))
        survivors = [r for r in results if not r.killed]
        killed = len(results) - len(survivors)
        if survivors:
            print(f"self-check FAILED: {len(survivors)} mutant(s) "
                  f"survived", file=sys.stderr)
            return 1
        if killed < 3:
            print(f"self-check FAILED: only {killed} mutant(s) "
                  f"exercised; need >= 3", file=sys.stderr)
            return 1
        print(f"self-check passed: {killed}/{killed} mutants killed")
        return 0

    try:
        report = run_fuzz(root_seed=seed,
                          budget=args.budget,
                          seconds=args.seconds,
                          checks=checks,
                          jobs=getattr(args, "jobs", None),
                          shrink_failures=not args.no_shrink,
                          repro_dir=args.repro_dir)
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.clean else 1


def _cmd_scale(args: argparse.Namespace) -> int:
    """Scaling-law sweep: where each kernel's complexity bends."""
    from repro.bench.scaling import (ScalingCaps, parse_gate_points,
                                     run_scaling, write_scaling_json)
    from repro.util.errors import ReproError

    families = [f for f in args.families.split(",") if f]
    try:
        gate_points = parse_gate_points(args.gates)
        densities = [float(d) for d in args.tsv_density.split(",") if d]
        caps = ScalingCaps()
        if args.sta_cap is not None:
            caps = dataclasses.replace(
                caps, prep=args.sta_cap if args.sta_cap > 0 else None)
        if args.flow_cap is not None:
            caps = dataclasses.replace(
                caps, flow=args.flow_cap if args.flow_cap > 0 else None)
        report = run_scaling(
            families, gate_points, densities or (40.0,),
            seed=getattr(args, "seed", 2019) or 2019,
            repeat=args.repeat, caps=caps,
            progress=(print if getattr(args, "verbose", False)
                      else None))
    except (ReproError, ValueError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.out != "-":
        write_scaling_json(report, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    """Wrapper/TAM co-optimization table (DESIGN.md §15)."""
    from repro.experiments.common import DEFAULT_SEED, driver_manifest
    from repro.runtime import trace
    from repro.schedule import run_schedule

    scale = resolve_scale(getattr(args, "scale", None))
    print(scale_banner(scale))
    seed = getattr(args, "seed", None)
    seed = DEFAULT_SEED if seed is None else seed
    families = tuple(f for f in args.families.split(",") if f)
    started = time.perf_counter()
    try:
        result = run_schedule(
            scale, seed=seed, verbose=getattr(args, "verbose", False),
            budget=args.tam, ref_width=args.width,
            fixed_patterns=args.fixed_patterns, families=families)
    except ConfigError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    print(f"[schedule regenerated in "
          f"{time.perf_counter() - started:.1f}s]")
    tracer = trace.active()
    if tracer is not None:
        payload = driver_manifest("schedule", result, scale, seed)
        path = trace.write_manifest(
            tracer.trace_dir / "manifest-schedule.json", payload)
        print(f"[manifest {payload['fingerprint'][:12]} -> {path}]")
    if result.failures:
        print(f"{len(result.failures)} cell(s) failed; table rendered "
              f"without them", file=sys.stderr)
    return 1 if result.failures else 0


_SESSION_USAGE = """\
commands (one per line; '#' starts a comment):
  move-ff NAME X Y        queue a scan-FF move
  move-tsv NAME X Y       queue a TSV move
  add-tsv NAME in|out X Y [NET]   queue a TSV insertion
  remove-tsv NAME         queue a TSV removal
  set d_th_um|cov_th V    queue a threshold change
  solve                   re-solve under the queued edits
  info                    print die summary (FF/TSV counts)
  help                    this text
  quit                    exit"""


def _cmd_session(args: argparse.Namespace) -> int:
    """Incremental ECO serving: one warm WcmSession per die, driven by
    an edit script or an interactive prompt (DESIGN.md §12)."""
    from repro.bench import die_profile, generate_die
    from repro.core import Scenario, WcmConfig, build_problem
    from repro.core.flow import run_wcm_flow
    from repro.core.problem import tight_clock_for
    from repro.core.session import (AddTsv, MoveFf, MoveTsv, RemoveTsv,
                                    SetThreshold, WcmSession)
    from repro.netlist.core import PortKind
    from repro.verify.checks import _eco_result_fp

    seed = getattr(args, "seed", None) or 2019
    profile = die_profile(args.circuit, args.die)
    netlist = generate_die(profile, seed=seed)
    problem = build_problem(netlist)
    clock = tight_clock_for(problem)
    scenario = (Scenario.area_optimized() if args.scenario == "area"
                else Scenario.performance_optimized(clock.period_ps))
    config = (WcmConfig.agrawal(scenario) if args.method == "agrawal"
              else WcmConfig.ours(scenario))
    started = time.perf_counter()
    session = WcmSession(problem.netlist, config, already_prepared=True)
    print(f"session: {profile.name} loaded in "
          f"{time.perf_counter() - started:.2f}s "
          f"({len(list(problem.netlist.scan_flip_flops()))} scan FFs, "
          f"{sum(1 for p in problem.netlist.ports.values() if p.is_tsv)} "
          f"TSVs)")

    if args.script and args.script != "-":
        lines = open(args.script, encoding="utf-8").read().splitlines()
        interactive = False
    else:
        lines = None
        interactive = sys.stdin.isatty()

    interrupted = []

    def read_lines():
        if lines is not None:
            yield from lines
            return
        while True:
            if interactive:
                print("eco> ", end="", flush=True)
            try:
                line = sys.stdin.readline()
            except (KeyboardInterrupt, EOFError):
                # Ctrl-C/Ctrl-D at the prompt: exit like `quit`, not
                # with a traceback over a half-printed prompt
                interrupted.append(True)
                return
            if not line:
                return
            yield line

    def solve_once(index: int) -> bool:
        t0 = time.perf_counter()
        result = session.solve()
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        status = (f"[solve {index}] {elapsed_ms:.1f}ms "
                  f"reused={result.reused_scan_ffs} "
                  f"additional={result.additional_wrapper_cells} "
                  f"violation={'yes' if result.timing_violation else 'no'} "
                  f"dirty={session.last_dirty_frac * 100:.1f}% "
                  f"fallback={session.last_fallback or '-'}")
        ok = True
        if args.verify:
            clone = session.netlist.clone()
            oracle_problem = build_problem(
                clone, clock=session.config.scenario.clock,
                already_prepared=True)
            want = run_wcm_flow(oracle_problem, session.config)
            ok = _eco_result_fp(result) == _eco_result_fp(want)
            status += f" verify={'ok' if ok else 'MISMATCH'}"
        print(status)
        return ok

    solves = 0
    mismatches = 0
    for raw in read_lines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        command, rest = words[0].lower(), words[1:]
        try:
            if command == "quit":
                break
            elif command == "help":
                print(_SESSION_USAGE)
            elif command == "info":
                netlist = session.netlist
                print(f"  {len(list(netlist.scan_flip_flops()))} scan "
                      f"FFs, {sum(1 for p in netlist.ports.values() if p.is_tsv)} "
                      f"TSVs, d_th_um={session.config.d_th_um} "
                      f"cov_th={session.config.cov_th} "
                      f"edits={session.edit_count}")
            elif command == "move-ff":
                session.apply(MoveFf(rest[0], float(rest[1]),
                                     float(rest[2])))
            elif command == "move-tsv":
                session.apply(MoveTsv(rest[0], float(rest[1]),
                                      float(rest[2])))
            elif command == "add-tsv":
                kind = (PortKind.TSV_INBOUND if rest[1] == "in"
                        else PortKind.TSV_OUTBOUND)
                session.apply(AddTsv(rest[0], kind, float(rest[2]),
                                     float(rest[3]),
                                     net=rest[4] if len(rest) > 4
                                     else None))
            elif command == "remove-tsv":
                session.apply(RemoveTsv(rest[0]))
            elif command == "set":
                if rest[0] not in ("d_th_um", "cov_th"):
                    raise ConfigError(f"set takes d_th_um or cov_th, "
                                      f"got {rest[0]!r}")
                session.apply(SetThreshold(**{rest[0]: float(rest[1])}))
            elif command == "solve":
                solves += 1
                if not solve_once(solves):
                    mismatches += 1
            else:
                print(f"unknown command {command!r} (try 'help')",
                      file=sys.stderr)
                if not interactive:
                    return 2
        except (ConfigError, NetlistError, IndexError, ValueError,
                KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            if not interactive:
                return 2
    if interrupted:
        # leave the terminal on a fresh line and flush telemetry —
        # the session ends cleanly, the way `quit` would
        from repro.runtime import trace
        print()
        sys.stdout.flush()
        trace.stop()
        return 130
    if mismatches:
        print(f"{mismatches}/{solves} solve(s) diverged from the cold "
              f"oracle", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# WCM-as-a-service: daemon + client commands (DESIGN.md §13)
# ---------------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the job daemon in the foreground until drained."""
    from repro.serve.queue import AdmissionPolicy
    from repro.serve.server import WcmServer

    policy = AdmissionPolicy(
        queue_caps=(args.cap_interactive, args.cap_normal, args.cap_batch),
        max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        default_deadline_s=args.default_deadline,
    )
    seed = getattr(args, "seed", None)
    server = WcmServer(
        args.state_dir,
        workers=args.serve_workers,
        policy=policy,
        job_timeout_s=args.job_timeout,
        seed=2019 if seed is None else seed,
    )
    server.start()
    server.install_signal_handlers()
    print(f"serving on {server.socket_path} "
          f"({server.workers_wanted} warm worker(s), "
          f"{server.recovered_jobs} job(s) recovered from journal; "
          f"SIGTERM/SIGINT drains)")
    server.serve_forever()
    stats = server.queue.stats() if server.queue is not None else {}
    counters = stats.get("counters", {})
    print(f"drained: {counters.get('done', 0)} done, "
          f"{counters.get('failed', 0)} failed, "
          f"{counters.get('shed', 0)} shed, "
          f"{counters.get('quarantined', 0)} quarantined")
    return 0


def _parse_job_params(pairs) -> Dict[str, object]:
    """``key=value`` pairs; values JSON-decoded, bare words kept as
    strings (``die=1`` is the int 1, ``circuit=b11`` the str 'b11')."""
    import json

    params: Dict[str, object] = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigError(f"job parameter {pair!r} is not key=value")
        try:
            params[key] = json.loads(raw)
        except ValueError:
            params[key] = raw
    return params


#: submit exit codes beyond the usual 0/1/2 — scripts branch on these
_SUBMIT_EXIT = {"done": 0, "failed": 1, "shed": 3, "quarantined": 4}


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job; exit code encodes the terminal state."""
    import json

    from repro.serve.client import (ServeClient, ServeUnavailable,
                                    socket_path_for)

    try:
        params = _parse_job_params(args.params)
    except ConfigError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(socket_path_for(args.state_dir))
    try:
        if args.no_retry:
            response = client.submit(
                args.kind, params, priority=args.priority,
                deadline_s=args.deadline, wait=not args.no_wait,
                timeout_s=args.wait_timeout)
        else:
            response = client.submit_with_backoff(
                args.kind, params, priority=args.priority,
                deadline_s=args.deadline, wait=not args.no_wait,
                timeout_s=args.wait_timeout)
    except ServeUnavailable as exc:
        print(f"repro: error: {exc} (is `repro serve` running?)",
              file=sys.stderr)
        return 2
    print(json.dumps(response, indent=2, sort_keys=True))
    if not response.get("ok", False):
        return 2
    state = response.get("state")
    if state in _SUBMIT_EXIT:
        return _SUBMIT_EXIT[state]
    return 5  # accepted but not terminal (no-wait, or wait timed out)


def _cmd_jobs(args: argparse.Namespace) -> int:
    """Inspect or drain the running daemon."""
    import json

    from repro.serve.client import (ServeClient, ServeUnavailable,
                                    socket_path_for)

    client = ServeClient(socket_path_for(args.state_dir))
    try:
        if args.drain:
            response = client.drain()
        elif args.stats:
            response = client.stats()
        else:
            response = client.jobs()
    except ServeUnavailable as exc:
        print(f"repro: error: {exc} (is `repro serve` running?)",
              file=sys.stderr)
        return 2
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok", False) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime import trace

    if args.action == "show":
        payload = trace.load_manifest(args.paths[0])
        print(trace.render_manifest(payload))
        return 0
    # diff
    if len(args.paths) != 2:
        print("trace diff needs exactly two manifests: GOLDEN CANDIDATE",
              file=sys.stderr)
        return 2
    golden = trace.load_manifest(args.paths[0])
    candidate = trace.load_manifest(args.paths[1])
    problems = trace.diff_manifests(golden, candidate,
                                    tolerance_pct=args.tolerance)
    if problems:
        print(f"{len(problems)} difference(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("manifests agree")
    return 0


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from repro.runtime import trace

    ok, lines = trace.gate(args.candidate, args.golden,
                           tolerance_pct=args.tolerance)
    for line in lines:
        print(line)
    return 0 if ok else 1


def main(argv=None) -> int:
    common = _common_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOCC'19 timing-aware wrapper-cell reduction "
                    "reproduction",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _DRIVERS:
        sub.add_parser(name, help=f"regenerate {name}", parents=[common])
    for alias in ("all-tables", "tables"):
        sub.add_parser(alias, parents=[common],
                       help="regenerate every table and figure")

    die_parser = sub.add_parser("die", parents=[common],
                                help="analyze one die head-to-head")
    die_parser.add_argument("circuit")
    die_parser.add_argument("die", type=int)
    die_parser.add_argument("--atpg", action="store_true",
                            help="also run stuck-at ATPG (slower)")

    profile_parser = sub.add_parser(
        "profile", parents=[common],
        help="instrumented per-phase timing of one die")
    profile_parser.add_argument("circuit")
    profile_parser.add_argument("die", type=int)
    profile_parser.add_argument("--atpg", action="store_true",
                                help="include stuck-at ATPG in the profile")

    export_parser = sub.add_parser("export", parents=[common],
                                   help="write all tables to markdown")
    export_parser.add_argument("path")

    fuzz_parser = sub.add_parser(
        "fuzz", parents=[common],
        help="differentially fuzz the kernels against brute-force "
             "oracles")
    fuzz_parser.add_argument("--budget", type=int, default=None,
                             metavar="N",
                             help="iteration budget (default 100; "
                                  "self-check default 150)")
    fuzz_parser.add_argument("--seconds", type=float, default=None,
                             metavar="S",
                             help="wall-clock budget instead of an "
                                  "iteration count")
    fuzz_parser.add_argument("--checks", default=None, metavar="A,B",
                             help="comma-separated check names "
                                  "(default: all)")
    fuzz_parser.add_argument("--repro-dir", default=None, metavar="PATH",
                             help="write shrunk failing specs as JSON "
                                  "repros under PATH")
    fuzz_parser.add_argument("--no-shrink", action="store_true",
                             help="skip shrinking failures")
    fuzz_parser.add_argument("--self-check", action="store_true",
                             help="mutation-kill mode: inject known-bad "
                                  "kernel mutants and require the fuzzer "
                                  "to kill every one (serial)")
    fuzz_parser.add_argument("--mutants", default=None, metavar="A,B",
                             help="comma-separated mutant names for "
                                  "--self-check (default: all)")

    scale_parser = sub.add_parser(
        "scale", parents=[common],
        help="scaling-law sweep over topology families (DESIGN.md §14)")
    scale_parser.add_argument("--families", default="grid,htree",
                              metavar="A,B",
                              help="comma-separated families "
                                   "(default grid,htree)")
    scale_parser.add_argument("--gates", default="1e3:1e5",
                              metavar="LO:HI[:N]",
                              help="log-spaced gate counts, or a comma "
                                   "list (default 1e3:1e5)")
    scale_parser.add_argument("--tsv-density", default="40",
                              metavar="T[,T]",
                              help="TSVs per kilogate, comma-separated "
                                   "(default 40)")
    scale_parser.add_argument("--repeat", type=int, default=1,
                              metavar="N",
                              help="timing repeats per phase (default 1)")
    scale_parser.add_argument("--sta-cap", type=int, default=None,
                              metavar="G",
                              help="skip placement/STA/graph/clique above "
                                   "G gates (default 200000; 0 disables)")
    scale_parser.add_argument("--flow-cap", type=int, default=None,
                              metavar="G",
                              help="skip full flow/ECO above G gates "
                                   "(default 20000; 0 disables)")
    scale_parser.add_argument("--out", default="BENCH_scaling.json",
                              metavar="PATH",
                              help="BENCH-compatible timings output "
                                   "(default BENCH_scaling.json; '-' "
                                   "skips the file)")

    schedule_parser = sub.add_parser(
        "schedule", parents=[common],
        help="wrapper/TAM co-optimization and pre-bond session "
             "scheduling (DESIGN.md §15)")
    schedule_parser.add_argument("--tam", type=int, default=8,
                                 metavar="W",
                                 help="stack TAM budget in lanes "
                                      "(default 8)")
    schedule_parser.add_argument("--width", type=int, default=2,
                                 metavar="W",
                                 help="per-die reference width for the "
                                      "test-time columns (default 2)")
    schedule_parser.add_argument("--fixed-patterns", type=int,
                                 default=None, metavar="N",
                                 help="pattern-count override (default: "
                                      "run stuck-at ATPG per die)")
    schedule_parser.add_argument("--families", default="grid,htree",
                                 metavar="A,B",
                                 help="topology-family stacks to "
                                      "schedule (default grid,htree; "
                                      "'' skips them)")

    session_parser = sub.add_parser(
        "session", parents=[common],
        help="incremental ECO re-solves on one warm die")
    session_parser.add_argument("circuit")
    session_parser.add_argument("die", type=int)
    session_parser.add_argument("--script", default=None, metavar="PATH",
                                help="edit script, one command per line "
                                     "('-' = stdin; omitted: stdin, "
                                     "interactive on a tty)")
    session_parser.add_argument("--method", choices=("ours", "agrawal"),
                                default="ours")
    session_parser.add_argument("--scenario", choices=("tight", "area"),
                                default="tight")
    session_parser.add_argument("--verify", action="store_true",
                                help="differentially check every solve "
                                     "against a cold flow run")

    serve_parser = sub.add_parser(
        "serve", parents=[common],
        help="run the WCM job daemon (warm workers + resident "
             "sessions) over a state directory")
    serve_parser.add_argument("--state-dir", default=".repro-serve",
                              metavar="PATH",
                              help="socket, journal and default cache "
                                   "root (default .repro-serve)")
    serve_parser.add_argument("--serve-workers", type=int, default=2,
                              metavar="N",
                              help="warm worker processes (default 2)")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="S",
                              help="per-attempt wall-clock budget; a "
                                   "job past it is killed and retried")
    serve_parser.add_argument("--max-attempts", type=int, default=3,
                              metavar="N",
                              help="attempts per job before a crash-"
                                   "class failure is terminal "
                                   "(default 3)")
    serve_parser.add_argument("--breaker-threshold", type=int, default=3,
                              metavar="N",
                              help="consecutive crashes on one die "
                                   "before its jobs quarantine "
                                   "(default 3)")
    serve_parser.add_argument("--default-deadline", type=float,
                              default=None, metavar="S",
                              help="deadline applied to jobs that "
                                   "don't carry one")
    serve_parser.add_argument("--cap-interactive", type=int, default=64,
                              metavar="N", help=argparse.SUPPRESS)
    serve_parser.add_argument("--cap-normal", type=int, default=256,
                              metavar="N", help=argparse.SUPPRESS)
    serve_parser.add_argument("--cap-batch", type=int, default=1024,
                              metavar="N", help=argparse.SUPPRESS)

    submit_parser = sub.add_parser(
        "submit", parents=[common],
        help="submit one job to a running daemon "
             "(exit: 0 done, 1 failed, 3 shed, 4 quarantined, "
             "5 accepted-not-finished)")
    submit_parser.add_argument("kind",
                               help="job kind: noop | flow | atpg | "
                                    "experiment | eco")
    submit_parser.add_argument("params", nargs="*", metavar="KEY=VALUE",
                               help="job parameters; values are JSON "
                                    "(circuit=b11 die=1 "
                                    "edits='[{...}]')")
    submit_parser.add_argument("--state-dir", default=".repro-serve",
                               metavar="PATH")
    submit_parser.add_argument("--priority", default="normal",
                               choices=("interactive", "normal",
                                        "batch"))
    submit_parser.add_argument("--deadline", type=float, default=None,
                               metavar="S",
                               help="drop the job if not done within S "
                                    "seconds of admission")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="return the job id immediately "
                                    "instead of waiting for the result")
    submit_parser.add_argument("--wait-timeout", type=float, default=None,
                               metavar="S",
                               help="stop waiting after S seconds (the "
                                    "job keeps running)")
    submit_parser.add_argument("--no-retry", action="store_true",
                               help="take a shed answer at face value "
                                    "instead of backing off and "
                                    "resubmitting")

    jobs_parser = sub.add_parser(
        "jobs", parents=[common],
        help="list a running daemon's jobs (--stats, --drain)")
    jobs_parser.add_argument("--state-dir", default=".repro-serve",
                             metavar="PATH")
    jobs_parser.add_argument("--stats", action="store_true",
                             help="counters, breakers and pool state "
                                  "instead of the job list")
    jobs_parser.add_argument("--drain", action="store_true",
                             help="ask the daemon to finish in-flight "
                                  "jobs, journal the rest and exit")

    trace_parser = sub.add_parser(
        "trace", parents=[common],
        help="inspect or compare run manifests")
    trace_parser.add_argument("action", choices=("show", "diff"))
    trace_parser.add_argument("paths", nargs="+", metavar="MANIFEST")
    trace_parser.add_argument("--tolerance", type=float, default=10.0,
                              metavar="PCT",
                              help="allowed timing regression percent "
                                   "(diff; default 10)")

    bench_parser = sub.add_parser(
        "bench", parents=[common],
        help="gate a run manifest against a golden baseline")
    bench_parser.add_argument("action", choices=("gate",))
    bench_parser.add_argument("candidate", metavar="CANDIDATE")
    bench_parser.add_argument("--golden",
                              default="benchmarks/BENCH_kernels.json",
                              metavar="PATH",
                              help="golden manifest or BENCH_*.json "
                                   "(default benchmarks/BENCH_kernels"
                                   ".json)")
    bench_parser.add_argument("--tolerance", type=float, default=10.0,
                              metavar="PCT",
                              help="allowed timing regression percent "
                                   "(default 10)")

    args = parser.parse_args(argv)
    try:
        configure(jobs=getattr(args, "jobs", None),
                  cache_dir=getattr(args, "cache_dir", None),
                  no_cache=getattr(args, "no_cache", None),
                  timeout_s=getattr(args, "timeout", None),
                  retries=getattr(args, "retries", None),
                  strict=getattr(args, "strict", None),
                  checkpoint_dir=getattr(args, "checkpoint_dir", None),
                  trace_dir=getattr(args, "trace_dir", None),
                  backend=getattr(args, "backend", None))
    except ConfigError as exc:
        parser.error(str(exc))

    scale_name = getattr(args, "scale", None)
    verbose = getattr(args, "verbose", False)
    seed = getattr(args, "seed", None)
    try:
        if args.command in _DRIVERS:
            failures = _run_driver(args.command, scale_name, verbose,
                                   seed=seed)
            if failures:
                print(f"{failures} cell(s) failed; table rendered "
                      f"without them", file=sys.stderr)
            return 1 if failures else 0
        if args.command in ("all-tables", "tables"):
            failures = 0
            for name in _EXPORT_ORDER:
                failures += _run_driver(name, scale_name, verbose,
                                        seed=seed)
            if failures:
                print(f"{failures} cell(s) failed across the sweep",
                      file=sys.stderr)
            return 1 if failures else 0
        if args.command == "die":
            return _cmd_die(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "scale":
            return _cmd_scale(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "schedule":
            return _cmd_schedule(args)
        if args.command == "session":
            return _cmd_session(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "bench":
            return _cmd_bench_gate(args)
    except KeyboardInterrupt:
        # interrupted mid-command (serve handles SIGINT itself while
        # serve_forever runs): flush telemetry, conventional 130
        from repro.runtime import trace
        trace.stop()
        print(file=sys.stderr)
        return 130
    except RuntimeExecutionError as exc:
        print(f"sweep aborted: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error. Detach
        # stdout so interpreter shutdown doesn't retry the flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.error(f"unknown command {args.command}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
