"""Fiduccia–Mattheyses min-cut partitioning of a 2D netlist into dies.

Stands in for the paper's 3D-Craft partitioning step: a flat gate-level
netlist is split into ``num_dies`` balanced parts with recursive FM
bisection; every net that crosses a die boundary becomes a TSV (an
outbound port on the driver's die, an inbound port on every other die
that consumes it), reproducing how inbound/outbound TSV sets arise.

Global nets driven by clock/scan-enable/test-mode ports are replicated
per die instead of being turned into TSVs, as a real 3D clock/DFT
network would be.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.netlist.core import Netlist, Pin, PortDirection, PortKind
from repro.threed.model import Stack3D, TsvLink
from repro.util.errors import PartitionError
from repro.util.rng import DeterministicRng

#: Port kinds replicated on every die that needs them (never TSVs).
_REPLICATED_KINDS = {PortKind.CLOCK, PortKind.SCAN_ENABLE, PortKind.TEST_MODE}


@dataclass
class PartitionConfig:
    num_dies: int = 4
    #: allowed deviation of a side from perfect balance, as a fraction
    balance_tolerance: float = 0.10
    max_passes: int = 8
    seed: int = 2019


def _build_hypergraph(netlist: Netlist, members: Sequence[str]
                      ) -> Tuple[Dict[str, List[int]], List[List[str]]]:
    """Return (cell -> list of net ids, net id -> member cells)."""
    member_set = set(members)
    nets: List[List[str]] = []
    cell_nets: Dict[str, List[int]] = {name: [] for name in members}
    for net in netlist.nets.values():
        touched: Set[str] = set()
        if net.driver is not None and not net.driver.is_port:
            if net.driver.owner_name in member_set:
                touched.add(net.driver.owner_name)
        for sink in net.sinks:
            if not sink.is_port and sink.owner_name in member_set:
                touched.add(sink.owner_name)
        if len(touched) >= 2:
            net_id = len(nets)
            nets.append(sorted(touched))
            for cell in touched:
                cell_nets[cell].append(net_id)
    return cell_nets, nets


def bisect_instances(netlist: Netlist, members: Sequence[str],
                     rng: DeterministicRng,
                     config: Optional[PartitionConfig] = None
                     ) -> Tuple[Set[str], Set[str]]:
    """FM bisection of *members* (instance names) of *netlist*.

    Returns two balanced sets minimizing the number of crossing nets.
    """
    config = config or PartitionConfig()
    members = list(members)
    if len(members) < 2:
        raise PartitionError("cannot bisect fewer than 2 instances")

    cell_nets, nets = _build_hypergraph(netlist, members)

    # Initial random balanced split.
    shuffled = rng.shuffled(members)
    half = len(shuffled) // 2
    side: Dict[str, int] = {}
    for i, name in enumerate(shuffled):
        side[name] = 0 if i < half else 1

    target = len(members) / 2.0
    slack = max(1.0, target * config.balance_tolerance)

    def side_count(which: int) -> int:
        return counts[which]

    counts = [sum(1 for s in side.values() if s == 0),
              sum(1 for s in side.values() if s == 1)]

    # Per-net side membership counts, maintained incrementally.
    net_side_counts = [[0, 0] for _ in nets]
    for net_id, cells in enumerate(nets):
        for cell in cells:
            net_side_counts[net_id][side[cell]] += 1

    def gain_of(cell: str) -> int:
        s = side[cell]
        o = 1 - s
        gain = 0
        for net_id in cell_nets[cell]:
            here, there = net_side_counts[net_id][s], net_side_counts[net_id][o]
            if here == 1:
                gain += 1  # moving uncuts this net
            if there == 0:
                gain -= 1  # moving cuts this net
        return gain

    for _pass in range(config.max_passes):
        locked: Set[str] = set()
        gains = {cell: gain_of(cell) for cell in members}
        # Bucket structure: gain value -> set of movable cells.
        buckets: Dict[int, Set[str]] = defaultdict(set)
        for cell, g in gains.items():
            buckets[g].add(cell)

        history: List[Tuple[str, int]] = []  # (cell, cumulative gain)
        cumulative = 0
        best_cumulative = 0
        best_prefix = 0

        for _step in range(len(members)):
            # Highest-gain movable cell respecting balance.
            chosen: Optional[str] = None
            for g in sorted(buckets.keys(), reverse=True):
                for cell in buckets[g]:
                    s = side[cell]
                    # Balance check: moving off side s.
                    if counts[s] - 1 < target - slack:
                        continue
                    if counts[1 - s] + 1 > target + slack:
                        continue
                    chosen = cell
                    break
                if chosen is not None:
                    break
            if chosen is None:
                break

            g = gains[chosen]
            buckets[g].discard(chosen)
            locked.add(chosen)
            s = side[chosen]
            o = 1 - s

            # Update neighbour gains (standard FM delta rules).
            for net_id in cell_nets[chosen]:
                here = net_side_counts[net_id][s]
                there = net_side_counts[net_id][o]
                cells = nets[net_id]
                if there == 0:
                    for cell in cells:
                        if cell not in locked:
                            buckets[gains[cell]].discard(cell)
                            gains[cell] += 1
                            buckets[gains[cell]].add(cell)
                elif there == 1:
                    for cell in cells:
                        if cell not in locked and side[cell] == o:
                            buckets[gains[cell]].discard(cell)
                            gains[cell] -= 1
                            buckets[gains[cell]].add(cell)
                net_side_counts[net_id][s] -= 1
                net_side_counts[net_id][o] += 1
                here = net_side_counts[net_id][s]
                if here == 0:
                    for cell in cells:
                        if cell not in locked:
                            buckets[gains[cell]].discard(cell)
                            gains[cell] -= 1
                            buckets[gains[cell]].add(cell)
                elif here == 1:
                    for cell in cells:
                        if cell not in locked and side[cell] == s:
                            buckets[gains[cell]].discard(cell)
                            gains[cell] += 1
                            buckets[gains[cell]].add(cell)

            side[chosen] = o
            counts[s] -= 1
            counts[o] += 1
            cumulative += g
            history.append((chosen, cumulative))
            if cumulative > best_cumulative:
                best_cumulative = cumulative
                best_prefix = len(history)

        # Roll back moves after the best prefix.
        for cell, _g in history[best_prefix:]:
            s = side[cell]
            o = 1 - s
            for net_id in cell_nets[cell]:
                net_side_counts[net_id][s] -= 1
                net_side_counts[net_id][o] += 1
            side[cell] = o
            counts[s] -= 1
            counts[o] += 1

        if best_cumulative <= 0:
            break

    part_a = {cell for cell, s in side.items() if s == 0}
    part_b = {cell for cell, s in side.items() if s == 1}
    return part_a, part_b


def _assign_ports(netlist: Netlist, assignment: Dict[str, int],
                  num_dies: int) -> Dict[str, int]:
    """Pin each 2D port to the die where most of its net's users live."""
    port_die: Dict[str, int] = {}
    for port in netlist.ports.values():
        if port.net is None:
            port_die[port.name] = 0
            continue
        net = netlist.net(port.net)
        votes = [0] * num_dies
        if net.driver is not None and not net.driver.is_port:
            votes[assignment[net.driver.owner_name]] += 2
        for sink in net.sinks:
            if not sink.is_port:
                votes[assignment[sink.owner_name]] += 1
        best = max(range(num_dies), key=lambda d: votes[d])
        port_die[port.name] = best
    return port_die


def partition_into_stack(netlist: Netlist,
                         config: Optional[PartitionConfig] = None
                         ) -> Tuple[Stack3D, Dict[str, int]]:
    """Partition a flat 2D netlist into a :class:`Stack3D`.

    Returns the stack and the instance -> die assignment. ``num_dies``
    must be a power of two (recursive bisection).
    """
    config = config or PartitionConfig()
    num = config.num_dies
    if num < 1 or num & (num - 1) != 0:
        raise PartitionError(f"num_dies must be a power of two, got {num}")

    rng = DeterministicRng(config.seed).child("partition", netlist.name)
    groups: List[Set[str]] = [set(netlist.instances.keys())]
    while len(groups) < num:
        next_groups: List[Set[str]] = []
        for index, group in enumerate(groups):
            if len(group) < 2:
                raise PartitionError(
                    f"group of {len(group)} instances cannot be bisected"
                )
            a, b = bisect_instances(netlist, sorted(group),
                                    rng.child("bisect", len(groups), index),
                                    config)
            next_groups.extend([a, b])
        groups = next_groups

    assignment: Dict[str, int] = {}
    for die_index, group in enumerate(groups):
        for name in group:
            assignment[name] = die_index

    port_die = _assign_ports(netlist, assignment, num)
    stack = _carve_dies(netlist, assignment, port_die, num)
    return stack, assignment


def _carve_dies(netlist: Netlist, assignment: Dict[str, int],
                port_die: Dict[str, int], num: int) -> Stack3D:
    dies = [Netlist(f"{netlist.name}_die{d}", netlist.library)
            for d in range(num)]
    links: List[TsvLink] = []

    # Instantiate cells per die (connections re-created net by net).
    for inst in netlist.instances.values():
        die = dies[assignment[inst.name]]
        die.add_instance(inst.name, inst.cell.name)

    replicated_ports = {
        p.name for p in netlist.ports.values() if p.kind in _REPLICATED_KINDS
    }

    for net in netlist.nets.values():
        driver = net.driver
        if driver is None:
            continue
        is_replicated = (driver.is_port and driver.owner_name in replicated_ports)

        if driver.is_port:
            driver_die = port_die[driver.owner_name]
        else:
            driver_die = assignment[driver.owner_name]

        sink_dies: Dict[int, List[Pin]] = defaultdict(list)
        for sink in net.sinks:
            die_index = (port_die[sink.owner_name] if sink.is_port
                         else assignment[sink.owner_name])
            sink_dies[die_index].append(sink)

        if is_replicated:
            # Replicate the global port on every die that consumes it.
            kind = netlist.port(driver.owner_name).kind
            for die_index, sinks in sink_dies.items():
                die = dies[die_index]
                local = die.get_or_add_net(net.name)
                port = die.add_port(f"{driver.owner_name}", kind)
                die.connect_port(port.name, local.name)
                for sink in sinks:
                    _reconnect_sink(die, netlist, sink, local.name)
            continue

        # Local net on the driver die.
        driver_netlist = dies[driver_die]
        local = driver_netlist.get_or_add_net(net.name)
        if driver.is_port:
            src_port = netlist.port(driver.owner_name)
            driver_netlist.add_port(src_port.name, src_port.kind)
            driver_netlist.connect_port(src_port.name, local.name)
        else:
            driver_netlist.connect(driver.owner_name, driver.pin_name, local.name)
        for sink in sink_dies.get(driver_die, ()):
            _reconnect_sink(driver_netlist, netlist, sink, local.name)

        remote_dies = [d for d in sink_dies if d != driver_die]
        if remote_dies:
            out_name = f"tsvout__{net.name}"
            driver_netlist.add_port(out_name, PortKind.TSV_OUTBOUND)
            driver_netlist.connect_port(out_name, local.name)
            for die_index in remote_dies:
                die = dies[die_index]
                in_name = f"tsvin__{net.name}"
                local_remote = die.get_or_add_net(net.name)
                die.add_port(in_name, PortKind.TSV_INBOUND)
                die.connect_port(in_name, local_remote.name)
                for sink in sink_dies[die_index]:
                    _reconnect_sink(die, netlist, sink, local_remote.name)
                links.append(TsvLink(
                    name=f"tsv__{net.name}__{driver_die}_{die_index}",
                    source_die=driver_die,
                    source_port=out_name,
                    target_die=die_index,
                    target_port=in_name,
                ))

    stack = Stack3D(name=netlist.name, dies=dies, links=links)
    stack.validate_links()
    return stack


def _reconnect_sink(die: Netlist, original: Netlist, sink: Pin,
                    net_name: str) -> None:
    if sink.is_port:
        src_port = original.port(sink.owner_name)
        if sink.owner_name not in die.ports:
            die.add_port(src_port.name, src_port.kind)
        die.connect_port(src_port.name, net_name)
    else:
        die.connect(sink.owner_name, sink.pin_name, net_name)
