"""3D-IC modelling: die stacks, TSV links, and min-cut partitioning.

Two ways to obtain a stack exist in this reproduction:

* :func:`repro.bench.generate_stack` builds dies calibrated to the
  paper's Table II directly (used by all experiments), and
* :func:`repro.threed.partition.partition_into_stack` partitions a flat
  2D netlist into dies with a Fiduccia–Mattheyses min-cut heuristic,
  standing in for the 3D-Craft flow of the paper (used by examples and
  the full-flow tests).
"""

from repro.threed.model import Stack3D, TsvLink
from repro.threed.partition import (
    PartitionConfig,
    bisect_instances,
    partition_into_stack,
)

__all__ = [
    "Stack3D",
    "TsvLink",
    "PartitionConfig",
    "bisect_instances",
    "partition_into_stack",
]
