"""Stack-of-dies model.

A :class:`Stack3D` owns one netlist per die plus the :class:`TsvLink`
records that describe which outbound TSV of which die bonds to which
inbound TSV of another die. Pre-bond analysis (the entire WCM problem)
is per-die; the links exist so post-bond checks and examples can reason
about the assembled stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.core import Netlist, PortKind
from repro.util.errors import PartitionError


@dataclass(frozen=True)
class TsvLink:
    """One bonded TSV: an outbound port on one die feeding an inbound
    port on another (or an external bump when ``target_die`` is None)."""

    name: str
    source_die: int
    source_port: str
    target_die: Optional[int]
    target_port: Optional[str]

    @property
    def is_external(self) -> bool:
        return self.target_die is None


@dataclass
class Stack3D:
    """An ordered stack of dies (index 0 at the bottom)."""

    name: str
    dies: List[Netlist]
    links: List[TsvLink] = field(default_factory=list)

    def die(self, index: int) -> Netlist:
        if not 0 <= index < len(self.dies):
            raise PartitionError(
                f"stack {self.name}: die index {index} out of range "
                f"0..{len(self.dies) - 1}"
            )
        return self.dies[index]

    @property
    def die_count(self) -> int:
        return len(self.dies)

    def tsv_count(self) -> int:
        return sum(die.tsv_count for die in self.dies)

    def validate_links(self) -> None:
        """Check every link references real ports of the right kinds."""
        for link in self.links:
            src_die = self.die(link.source_die)
            src = src_die.port(link.source_port)
            if src.kind is not PortKind.TSV_OUTBOUND:
                raise PartitionError(
                    f"link {link.name}: source {link.source_port} on die "
                    f"{link.source_die} is {src.kind.value}, not tsv_outbound"
                )
            if link.is_external:
                continue
            dst_die = self.die(link.target_die)
            dst = dst_die.port(link.target_port)
            if dst.kind is not PortKind.TSV_INBOUND:
                raise PartitionError(
                    f"link {link.name}: target {link.target_port} on die "
                    f"{link.target_die} is {dst.kind.value}, not tsv_inbound"
                )

    def summary(self) -> List[Dict[str, int]]:
        return [die.stats() for die in self.dies]
