"""Compiled combinational circuit and packed-pattern simulation.

``CompiledCircuit`` lowers a :class:`~repro.dft.testview.TestView` to
flat arrays: net ids, a topologically ordered gate list, per-net fanout
(gate users), source bindings (input columns, constants, X-ties) and
observation nets. Simulation packs many patterns into one Python
big-int per net, so a single ``&``/``|``/``^`` evaluates the gate for
the whole block in C.

The gate list is additionally lowered to a flat **op-tape**: one tuple
``(opcode, out, in0[, in1[, in2]])`` per gate in post (topological)
order, with a dedicated opcode per (function, arity) pair for all
1/2/3-input cells of the library. The block simulator and the
event-driven propagator interpret the tape with inlined big-int
expressions — no per-gate ``op()`` callable, no per-gate input-list
allocation. Unusual arities fall back to the generic
:data:`~repro.netlist.library.LOGIC_FUNCTIONS` callable.

Faulty-machine propagation is event-driven and cone-limited: only the
fan-out cone of the fault site is re-evaluated, in topological order,
against the cached good-machine values — the standard PPSFP scheme.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dft.testview import TestView
from repro.netlist.library import LOGIC_FUNCTIONS
from repro.runtime import instrument
from repro.util.errors import AtpgError


@dataclass
class _Gate:
    """One compiled gate."""

    index: int
    name: str
    op: Callable[[Sequence[int], int], int]
    op_name: str
    out: int  # net id
    ins: Tuple[int, ...]  # net ids in cell pin order


# Op-tape opcodes, one per (function, arity) the library can produce.
_OP_BUF = 0
_OP_INV = 1
_OP_AND2 = 2
_OP_OR2 = 3
_OP_XOR2 = 4
_OP_NAND2 = 5
_OP_NOR2 = 6
_OP_XNOR2 = 7
_OP_MUX2 = 8
_OP_AOI21 = 9
_OP_OAI21 = 10
_OP_AND3 = 11
_OP_OR3 = 12
_OP_NAND3 = 13
_OP_NOR3 = 14
_OP_XOR3 = 15
_OP_XNOR3 = 16
_OP_GENERIC = 17

#: (function name, arity) -> opcode. Anything absent goes generic.
_OPCODES: Dict[Tuple[str, int], int] = {
    ("buf", 1): _OP_BUF,
    ("inv", 1): _OP_INV,
    ("and", 2): _OP_AND2,
    ("or", 2): _OP_OR2,
    ("xor", 2): _OP_XOR2,
    ("nand", 2): _OP_NAND2,
    ("nor", 2): _OP_NOR2,
    ("xnor", 2): _OP_XNOR2,
    ("mux2", 3): _OP_MUX2,
    ("aoi21", 3): _OP_AOI21,
    ("oai21", 3): _OP_OAI21,
    ("and", 3): _OP_AND3,
    ("or", 3): _OP_OR3,
    ("nand", 3): _OP_NAND3,
    ("nor", 3): _OP_NOR3,
    ("xor", 3): _OP_XOR3,
    ("xnor", 3): _OP_XNOR3,
}


class CompiledCircuit:
    """A test view lowered to simulation arrays."""

    def __init__(self, view: TestView) -> None:
        self.view = view
        netlist = view.netlist

        self.net_ids: Dict[str, int] = {}
        self.net_names: List[str] = []
        for name in netlist.nets:
            self.net_ids[name] = len(self.net_names)
            self.net_names.append(name)
        n_nets = len(self.net_names)

        # Source bindings.
        self.input_columns: List[int] = []  # net ids, column order
        seen: Set[int] = set()
        for net in view.control_nets:
            nid = self.net_ids[net]
            if nid not in seen:
                seen.add(nid)
                self.input_columns.append(nid)
        self.column_of: Dict[int, int] = {
            nid: column for column, nid in enumerate(self.input_columns)
        }
        self.constant_nets: Dict[int, int] = {
            self.net_ids[net]: value for net, value in view.constant_nets.items()
        }
        self.x_net_ids: Set[int] = {self.net_ids[n] for n in view.x_nets
                                    if n in self.net_ids}

        # Observations (dedup by net).
        self.observe_ids: List[int] = []
        obs_seen: Set[int] = set()
        for _label, net in view.observe_nets:
            nid = self.net_ids[net]
            if nid not in obs_seen:
                obs_seen.add(nid)
                self.observe_ids.append(nid)
        self.observed: Set[int] = obs_seen

        # Gates in topological order.
        from repro.netlist.topology import topological_instances

        self.gates: List[_Gate] = []
        self.gate_of_net: Dict[int, int] = {}  # out net id -> gate index
        for name in topological_instances(netlist):
            inst = netlist.instance(name)
            out_net = inst.output_net()
            if out_net is None:
                continue
            in_ids = tuple(
                self.net_ids[inst.connections[pin.name]]
                for pin in inst.cell.input_pins
                if pin.name not in ("CK", "SE", "SI")
                and pin.name in inst.connections
            )
            gate = _Gate(
                index=len(self.gates),
                name=name,
                op=LOGIC_FUNCTIONS[inst.cell.function],
                op_name=inst.cell.function,
                out=self.net_ids[out_net],
                ins=in_ids,
            )
            self.gates.append(gate)
            self.gate_of_net[gate.out] = gate.index
        self.gate_index_by_name: Dict[str, int] = {
            g.name: g.index for g in self.gates
        }

        # The op-tape: tape[i] evaluates gates[i]. Generic entries carry
        # the op callable so the interpreter never touches the dataclass.
        self.tape: List[Tuple] = []
        for gate in self.gates:
            code = _OPCODES.get((gate.op_name, len(gate.ins)), _OP_GENERIC)
            if code == _OP_GENERIC:
                self.tape.append((code, gate.out, gate.op, gate.ins))
            else:
                self.tape.append((code, gate.out) + gate.ins)

        # Per-net gate users (for event-driven propagation).
        self.gate_users: List[List[int]] = [[] for _ in range(n_nets)]
        for gate in self.gates:
            for nid in gate.ins:
                self.gate_users[nid].append(gate.index)

        self.n_nets = n_nets

    # ------------------------------------------------------------------
    @property
    def input_count(self) -> int:
        return len(self.input_columns)

    def column_of_net(self, net_name: str) -> Optional[int]:
        """Input column index of a control net (None if not a control)."""
        nid = self.net_ids.get(net_name)
        if nid is None:
            return None
        return self.column_of.get(nid)

    def make_buffer(self) -> List[int]:
        """A reusable value buffer for :meth:`simulate`'s ``out=``.

        Entries the simulator never writes (X-ties, floating nets) are
        zero and stay zero across reuses, so handing the same buffer to
        consecutive blocks is byte-identical to fresh allocation — as
        long as the caller has finished with the previous block.
        """
        return [0] * self.n_nets

    # ------------------------------------------------------------------
    def simulate(self, input_words: Sequence[int], mask: int,
                 out: Optional[List[int]] = None) -> List[int]:
        """Good-machine simulation of one pattern block.

        *input_words* has one packed word per input column; bit *k* of
        a word is the value of that input in pattern *k*. Passing a
        buffer from :meth:`make_buffer` as *out* reuses it instead of
        allocating a fresh values list (the previous block's contents
        are overwritten).
        """
        if len(input_words) != len(self.input_columns):
            raise AtpgError(
                f"expected {len(self.input_columns)} input words, "
                f"got {len(input_words)}"
            )
        if out is None:
            values = [0] * self.n_nets
        else:
            values = out
        for nid, word in zip(self.input_columns, input_words):
            values[nid] = word & mask
        for nid, constant in self.constant_nets.items():
            values[nid] = mask if constant else 0
        # X-source nets stay tied to 0.
        for entry in self.tape:
            code = entry[0]
            if code == _OP_AND2:
                values[entry[1]] = values[entry[2]] & values[entry[3]]
            elif code == _OP_NAND2:
                values[entry[1]] = \
                    ~(values[entry[2]] & values[entry[3]]) & mask
            elif code == _OP_OR2:
                values[entry[1]] = values[entry[2]] | values[entry[3]]
            elif code == _OP_NOR2:
                values[entry[1]] = \
                    ~(values[entry[2]] | values[entry[3]]) & mask
            elif code == _OP_XOR2:
                values[entry[1]] = values[entry[2]] ^ values[entry[3]]
            elif code == _OP_XNOR2:
                values[entry[1]] = \
                    ~(values[entry[2]] ^ values[entry[3]]) & mask
            elif code == _OP_INV:
                values[entry[1]] = ~values[entry[2]] & mask
            elif code == _OP_BUF:
                values[entry[1]] = values[entry[2]]
            elif code == _OP_MUX2:
                s = values[entry[4]]
                values[entry[1]] = \
                    (values[entry[2]] & ~s) | (values[entry[3]] & s)
            elif code == _OP_AOI21:
                values[entry[1]] = ~((values[entry[2]] & values[entry[3]])
                                     | values[entry[4]]) & mask
            elif code == _OP_OAI21:
                values[entry[1]] = ~((values[entry[2]] | values[entry[3]])
                                     & values[entry[4]]) & mask
            elif code == _OP_AND3:
                values[entry[1]] = (values[entry[2]] & values[entry[3]]
                                    & values[entry[4]])
            elif code == _OP_OR3:
                values[entry[1]] = (values[entry[2]] | values[entry[3]]
                                    | values[entry[4]])
            elif code == _OP_NAND3:
                values[entry[1]] = ~(values[entry[2]] & values[entry[3]]
                                     & values[entry[4]]) & mask
            elif code == _OP_NOR3:
                values[entry[1]] = ~(values[entry[2]] | values[entry[3]]
                                     | values[entry[4]]) & mask
            elif code == _OP_XOR3:
                values[entry[1]] = (values[entry[2]] ^ values[entry[3]]
                                    ^ values[entry[4]])
            elif code == _OP_XNOR3:
                values[entry[1]] = ~(values[entry[2]] ^ values[entry[3]]
                                     ^ values[entry[4]]) & mask
            else:
                values[entry[1]] = entry[2](
                    [values[i] for i in entry[3]], mask)
        instrument.count("sim.tape_blocks")
        return values

    def simulate_reference(self, input_words: Sequence[int], mask: int
                           ) -> List[int]:
        """Per-gate ``op()`` interpreter — the pre-tape reference.

        Kept for the kernel-equivalence property tests; the tape
        interpreter in :meth:`simulate` must match it bit for bit.
        """
        if len(input_words) != len(self.input_columns):
            raise AtpgError(
                f"expected {len(self.input_columns)} input words, "
                f"got {len(input_words)}"
            )
        values = [0] * self.n_nets
        for nid, word in zip(self.input_columns, input_words):
            values[nid] = word & mask
        for nid, constant in self.constant_nets.items():
            values[nid] = mask if constant else 0
        for gate in self.gates:
            values[gate.out] = gate.op([values[i] for i in gate.ins], mask)
        return values

    # ------------------------------------------------------------------
    def propagate_stem(self, good: List[int], net_id: int, value: int,
                       mask: int) -> int:
        """Detection word of a stem stuck-at fault (value 0/1)."""
        forced = mask if value else 0
        if forced == (good[net_id] & mask):
            return 0  # never activated
        return self._propagate(good, {net_id: forced}, mask)

    def propagate_branch(self, good: List[int], gate_index: int,
                         pin_position: int, value: int, mask: int) -> int:
        """Detection word of a branch (gate input pin) stuck-at fault."""
        gate = self.gates[gate_index]
        ins = [good[i] for i in gate.ins]
        ins[pin_position] = mask if value else 0
        out_word = gate.op(ins, mask)
        if out_word == good[gate.out]:
            return 0
        return self._propagate(good, {gate.out: out_word}, mask)

    def observation_diff(self, good: List[int], net_id: int, value: int,
                         mask: int) -> int:
        """Detection word of a fault on a pin feeding an observation
        point directly (activation equals detection)."""
        forced = mask if value else 0
        return (good[net_id] ^ forced) & mask

    # ------------------------------------------------------------------
    def propagate_values(self, good: List[int], changed: Dict[int, int],
                         mask: int) -> Dict[int, int]:
        """Event-driven propagation of *changed* net values against the
        *good* baseline; returns the final changed-net map (mutates and
        returns the passed dict). Used for fault effects and for
        what-if analyses (tied inputs, aliased observations)."""
        self._propagate(good, changed, mask)
        return changed

    def observation_diffs(self, good: List[int], changed: Dict[int, int]
                          ) -> Dict[int, int]:
        """Per-observation-net difference words for a changed-map."""
        diffs: Dict[int, int] = {}
        for nid in self.observe_ids:
            if nid in changed:
                word = changed[nid] ^ good[nid]
                if word:
                    diffs[nid] = word
        return diffs

    def _propagate(self, good: List[int], changed: Dict[int, int],
                   mask: int) -> int:
        """Event-driven faulty propagation; returns the detection word."""
        heap: List[int] = []
        queued: Set[int] = set()
        for nid in changed:
            for gi in self.gate_users[nid]:
                if gi not in queued:
                    queued.add(gi)
                    heapq.heappush(heap, gi)

        tape = self.tape
        users = self.gate_users
        changed_get = changed.get
        events = 0
        while heap:
            gi = heapq.heappop(heap)
            entry = tape[gi]
            events += 1
            code = entry[0]
            out = entry[1]
            if code == _OP_AND2:
                a = entry[2]
                b = entry[3]
                out_word = (changed_get(a, good[a])
                            & changed_get(b, good[b]))
            elif code == _OP_NAND2:
                a = entry[2]
                b = entry[3]
                out_word = ~(changed_get(a, good[a])
                             & changed_get(b, good[b])) & mask
            elif code == _OP_OR2:
                a = entry[2]
                b = entry[3]
                out_word = (changed_get(a, good[a])
                            | changed_get(b, good[b]))
            elif code == _OP_NOR2:
                a = entry[2]
                b = entry[3]
                out_word = ~(changed_get(a, good[a])
                             | changed_get(b, good[b])) & mask
            elif code == _OP_XOR2:
                a = entry[2]
                b = entry[3]
                out_word = (changed_get(a, good[a])
                            ^ changed_get(b, good[b]))
            elif code == _OP_XNOR2:
                a = entry[2]
                b = entry[3]
                out_word = ~(changed_get(a, good[a])
                             ^ changed_get(b, good[b])) & mask
            elif code == _OP_INV:
                a = entry[2]
                out_word = ~changed_get(a, good[a]) & mask
            elif code == _OP_BUF:
                a = entry[2]
                out_word = changed_get(a, good[a])
            elif code == _OP_MUX2:
                a = entry[2]
                b = entry[3]
                s = changed_get(entry[4], good[entry[4]])
                out_word = ((changed_get(a, good[a]) & ~s)
                            | (changed_get(b, good[b]) & s))
            elif code == _OP_AOI21:
                out_word = ~((changed_get(entry[2], good[entry[2]])
                              & changed_get(entry[3], good[entry[3]]))
                             | changed_get(entry[4], good[entry[4]])) & mask
            elif code == _OP_OAI21:
                out_word = ~((changed_get(entry[2], good[entry[2]])
                              | changed_get(entry[3], good[entry[3]]))
                             & changed_get(entry[4], good[entry[4]])) & mask
            elif code == _OP_AND3:
                out_word = (changed_get(entry[2], good[entry[2]])
                            & changed_get(entry[3], good[entry[3]])
                            & changed_get(entry[4], good[entry[4]]))
            elif code == _OP_OR3:
                out_word = (changed_get(entry[2], good[entry[2]])
                            | changed_get(entry[3], good[entry[3]])
                            | changed_get(entry[4], good[entry[4]]))
            elif code == _OP_NAND3:
                out_word = ~(changed_get(entry[2], good[entry[2]])
                             & changed_get(entry[3], good[entry[3]])
                             & changed_get(entry[4], good[entry[4]])) & mask
            elif code == _OP_NOR3:
                out_word = ~(changed_get(entry[2], good[entry[2]])
                             | changed_get(entry[3], good[entry[3]])
                             | changed_get(entry[4], good[entry[4]])) & mask
            elif code == _OP_XOR3:
                out_word = (changed_get(entry[2], good[entry[2]])
                            ^ changed_get(entry[3], good[entry[3]])
                            ^ changed_get(entry[4], good[entry[4]]))
            elif code == _OP_XNOR3:
                out_word = ~(changed_get(entry[2], good[entry[2]])
                             ^ changed_get(entry[3], good[entry[3]])
                             ^ changed_get(entry[4], good[entry[4]])) & mask
            else:
                out_word = entry[2](
                    [changed_get(i, good[i]) for i in entry[3]], mask)
            current = changed_get(out, good[out])
            if out_word == current:
                # If it converged back to the good value, forget the entry.
                if out in changed and out_word == good[out]:
                    del changed[out]
                continue
            changed[out] = out_word
            for dependent in users[out]:
                if dependent not in queued:
                    queued.add(dependent)
                    heapq.heappush(heap, dependent)

        instrument.count("sim.propagate_events", events)
        detect = 0
        observed = self.observed
        for nid, word in changed.items():
            if nid in observed:
                detect |= (word ^ good[nid])
        return detect & mask
