"""Compiled combinational circuit and packed-pattern simulation.

``CompiledCircuit`` lowers a :class:`~repro.dft.testview.TestView` to
flat arrays: net ids, a topologically ordered gate list, per-net fanout
(gate users), source bindings (input columns, constants, X-ties) and
observation nets. Simulation packs many patterns into one Python
big-int per net, so a single ``&``/``|``/``^`` evaluates the gate for
the whole block in C.

Faulty-machine propagation is event-driven and cone-limited: only the
fan-out cone of the fault site is re-evaluated, in topological order,
against the cached good-machine values — the standard PPSFP scheme.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.dft.testview import TestView
from repro.netlist.library import LOGIC_FUNCTIONS
from repro.util.errors import AtpgError


@dataclass
class _Gate:
    """One compiled gate."""

    index: int
    name: str
    op: Callable[[Sequence[int], int], int]
    op_name: str
    out: int  # net id
    ins: Tuple[int, ...]  # net ids in cell pin order


class CompiledCircuit:
    """A test view lowered to simulation arrays."""

    def __init__(self, view: TestView) -> None:
        self.view = view
        netlist = view.netlist

        self.net_ids: Dict[str, int] = {}
        self.net_names: List[str] = []
        for name in netlist.nets:
            self.net_ids[name] = len(self.net_names)
            self.net_names.append(name)
        n_nets = len(self.net_names)

        # Source bindings.
        self.input_columns: List[int] = []  # net ids, column order
        seen: Set[int] = set()
        for net in view.control_nets:
            nid = self.net_ids[net]
            if nid not in seen:
                seen.add(nid)
                self.input_columns.append(nid)
        self.constant_nets: Dict[int, int] = {
            self.net_ids[net]: value for net, value in view.constant_nets.items()
        }
        self.x_net_ids: Set[int] = {self.net_ids[n] for n in view.x_nets
                                    if n in self.net_ids}

        # Observations (dedup by net).
        self.observe_ids: List[int] = []
        obs_seen: Set[int] = set()
        for _label, net in view.observe_nets:
            nid = self.net_ids[net]
            if nid not in obs_seen:
                obs_seen.add(nid)
                self.observe_ids.append(nid)
        self.observed: Set[int] = obs_seen

        # Gates in topological order.
        from repro.netlist.topology import topological_instances

        self.gates: List[_Gate] = []
        self.gate_of_net: Dict[int, int] = {}  # out net id -> gate index
        for name in topological_instances(netlist):
            inst = netlist.instance(name)
            out_net = inst.output_net()
            if out_net is None:
                continue
            in_ids = tuple(
                self.net_ids[inst.connections[pin.name]]
                for pin in inst.cell.input_pins
                if pin.name not in ("CK", "SE", "SI")
                and pin.name in inst.connections
            )
            gate = _Gate(
                index=len(self.gates),
                name=name,
                op=LOGIC_FUNCTIONS[inst.cell.function],
                op_name=inst.cell.function,
                out=self.net_ids[out_net],
                ins=in_ids,
            )
            self.gates.append(gate)
            self.gate_of_net[gate.out] = gate.index
        self.gate_index_by_name: Dict[str, int] = {
            g.name: g.index for g in self.gates
        }

        # Per-net gate users (for event-driven propagation).
        self.gate_users: List[List[int]] = [[] for _ in range(n_nets)]
        for gate in self.gates:
            for nid in gate.ins:
                self.gate_users[nid].append(gate.index)

        self.n_nets = n_nets

    # ------------------------------------------------------------------
    @property
    def input_count(self) -> int:
        return len(self.input_columns)

    def column_of_net(self, net_name: str) -> Optional[int]:
        """Input column index of a control net (None if not a control)."""
        nid = self.net_ids.get(net_name)
        if nid is None:
            return None
        try:
            return self.input_columns.index(nid)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    def simulate(self, input_words: Sequence[int], mask: int) -> List[int]:
        """Good-machine simulation of one pattern block.

        *input_words* has one packed word per input column; bit *k* of
        a word is the value of that input in pattern *k*.
        """
        if len(input_words) != len(self.input_columns):
            raise AtpgError(
                f"expected {len(self.input_columns)} input words, "
                f"got {len(input_words)}"
            )
        values = [0] * self.n_nets
        for nid, word in zip(self.input_columns, input_words):
            values[nid] = word & mask
        for nid, constant in self.constant_nets.items():
            values[nid] = mask if constant else 0
        # X-source nets stay tied to 0.
        for gate in self.gates:
            values[gate.out] = gate.op([values[i] for i in gate.ins], mask)
        return values

    # ------------------------------------------------------------------
    def propagate_stem(self, good: List[int], net_id: int, value: int,
                       mask: int) -> int:
        """Detection word of a stem stuck-at fault (value 0/1)."""
        forced = mask if value else 0
        if forced == (good[net_id] & mask):
            return 0  # never activated
        return self._propagate(good, {net_id: forced}, mask)

    def propagate_branch(self, good: List[int], gate_index: int,
                         pin_position: int, value: int, mask: int) -> int:
        """Detection word of a branch (gate input pin) stuck-at fault."""
        gate = self.gates[gate_index]
        ins = [good[i] for i in gate.ins]
        ins[pin_position] = mask if value else 0
        out_word = gate.op(ins, mask)
        if out_word == good[gate.out]:
            return 0
        return self._propagate(good, {gate.out: out_word}, mask)

    def observation_diff(self, good: List[int], net_id: int, value: int,
                         mask: int) -> int:
        """Detection word of a fault on a pin feeding an observation
        point directly (activation equals detection)."""
        forced = mask if value else 0
        return (good[net_id] ^ forced) & mask

    # ------------------------------------------------------------------
    def propagate_values(self, good: List[int], changed: Dict[int, int],
                         mask: int) -> Dict[int, int]:
        """Event-driven propagation of *changed* net values against the
        *good* baseline; returns the final changed-net map (mutates and
        returns the passed dict). Used for fault effects and for
        what-if analyses (tied inputs, aliased observations)."""
        self._propagate(good, changed, mask)
        return changed

    def observation_diffs(self, good: List[int], changed: Dict[int, int]
                          ) -> Dict[int, int]:
        """Per-observation-net difference words for a changed-map."""
        diffs: Dict[int, int] = {}
        for nid in self.observe_ids:
            if nid in changed:
                word = changed[nid] ^ good[nid]
                if word:
                    diffs[nid] = word
        return diffs

    def _propagate(self, good: List[int], changed: Dict[int, int],
                   mask: int) -> int:
        """Event-driven faulty propagation; returns the detection word."""
        heap: List[int] = []
        queued: Set[int] = set()
        for nid in changed:
            for gi in self.gate_users[nid]:
                if gi not in queued:
                    queued.add(gi)
                    heapq.heappush(heap, gi)

        gates = self.gates
        users = self.gate_users
        while heap:
            gi = heapq.heappop(heap)
            gate = gates[gi]
            ins = [changed.get(i, good[i]) for i in gate.ins]
            out_word = gate.op(ins, mask)
            current = changed.get(gate.out, good[gate.out])
            if out_word == current:
                # If it converged back to the good value, forget the entry.
                if gate.out in changed and out_word == good[gate.out]:
                    del changed[gate.out]
                continue
            changed[gate.out] = out_word
            for dependent in users[gate.out]:
                if dependent not in queued:
                    queued.add(dependent)
                    heapq.heappush(heap, dependent)

        detect = 0
        observed = self.observed
        for nid, word in changed.items():
            if nid in observed:
                detect |= (word ^ good[nid])
        return detect & mask
