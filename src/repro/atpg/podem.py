"""PODEM deterministic test generation (5-valued D-calculus).

Implements the classic PODEM search: objectives are activated/backtraced
to primary-input (scan-cell) assignments, implications run forward over
a per-fault *slice* of the circuit (the fan-in closure of the fault's
fan-out cone), and the search backtracks through the PI decision stack.
Good and faulty machines are simulated together in 3-valued logic; a
discrepancy (D/D̄) reaching an observation net is success.

The slice restriction is what keeps PODEM usable from pure Python: a
bounded-depth die has slices of a few hundred gates regardless of die
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.faults import Fault, FaultKind, Polarity
from repro.atpg.sim import CompiledCircuit
from repro.util.errors import AtpgError

X = 2  # unknown in 3-valued logic


def _and3(vals: Sequence[int]) -> int:
    out = 1
    for v in vals:
        if v == 0:
            return 0
        if v == X:
            out = X
    return out


def _or3(vals: Sequence[int]) -> int:
    out = 0
    for v in vals:
        if v == 1:
            return 1
        if v == X:
            out = X
    return out


def _not3(v: int) -> int:
    return X if v == X else 1 - v


def _xor3(vals: Sequence[int]) -> int:
    out = 0
    for v in vals:
        if v == X:
            return X
        out ^= v
    return out


def _eval3(op_name: str, vals: Sequence[int]) -> int:
    if op_name == "and":
        return _and3(vals)
    if op_name == "nand":
        return _not3(_and3(vals))
    if op_name == "or":
        return _or3(vals)
    if op_name == "nor":
        return _not3(_or3(vals))
    if op_name == "inv":
        return _not3(vals[0])
    if op_name == "buf":
        return vals[0]
    if op_name == "xor":
        return _xor3(vals)
    if op_name == "xnor":
        return _not3(_xor3(vals))
    if op_name == "mux2":
        a, b, s = vals
        if s == 0:
            return a
        if s == 1:
            return b
        return a if (a == b and a != X) else X
    if op_name == "aoi21":
        a1, a2, b = vals
        return _not3(_or3([_and3([a1, a2]), b]))
    if op_name == "oai21":
        a1, a2, b = vals
        return _not3(_and3([_or3([a1, a2]), b]))
    raise AtpgError(f"no 3-valued model for {op_name}")


#: preferred side-input value that does NOT force the gate's output
_NONCONTROLLING = {
    "and": 1, "nand": 1, "or": 0, "nor": 0,
    "xor": 0, "xnor": 0, "buf": 1, "inv": 1,
    "mux2": 0, "aoi21": 0, "oai21": 1,
}

#: whether the path through the gate inverts (backtrace parity)
_INVERTING = {
    "and": False, "nand": True, "or": False, "nor": True,
    "xor": False, "xnor": True, "buf": False, "inv": True,
    "mux2": False, "aoi21": True, "oai21": True,
}


@dataclass
class PodemOutcome:
    """Result of one PODEM run."""

    status: str  # "detected" | "untestable" | "aborted"
    #: control-net assignments (net id -> 0/1), unassigned = don't-care
    assignment: Dict[int, int]
    backtracks: int


class PodemGenerator:
    """PODEM bound to one compiled circuit."""

    def __init__(self, circuit: CompiledCircuit,
                 backtrack_limit: int = 64) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._control: Set[int] = set(circuit.input_columns)
        self._slice_cache: Dict[Tuple[str, str, str], Tuple[List[int], bool]] = {}
        #: flat (op_name, out, ins) per gate — the 3-valued implication
        #: loop reads these instead of walking the gate dataclass
        self._specs: List[Tuple[str, int, Tuple[int, ...]]] = [
            (g.op_name, g.out, g.ins) for g in circuit.gates
        ]
        self._cc0, self._cc1 = self._scoap()

    # ------------------------------------------------------------------
    def _scoap(self) -> Tuple[List[int], List[int]]:
        """SCOAP combinational 0/1-controllabilities per net."""
        circuit = self.circuit
        big = 10 ** 9
        cc0 = [big] * circuit.n_nets
        cc1 = [big] * circuit.n_nets
        for nid in circuit.input_columns:
            cc0[nid] = cc1[nid] = 1
        for nid, const in circuit.constant_nets.items():
            if const:
                cc1[nid], cc0[nid] = 0, big
            else:
                cc0[nid], cc1[nid] = 0, big
        for nid in circuit.x_net_ids:
            cc0[nid], cc1[nid] = 0, big  # tied low pre-bond

        def cap(value: int) -> int:
            return min(value, big)

        for gate in circuit.gates:
            ins = gate.ins
            op = gate.op_name
            z0 = [cc0[i] for i in ins]
            z1 = [cc1[i] for i in ins]
            if op in ("and", "nand"):
                all1 = cap(sum(z1) + 1)
                any0 = cap(min(z0) + 1)
                out1, out0 = (any0, all1) if op == "nand" else (all1, any0)
            elif op in ("or", "nor"):
                any1 = cap(min(z1) + 1)
                all0 = cap(sum(z0) + 1)
                out1, out0 = (all0, any1) if op == "nor" else (any1, all0)
            elif op == "inv":
                out1, out0 = cap(z0[0] + 1), cap(z1[0] + 1)
            elif op == "buf":
                out1, out0 = cap(z1[0] + 1), cap(z0[0] + 1)
            elif op in ("xor", "xnor"):
                a0, b0 = z0[0], z0[1]
                a1, b1 = z1[0], z1[1]
                odd = cap(min(a1 + b0, a0 + b1) + 1)
                even = cap(min(a0 + b0, a1 + b1) + 1)
                out1, out0 = (even, odd) if op == "xnor" else (odd, even)
            elif op == "mux2":
                a0, b0, s0 = z0
                a1, b1, s1 = z1
                out1 = cap(min(s0 + a1, s1 + b1) + 1)
                out0 = cap(min(s0 + a0, s1 + b0) + 1)
            elif op == "aoi21":
                a10, a20, b0 = z0
                a11, a21, b1 = z1
                out1 = cap(b0 + min(a10, a20) + 1)
                out0 = cap(min(b1, a11 + a21) + 1)
            elif op == "oai21":
                a10, a20, b0 = z0
                a11, a21, b1 = z1
                out1 = cap(min(b0, a10 + a20) + 1)
                out0 = cap(b1 + min(a11, a21) + 1)
            else:
                out1 = out0 = big
            cc0[gate.out] = out0
            cc1[gate.out] = out1
        return cc0, cc1

    # ------------------------------------------------------------------
    def _slice_for(self, fault: Fault) -> Tuple[List[int], bool]:
        """Gate indices of the fault's slice (topo order) and whether
        any observation net is reachable."""
        key = (fault.net, fault.owner, fault.pin)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached

        circuit = self.circuit
        site_net = circuit.net_ids[fault.net]

        # Forward cone.
        cone_gates: Set[int] = set()
        frontier = [site_net]
        seen_nets = {site_net}
        observes_reachable = site_net in circuit.observed
        if fault.kind is FaultKind.BRANCH:
            # Only the one sink gate sees the fault initially.
            start_gates = [g for g in circuit.gate_users[site_net]
                           if circuit.gates[g].name == fault.owner]
        else:
            start_gates = list(circuit.gate_users[site_net])
        work = list(start_gates)
        while work:
            gi = work.pop()
            if gi in cone_gates:
                continue
            cone_gates.add(gi)
            out = self.circuit.gates[gi].out
            if out in circuit.observed:
                observes_reachable = True
            if out not in seen_nets:
                seen_nets.add(out)
                work.extend(circuit.gate_users[out])

        # Fan-in closure (side inputs must be justifiable).
        closure: Set[int] = set(cone_gates)
        work = list(cone_gates)
        # The site itself must be justifiable too.
        driver = circuit.gate_of_net.get(site_net)
        if driver is not None:
            work.append(driver)
            closure.add(driver)
        while work:
            gi = work.pop()
            for nid in circuit.gates[gi].ins:
                drv = circuit.gate_of_net.get(nid)
                if drv is not None and drv not in closure:
                    closure.add(drv)
                    work.append(drv)

        ordered = sorted(closure)
        result = (ordered, observes_reachable)
        self._slice_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def run(self, fault: Fault) -> PodemOutcome:
        """Attempt to generate a test for *fault*."""
        circuit = self.circuit
        slice_gates, observable = self._slice_for(fault)
        if not observable and fault.kind is not FaultKind.OBS_BRANCH:
            return PodemOutcome("untestable", {}, 0)

        site_net = circuit.net_ids[fault.net]
        stuck = int(fault.polarity)

        if fault.kind is FaultKind.OBS_BRANCH:
            # Activation is detection: justify site = ¬stuck.
            return self.justify(site_net, 1 - stuck, slice_gates)

        branch_gate: Optional[int] = None
        branch_pos: Optional[int] = None
        if fault.kind is FaultKind.BRANCH:
            for gi in circuit.gate_users[site_net]:
                gate = circuit.gates[gi]
                if gate.name == fault.owner:
                    branch_gate = gi
                    positions = [k for k, nid in enumerate(gate.ins)
                                 if nid == site_net]
                    branch_pos = positions[0]
                    break
            if branch_gate is None:
                return PodemOutcome("untestable", {}, 0)

        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []  # (net, value, flipped)
        backtracks = 0

        while True:
            gv, fv = self._imply(slice_gates, assignment, site_net, stuck,
                                 branch_gate, branch_pos)
            status = self._check(gv, fv, site_net, stuck)
            if status == "detected":
                return PodemOutcome("detected", dict(assignment), backtracks)

            objective = None
            if status != "conflict":
                objective = self._objective(gv, fv, site_net, stuck,
                                            slice_gates, branch_gate,
                                            branch_pos)
            if objective is None:
                # Backtrack.
                while decisions:
                    net, value, flipped = decisions.pop()
                    del assignment[net]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemOutcome("aborted", {}, backtracks)
                        decisions.append((net, 1 - value, True))
                        assignment[net] = 1 - value
                        break
                else:
                    return PodemOutcome("untestable", {}, backtracks)
                continue

            pi_net, pi_value = self._backtrace(objective[0], objective[1], gv)
            if pi_net is None:
                # No X-path to a control input: treat as conflict.
                while decisions:
                    net, value, flipped = decisions.pop()
                    del assignment[net]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemOutcome("aborted", {}, backtracks)
                        decisions.append((net, 1 - value, True))
                        assignment[net] = 1 - value
                        break
                else:
                    return PodemOutcome("untestable", {}, backtracks)
                continue

            decisions.append((pi_net, pi_value, False))
            assignment[pi_net] = pi_value

    # ------------------------------------------------------------------
    def justify(self, net_id: int, value: int,
                slice_gates: Optional[List[int]] = None) -> PodemOutcome:
        """Justification-only search: make *net_id* take *value*.

        Used for OBS_BRANCH faults and transition-launch conditions.
        """
        circuit = self.circuit
        if slice_gates is None:
            # Fan-in closure of the net.
            closure: Set[int] = set()
            work = []
            driver = circuit.gate_of_net.get(net_id)
            if driver is not None:
                work.append(driver)
                closure.add(driver)
            while work:
                gi = work.pop()
                for nid in circuit.gates[gi].ins:
                    drv = circuit.gate_of_net.get(nid)
                    if drv is not None and drv not in closure:
                        closure.add(drv)
                        work.append(drv)
            slice_gates = sorted(closure)

        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []
        backtracks = 0
        while True:
            gv, _fv = self._imply(slice_gates, assignment, None, 0, None, None)
            if gv.get(net_id, X) == value:
                return PodemOutcome("detected", dict(assignment), backtracks)
            if gv.get(net_id, X) == 1 - value:
                objective = None  # conflict
            else:
                objective = (net_id, value)

            if objective is not None:
                pi_net, pi_value = self._backtrace(objective[0], objective[1], gv)
                if pi_net is not None:
                    decisions.append((pi_net, pi_value, False))
                    assignment[pi_net] = pi_value
                    continue

            while decisions:
                net, val, flipped = decisions.pop()
                del assignment[net]
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemOutcome("aborted", {}, backtracks)
                    decisions.append((net, 1 - val, True))
                    assignment[net] = 1 - val
                    break
            else:
                return PodemOutcome("untestable", {}, backtracks)

    # ------------------------------------------------------------------
    def _imply(self, slice_gates: List[int], assignment: Dict[int, int],
               site_net: Optional[int], stuck: int,
               branch_gate: Optional[int], branch_pos: Optional[int]
               ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """3-valued forward simulation of good (gv) and faulty (fv)
        machines over the slice."""
        circuit = self.circuit
        gv: Dict[int, int] = {}
        fv: Dict[int, int] = {}

        def source_value(nid: int) -> int:
            if nid in assignment:
                return assignment[nid]
            const = circuit.constant_nets.get(nid)
            if const is not None:
                return const
            if nid in circuit.x_net_ids:
                return 0  # tied, consistent with packed simulation
            if nid in self._control:
                return X
            return X

        def get(machine: Dict[int, int], nid: int) -> int:
            if nid in machine:
                return machine[nid]
            value = source_value(nid)
            machine[nid] = value
            return value

        # A stem fault on a source net (FF Q, PI) must be injected before
        # any gate reads it; a stem on a gate output is injected right
        # after that gate evaluates (inside the loop).
        if site_net is not None and branch_gate is None \
                and circuit.gate_of_net.get(site_net) is None:
            get(gv, site_net)
            fv[site_net] = stuck

        specs = self._specs
        for gi in slice_gates:
            op_name, out, ins = specs[gi]
            g_ins = [get(gv, nid) for nid in ins]
            gv[out] = _eval3(op_name, g_ins)

            if branch_gate is not None and gi == branch_gate:
                f_ins = [get(fv, nid) for nid in ins]
                f_ins[branch_pos] = stuck
                fv[out] = _eval3(op_name, f_ins)
            else:
                f_ins = [get(fv, nid) for nid in ins]
                fv[out] = _eval3(op_name, f_ins)
            if site_net is not None and branch_gate is None \
                    and out == site_net:
                fv[site_net] = stuck

        return gv, fv

    # ------------------------------------------------------------------
    def _check(self, gv: Dict[int, int], fv: Dict[int, int],
               site_net: int, stuck: int) -> str:
        """'detected', 'conflict' or 'open'."""
        site_g = gv.get(site_net, X)
        if site_g == stuck:
            return "conflict"  # can never be activated under assignment
        for nid in self.circuit.observed:
            a, b = gv.get(nid, X), fv.get(nid, X)
            if a != X and b != X and a != b:
                return "detected"
        return "open"

    def _objective(self, gv: Dict[int, int], fv: Dict[int, int],
                   site_net: int, stuck: int, slice_gates: List[int],
                   branch_gate: Optional[int] = None,
                   branch_pos: Optional[int] = None
                   ) -> Optional[Tuple[int, int]]:
        site_g = gv.get(site_net, X)
        if site_g == X:
            return (site_net, 1 - stuck)  # activate

        # D-frontier: gate with a D/D̄ input whose output is not yet
        # resolved in at least one machine (composite value unknown).
        # For a branch fault the D̄ sits on the faulted *pin* of the
        # branch gate, which net-level values cannot show.
        specs = self._specs
        for gi in slice_gates:
            op_name, out, ins = specs[gi]
            if gv.get(out, X) != X and fv.get(out, X) != X:
                continue
            if branch_gate is not None and gi == branch_gate:
                has_d = site_g != X and site_g != stuck
            else:
                has_d = any(
                    gv.get(nid, X) != X and fv.get(nid, X) != X
                    and gv.get(nid) != fv.get(nid)
                    for nid in ins
                )
            if not has_d:
                continue
            for pos, nid in enumerate(ins):
                if branch_gate is not None and gi == branch_gate                         and pos == branch_pos:
                    continue  # the faulted pin is not a side input
                if gv.get(nid, X) == X:
                    return (nid, _NONCONTROLLING[op_name])
        return None

    def _backtrace(self, net_id: int, value: int,
                   gv: Dict[int, int]) -> Tuple[Optional[int], int]:
        """Walk an X-path from the objective back to a control net.

        Uses SCOAP guidance: "any input suffices" objectives descend
        into the cheapest X input, "all inputs required" objectives
        into the hardest one — the textbook backtrace policy.
        """
        circuit = self.circuit
        cc0, cc1 = self._cc0, self._cc1
        current, target = net_id, value
        for _ in range(100000):  # cycle-free by construction
            if current in self._control:
                return current, target
            driver = circuit.gate_of_net.get(current)
            if driver is None:
                return None, 0  # constant / X-tie: cannot justify
            gate = circuit.gates[driver]
            x_inputs = [nid for nid in gate.ins if gv.get(nid, X) == X]
            if not x_inputs:
                return None, 0
            step = self._backtrace_step(gate, target, x_inputs, gv)
            if step is None:
                return None, 0
            current, target = step
        return None, 0

    def _backtrace_step(self, gate, target: int, x_inputs: List[int],
                        gv: Dict[int, int]) -> Optional[Tuple[int, int]]:
        cc0, cc1 = self._cc0, self._cc1
        op = gate.op_name

        def easiest(value: int) -> int:
            table = cc1 if value else cc0
            return min(x_inputs, key=lambda n: table[n])

        def hardest(value: int) -> int:
            table = cc1 if value else cc0
            return max(x_inputs, key=lambda n: table[n])

        if op in ("buf", "inv"):
            flip = op == "inv"
            return (x_inputs[0], 1 - target if flip else target)
        if op in ("and", "nand"):
            out_all1 = target if op == "and" else 1 - target
            if out_all1:  # need every input 1
                return (hardest(1), 1)
            return (easiest(0), 0)  # any input 0 suffices
        if op in ("or", "nor"):
            out_any1 = target if op == "or" else 1 - target
            if out_any1:
                return (easiest(1), 1)
            return (hardest(0), 0)
        if op in ("xor", "xnor"):
            parity = 0
            for nid in gate.ins:
                v = gv.get(nid, X)
                if v != X and nid not in x_inputs:
                    parity ^= v
            want = target if op == "xor" else 1 - target
            chosen = x_inputs[0]
            # Assume the other X inputs resolve to 0.
            return (chosen, want ^ parity)
        if op == "mux2":
            a, b, s = gate.ins
            a_v, b_v, s_v = gv.get(a, X), gv.get(b, X), gv.get(s, X)
            if s_v == 0 and a in x_inputs:
                return (a, target)
            if s_v == 1 and b in x_inputs:
                return (b, target)
            if s_v == X:
                # Choose the side whose data already matches, else side A.
                if a_v == target or (a in x_inputs and b_v != target):
                    return (s, 0) if s in x_inputs else (a, target)
                return (s, 1) if s in x_inputs else ((b, target)
                                                     if b in x_inputs else None)
            return None
        if op in ("aoi21", "oai21"):
            a1, a2, b = gate.ins
            inner_and = op == "aoi21"
            need = 1 - target  # value of the inner (pre-inversion) term
            # aoi: out = !((a1&a2)|b); oai: out = !((a1|a2)&b)
            if op == "aoi21":
                if need:  # (a1&a2)|b must be 1: easiest of b=1 / a1=a2=1
                    if b in x_inputs and (cc1[b] <= cc1[a1] + cc1[a2]
                                          or a1 not in x_inputs
                                          and a2 not in x_inputs):
                        return (b, 1)
                    for nid in (a1, a2):
                        if nid in x_inputs:
                            return (nid, 1)
                    return (b, 1) if b in x_inputs else None
                # (a1&a2)|b must be 0: b=0 and one of a1/a2 = 0
                if b in x_inputs:
                    return (b, 0)
                for nid in sorted((a1, a2), key=lambda n: cc0[n]):
                    if nid in x_inputs:
                        return (nid, 0)
                return None
            # oai21: inner = (a1|a2)&b
            if need:  # inner 1: b=1 and one of a1/a2 = 1
                if b in x_inputs:
                    return (b, 1)
                for nid in sorted((a1, a2), key=lambda n: cc1[n]):
                    if nid in x_inputs:
                        return (nid, 1)
                return None
            # inner 0: b=0 or both a1,a2 = 0
            if b in x_inputs and (cc0[b] <= cc0[a1] + cc0[a2]
                                  or (a1 not in x_inputs
                                      and a2 not in x_inputs)):
                return (b, 0)
            for nid in (a1, a2):
                if nid in x_inputs:
                    return (nid, 0)
            return (b, 0) if b in x_inputs else None
        return (x_inputs[0], target)
