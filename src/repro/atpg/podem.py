"""PODEM deterministic test generation (5-valued D-calculus).

Implements the classic PODEM search: objectives are activated/backtraced
to primary-input (scan-cell) assignments, implications run forward over
a per-fault *slice* of the circuit (the fan-in closure of the fault's
fan-out cone), and the search backtracks through the PI decision stack.
Good and faulty machines are simulated together in 3-valued logic; a
discrepancy (D/D̄) reaching an observation net is success.

The slice restriction is what keeps PODEM usable from pure Python: a
bounded-depth die has slices of a few hundred gates regardless of die
size.

Two implication engines implement the identical search:

* the **reference** engine — from-scratch 3-valued simulation of the
  whole slice per implication (dict-based, the original code path);
* the **incremental** engine — persistent per-net value arrays, an
  undo trail per decision, and event-driven re-evaluation of only the
  gates a primary-input change can reach. Selected by the ``numpy``
  kernel backend (:mod:`repro.runtime.backend`); it carries the ATPG
  5x at bench scale. It holds no numpy state itself — implication is
  scalar by nature — but it ships with the numpy backend so the
  default backend stays byte-stable code.

Both must return bit-identical :class:`PodemOutcome` values, including
the backtrack count: every sub-result (implied values, D-frontier
choice, SCOAP backtrace step) is a pure function of the current
assignment, so replaying the same decisions yields the same search.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.faults import Fault, FaultKind, Polarity
from repro.atpg.sim import CompiledCircuit
from repro.util.errors import AtpgError

X = 2  # unknown in 3-valued logic


def _and3(vals: Sequence[int]) -> int:
    out = 1
    for v in vals:
        if v == 0:
            return 0
        if v == X:
            out = X
    return out


def _or3(vals: Sequence[int]) -> int:
    out = 0
    for v in vals:
        if v == 1:
            return 1
        if v == X:
            out = X
    return out


def _not3(v: int) -> int:
    return X if v == X else 1 - v


def _xor3(vals: Sequence[int]) -> int:
    out = 0
    for v in vals:
        if v == X:
            return X
        out ^= v
    return out


def _eval3(op_name: str, vals: Sequence[int]) -> int:
    if op_name == "and":
        return _and3(vals)
    if op_name == "nand":
        return _not3(_and3(vals))
    if op_name == "or":
        return _or3(vals)
    if op_name == "nor":
        return _not3(_or3(vals))
    if op_name == "inv":
        return _not3(vals[0])
    if op_name == "buf":
        return vals[0]
    if op_name == "xor":
        return _xor3(vals)
    if op_name == "xnor":
        return _not3(_xor3(vals))
    if op_name == "mux2":
        a, b, s = vals
        if s == 0:
            return a
        if s == 1:
            return b
        return a if (a == b and a != X) else X
    if op_name == "aoi21":
        a1, a2, b = vals
        return _not3(_or3([_and3([a1, a2]), b]))
    if op_name == "oai21":
        a1, a2, b = vals
        return _not3(_and3([_or3([a1, a2]), b]))
    raise AtpgError(f"no 3-valued model for {op_name}")


# Small-int op codes for the incremental engine: string dispatch is the
# single biggest cost of `_eval3` in the implication loop.
_C_BUF, _C_INV, _C_AND, _C_NAND, _C_OR, _C_NOR = 0, 1, 2, 3, 4, 5
_C_XOR, _C_XNOR, _C_MUX2, _C_AOI21, _C_OAI21 = 6, 7, 8, 9, 10

_OP3_CODES = {
    "buf": _C_BUF, "inv": _C_INV, "and": _C_AND, "nand": _C_NAND,
    "or": _C_OR, "nor": _C_NOR, "xor": _C_XOR, "xnor": _C_XNOR,
    "mux2": _C_MUX2, "aoi21": _C_AOI21, "oai21": _C_OAI21,
}


def _eval3_code(code: int, vals: Sequence[int]) -> int:
    """Exact mirror of :func:`_eval3` over small-int op codes."""
    if code == _C_AND or code == _C_NAND:
        out = 1
        for v in vals:
            if v == 0:
                out = 0
                break
            if v == 2:
                out = 2
        if code == _C_NAND and out != 2:
            out = 1 - out
        return out
    if code == _C_OR or code == _C_NOR:
        out = 0
        for v in vals:
            if v == 1:
                out = 1
                break
            if v == 2:
                out = 2
        if code == _C_NOR and out != 2:
            out = 1 - out
        return out
    if code == _C_INV:
        v = vals[0]
        return 2 if v == 2 else 1 - v
    if code == _C_BUF:
        return vals[0]
    if code == _C_XOR or code == _C_XNOR:
        out = 0
        for v in vals:
            if v == 2:
                return 2
            out ^= v
        if code == _C_XNOR:
            out = 1 - out
        return out
    if code == _C_MUX2:
        a, b, s = vals
        if s == 0:
            return a
        if s == 1:
            return b
        return a if (a == b and a != 2) else 2
    if code == _C_AOI21:
        a1, a2, b = vals
        return _not3(_or3((_and3((a1, a2)), b)))
    # _C_OAI21
    a1, a2, b = vals
    return _not3(_and3((_or3((a1, a2)), b)))


def _eval3_arr(code: int, ins: Sequence[int], values: List[int]) -> int:
    """:func:`_eval3_code` reading operands straight from a per-net
    value array — the incremental engine's hot path allocates no
    intermediate operand list."""
    if code == _C_AND or code == _C_NAND:
        out = 1
        for n in ins:
            v = values[n]
            if v == 0:
                out = 0
                break
            if v == 2:
                out = 2
        if code == _C_NAND and out != 2:
            out = 1 - out
        return out
    if code == _C_OR or code == _C_NOR:
        out = 0
        for n in ins:
            v = values[n]
            if v == 1:
                out = 1
                break
            if v == 2:
                out = 2
        if code == _C_NOR and out != 2:
            out = 1 - out
        return out
    if code == _C_INV:
        v = values[ins[0]]
        return 2 if v == 2 else 1 - v
    if code == _C_BUF:
        return values[ins[0]]
    if code == _C_XOR or code == _C_XNOR:
        out = 0
        for n in ins:
            v = values[n]
            if v == 2:
                return 2
            out ^= v
        if code == _C_XNOR:
            out = 1 - out
        return out
    if code == _C_MUX2:
        s = values[ins[2]]
        if s == 0:
            return values[ins[0]]
        if s == 1:
            return values[ins[1]]
        a, b = values[ins[0]], values[ins[1]]
        return a if (a == b and a != 2) else 2
    if code == _C_AOI21:
        a1, a2, b = values[ins[0]], values[ins[1]], values[ins[2]]
        if a1 == 0 or a2 == 0:
            inner = 0
        elif a1 == 2 or a2 == 2:
            inner = 2
        else:
            inner = 1
        if inner == 1 or b == 1:
            return 0
        if inner == 2 or b == 2:
            return 2
        return 1
    if code == _C_OAI21:
        a1, a2, b = values[ins[0]], values[ins[1]], values[ins[2]]
        if a1 == 1 or a2 == 1:
            inner = 1
        elif a1 == 2 or a2 == 2:
            inner = 2
        else:
            inner = 0
        if inner == 0 or b == 0:
            return 1
        if inner == 2 or b == 2:
            return 2
        return 0
    return _eval3_code(code, [values[n] for n in ins])


class _ArrayView:
    """Adapter exposing a value array through the ``gv.get(nid, X)``
    protocol `_backtrace` speaks, so both engines share the exact SCOAP
    backtrace code. Every net the backtrace can reach is defined in the
    array (unset entries hold X), matching the dict default."""

    __slots__ = ("data",)

    def __init__(self, data: List[int]) -> None:
        self.data = data

    def get(self, nid: int, default: int = X) -> int:
        return self.data[nid]


class _FastSlice:
    """Per-fault-slice structures for the incremental engine."""

    __slots__ = ("supported", "observable", "slice_gates", "gates",
                 "sources", "cone", "check_nets", "branch_gate",
                 "branch_pos", "site_is_source", "base", "base_nids")

    def __init__(self) -> None:
        self.supported = True
        self.observable = False
        self.slice_gates: List[int] = []
        #: (gi, code, out, ins) in slice (topological) order
        self.gates: List[Tuple[int, int, int, Tuple[int, ...]]] = []
        #: (net id, base value) for every slice source net
        self.sources: List[Tuple[int, int]] = []
        #: cone gates (gi, op_name, out, ins) in slice order, for the
        #: D-frontier scan
        self.cone: List[Tuple[int, str, int, Tuple[int, ...]]] = []
        #: observed nets the faulty machine can actually differ on
        self.check_nets: Tuple[int, ...] = ()
        self.branch_gate: Optional[int] = None
        self.branch_pos: Optional[int] = None
        self.site_is_source = False
        #: decision-free machine state, keyed by injected polarity
        #: (``None`` for the justification-only, fault-free machine):
        #: (net, good, faulty) snapshots replayed instead of a full
        #: slice re-evaluation on every search
        self.base: Dict[Optional[int], List[Tuple[int, int, int]]] = {}
        #: every net the base state writes (sources + gate outputs)
        self.base_nids: List[int] = []


#: preferred side-input value that does NOT force the gate's output
_NONCONTROLLING = {
    "and": 1, "nand": 1, "or": 0, "nor": 0,
    "xor": 0, "xnor": 0, "buf": 1, "inv": 1,
    "mux2": 0, "aoi21": 0, "oai21": 1,
}

#: whether the path through the gate inverts (backtrace parity)
_INVERTING = {
    "and": False, "nand": True, "or": False, "nor": True,
    "xor": False, "xnor": True, "buf": False, "inv": True,
    "mux2": False, "aoi21": True, "oai21": True,
}


@dataclass
class PodemOutcome:
    """Result of one PODEM run."""

    status: str  # "detected" | "untestable" | "aborted"
    #: control-net assignments (net id -> 0/1), unassigned = don't-care
    assignment: Dict[int, int]
    backtracks: int


class PodemGenerator:
    """PODEM bound to one compiled circuit."""

    def __init__(self, circuit: CompiledCircuit,
                 backtrack_limit: int = 64,
                 fast: Optional[bool] = None) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self._control: Set[int] = set(circuit.input_columns)
        self._slice_cache: Dict[
            Tuple[str, str, str], Tuple[List[int], bool, List[int]]] = {}
        #: flat (op_name, out, ins) per gate — the 3-valued implication
        #: loop reads these instead of walking the gate dataclass
        self._specs: List[Tuple[str, int, Tuple[int, ...]]] = [
            (g.op_name, g.out, g.ins) for g in circuit.gates
        ]
        self._cc0, self._cc1 = self._scoap()
        if fast is None:
            from repro.runtime.backend import use_numpy
            fast = use_numpy()
        self._fast = bool(fast)
        self._fast_cache: Dict[Tuple[str, str, str], _FastSlice] = {}
        self._justify_cache: Dict[int, Optional[_FastSlice]] = {}
        # Incremental-engine state: persistent value arrays (X between
        # searches), the undo trail of (net, old good, old faulty), and
        # per-gate membership flags for the active slice / fault cone.
        self._codes: List[Optional[int]] = [
            _OP3_CODES.get(op) for op, _out, _ins in self._specs]
        #: (code, out, ins) per gate, one lookup in the propagation loop
        self._gspec: List[Tuple[Optional[int], int, Tuple[int, ...]]] = [
            (code, out, ins) for code, (_op, out, ins)
            in zip(self._codes, self._specs)]
        self._gv_arr: Optional[List[int]] = None
        self._fv_arr: Optional[List[int]] = None
        self._trail: List[Tuple[int, int, int]] = []
        self._inflag = bytearray(len(circuit.gates))
        self._conefl = bytearray(len(circuit.gates))

    # ------------------------------------------------------------------
    def _scoap(self) -> Tuple[List[int], List[int]]:
        """SCOAP combinational 0/1-controllabilities per net."""
        circuit = self.circuit
        big = 10 ** 9
        cc0 = [big] * circuit.n_nets
        cc1 = [big] * circuit.n_nets
        for nid in circuit.input_columns:
            cc0[nid] = cc1[nid] = 1
        for nid, const in circuit.constant_nets.items():
            if const:
                cc1[nid], cc0[nid] = 0, big
            else:
                cc0[nid], cc1[nid] = 0, big
        for nid in circuit.x_net_ids:
            cc0[nid], cc1[nid] = 0, big  # tied low pre-bond

        def cap(value: int) -> int:
            return min(value, big)

        for gate in circuit.gates:
            ins = gate.ins
            op = gate.op_name
            z0 = [cc0[i] for i in ins]
            z1 = [cc1[i] for i in ins]
            if op in ("and", "nand"):
                all1 = cap(sum(z1) + 1)
                any0 = cap(min(z0) + 1)
                out1, out0 = (any0, all1) if op == "nand" else (all1, any0)
            elif op in ("or", "nor"):
                any1 = cap(min(z1) + 1)
                all0 = cap(sum(z0) + 1)
                out1, out0 = (all0, any1) if op == "nor" else (any1, all0)
            elif op == "inv":
                out1, out0 = cap(z0[0] + 1), cap(z1[0] + 1)
            elif op == "buf":
                out1, out0 = cap(z1[0] + 1), cap(z0[0] + 1)
            elif op in ("xor", "xnor"):
                a0, b0 = z0[0], z0[1]
                a1, b1 = z1[0], z1[1]
                odd = cap(min(a1 + b0, a0 + b1) + 1)
                even = cap(min(a0 + b0, a1 + b1) + 1)
                out1, out0 = (even, odd) if op == "xnor" else (odd, even)
            elif op == "mux2":
                a0, b0, s0 = z0
                a1, b1, s1 = z1
                out1 = cap(min(s0 + a1, s1 + b1) + 1)
                out0 = cap(min(s0 + a0, s1 + b0) + 1)
            elif op == "aoi21":
                a10, a20, b0 = z0
                a11, a21, b1 = z1
                out1 = cap(b0 + min(a10, a20) + 1)
                out0 = cap(min(b1, a11 + a21) + 1)
            elif op == "oai21":
                a10, a20, b0 = z0
                a11, a21, b1 = z1
                out1 = cap(min(b0, a10 + a20) + 1)
                out0 = cap(b1 + min(a11, a21) + 1)
            else:
                out1 = out0 = big
            cc0[gate.out] = out0
            cc1[gate.out] = out1
        return cc0, cc1

    # ------------------------------------------------------------------
    def _slice_for(self, fault: Fault) -> Tuple[List[int], bool, List[int]]:
        """Gate indices of the fault's slice (topo order), whether any
        observation net is reachable, and the fan-out cone's gates."""
        key = (fault.net, fault.owner, fault.pin)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached

        circuit = self.circuit
        site_net = circuit.net_ids[fault.net]

        # Forward cone.
        cone_gates: Set[int] = set()
        frontier = [site_net]
        seen_nets = {site_net}
        observes_reachable = site_net in circuit.observed
        if fault.kind is FaultKind.BRANCH:
            # Only the one sink gate sees the fault initially.
            start_gates = [g for g in circuit.gate_users[site_net]
                           if circuit.gates[g].name == fault.owner]
        else:
            start_gates = list(circuit.gate_users[site_net])
        work = list(start_gates)
        while work:
            gi = work.pop()
            if gi in cone_gates:
                continue
            cone_gates.add(gi)
            out = self.circuit.gates[gi].out
            if out in circuit.observed:
                observes_reachable = True
            if out not in seen_nets:
                seen_nets.add(out)
                work.extend(circuit.gate_users[out])

        # Fan-in closure (side inputs must be justifiable).
        closure: Set[int] = set(cone_gates)
        work = list(cone_gates)
        # The site itself must be justifiable too.
        driver = circuit.gate_of_net.get(site_net)
        if driver is not None:
            work.append(driver)
            closure.add(driver)
        while work:
            gi = work.pop()
            for nid in circuit.gates[gi].ins:
                drv = circuit.gate_of_net.get(nid)
                if drv is not None and drv not in closure:
                    closure.add(drv)
                    work.append(drv)

        ordered = sorted(closure)
        result = (ordered, observes_reachable, sorted(cone_gates))
        self._slice_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def run(self, fault: Fault) -> PodemOutcome:
        """Attempt to generate a test for *fault*."""
        if self._fast:
            fs = self._fast_slice(fault)
            if fs.supported:
                return self._run_fast(fault, fs)
        return self._run_slow(fault)

    def _run_slow(self, fault: Fault) -> PodemOutcome:
        circuit = self.circuit
        slice_gates, observable, _cone = self._slice_for(fault)
        if not observable and fault.kind is not FaultKind.OBS_BRANCH:
            return PodemOutcome("untestable", {}, 0)

        site_net = circuit.net_ids[fault.net]
        stuck = int(fault.polarity)

        if fault.kind is FaultKind.OBS_BRANCH:
            # Activation is detection: justify site = ¬stuck.
            return self.justify(site_net, 1 - stuck, slice_gates)

        branch_gate: Optional[int] = None
        branch_pos: Optional[int] = None
        if fault.kind is FaultKind.BRANCH:
            for gi in circuit.gate_users[site_net]:
                gate = circuit.gates[gi]
                if gate.name == fault.owner:
                    branch_gate = gi
                    positions = [k for k, nid in enumerate(gate.ins)
                                 if nid == site_net]
                    branch_pos = positions[0]
                    break
            if branch_gate is None:
                return PodemOutcome("untestable", {}, 0)

        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []  # (net, value, flipped)
        backtracks = 0

        while True:
            gv, fv = self._imply(slice_gates, assignment, site_net, stuck,
                                 branch_gate, branch_pos)
            status = self._check(gv, fv, site_net, stuck)
            if status == "detected":
                return PodemOutcome("detected", dict(assignment), backtracks)

            objective = None
            if status != "conflict":
                objective = self._objective(gv, fv, site_net, stuck,
                                            slice_gates, branch_gate,
                                            branch_pos)
            if objective is None:
                # Backtrack.
                while decisions:
                    net, value, flipped = decisions.pop()
                    del assignment[net]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemOutcome("aborted", {}, backtracks)
                        decisions.append((net, 1 - value, True))
                        assignment[net] = 1 - value
                        break
                else:
                    return PodemOutcome("untestable", {}, backtracks)
                continue

            pi_net, pi_value = self._backtrace(objective[0], objective[1], gv)
            if pi_net is None:
                # No X-path to a control input: treat as conflict.
                while decisions:
                    net, value, flipped = decisions.pop()
                    del assignment[net]
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemOutcome("aborted", {}, backtracks)
                        decisions.append((net, 1 - value, True))
                        assignment[net] = 1 - value
                        break
                else:
                    return PodemOutcome("untestable", {}, backtracks)
                continue

            decisions.append((pi_net, pi_value, False))
            assignment[pi_net] = pi_value

    # ------------------------------------------------------------------
    def justify(self, net_id: int, value: int,
                slice_gates: Optional[List[int]] = None) -> PodemOutcome:
        """Justification-only search: make *net_id* take *value*.

        Used for OBS_BRANCH faults and transition-launch conditions.
        """
        if self._fast and slice_gates is None:
            fs = self._justify_structures(net_id)
            if fs is not None:
                return self._justify_fast(net_id, value, fs)
        return self._justify_slow(net_id, value, slice_gates)

    def _justify_slow(self, net_id: int, value: int,
                      slice_gates: Optional[List[int]] = None
                      ) -> PodemOutcome:
        circuit = self.circuit
        if slice_gates is None:
            # Fan-in closure of the net.
            closure: Set[int] = set()
            work = []
            driver = circuit.gate_of_net.get(net_id)
            if driver is not None:
                work.append(driver)
                closure.add(driver)
            while work:
                gi = work.pop()
                for nid in circuit.gates[gi].ins:
                    drv = circuit.gate_of_net.get(nid)
                    if drv is not None and drv not in closure:
                        closure.add(drv)
                        work.append(drv)
            slice_gates = sorted(closure)

        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool]] = []
        backtracks = 0
        while True:
            gv, _fv = self._imply(slice_gates, assignment, None, 0, None, None)
            if gv.get(net_id, X) == value:
                return PodemOutcome("detected", dict(assignment), backtracks)
            if gv.get(net_id, X) == 1 - value:
                objective = None  # conflict
            else:
                objective = (net_id, value)

            if objective is not None:
                pi_net, pi_value = self._backtrace(objective[0], objective[1], gv)
                if pi_net is not None:
                    decisions.append((pi_net, pi_value, False))
                    assignment[pi_net] = pi_value
                    continue

            while decisions:
                net, val, flipped = decisions.pop()
                del assignment[net]
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemOutcome("aborted", {}, backtracks)
                    decisions.append((net, 1 - val, True))
                    assignment[net] = 1 - val
                    break
            else:
                return PodemOutcome("untestable", {}, backtracks)

    # ------------------------------------------------------------------
    # Incremental implication engine (numpy-backend ATPG kernel).
    #
    # Equivalence with `_imply`/`_check`/`_objective` rests on three
    # facts: (1) implied values are a pure function of the assignment,
    # and heap-ordered event propagation over the topologically sorted
    # gate list reproduces the from-scratch evaluation exactly; (2) the
    # faulty machine can differ from the good machine only on the fault
    # site and the fan-out cone's outputs, so the detection scan and
    # the D-frontier scan may be restricted to those nets/gates; (3)
    # `_imply`'s lazily-built dicts define exactly the slice's source
    # and output nets, and every net the search reads is in that set,
    # so arrays holding X elsewhere see the same values as the dicts.
    # ------------------------------------------------------------------
    def _ensure_arrays(self) -> None:
        if self._gv_arr is None:
            self._gv_arr = [X] * self.circuit.n_nets
            self._fv_arr = [X] * self.circuit.n_nets

    def _undo_to(self, mark: int) -> None:
        trail = self._trail
        if len(trail) <= mark:
            return
        gv, fv = self._gv_arr, self._fv_arr
        for nid, old_g, old_f in reversed(trail[mark:]):
            gv[nid] = old_g
            fv[nid] = old_f
        del trail[mark:]

    def _build_structures(self, slice_gates: List[int],
                          extra_source: Optional[int]) -> _FastSlice:
        """Flat per-slice arrays for the incremental engine (marked
        unsupported when a gate has no small-int 3-valued model)."""
        circuit = self.circuit
        specs = self._specs
        codes = self._codes
        fs = _FastSlice()
        fs.slice_gates = slice_gates
        outs: Set[int] = set()
        gates = fs.gates
        for gi in slice_gates:
            code = codes[gi]
            if code is None:
                fs.supported = False
                return fs
            _op, out, ins = specs[gi]
            gates.append((gi, code, out, ins))
            outs.add(out)
        source_nets: Set[int] = set()
        for _gi, _code, _out, ins in gates:
            for nid in ins:
                if nid not in outs:
                    source_nets.add(nid)
        if extra_source is not None and extra_source not in outs:
            source_nets.add(extra_source)
        constants = circuit.constant_nets
        x_nets = circuit.x_net_ids
        fs.sources = []
        for nid in sorted(source_nets):
            const = constants.get(nid)
            if const is not None:
                value = const
            elif nid in x_nets:
                value = 0  # tied, consistent with packed simulation
            else:
                value = X
            fs.sources.append((nid, value))
        fs.base_nids = [nid for nid, _v in fs.sources]
        fs.base_nids.extend(entry[2] for entry in gates)
        return fs

    def _fast_slice(self, fault: Fault) -> _FastSlice:
        key = (fault.net, fault.owner, fault.pin)
        fs = self._fast_cache.get(key)
        if fs is not None:
            return fs
        circuit = self.circuit
        slice_gates, observable, cone = self._slice_for(fault)
        site_net = circuit.net_ids[fault.net]
        fs = self._build_structures(slice_gates, site_net)
        fs.observable = observable
        if fs.supported:
            specs = self._specs
            fs.cone = [(gi, specs[gi][0], specs[gi][1], specs[gi][2])
                       for gi in cone]
            diff_nets = {entry[2] for entry in fs.cone}
            diff_nets.add(site_net)
            fs.check_nets = tuple(sorted(diff_nets & circuit.observed))
            fs.site_is_source = circuit.gate_of_net.get(site_net) is None
            if fault.kind is FaultKind.BRANCH:
                for gi in circuit.gate_users[site_net]:
                    gate = circuit.gates[gi]
                    if gate.name == fault.owner:
                        fs.branch_gate = gi
                        fs.branch_pos = [
                            k for k, nid in enumerate(gate.ins)
                            if nid == site_net][0]
                        break
        self._fast_cache[key] = fs
        return fs

    def _justify_structures(self, net_id: int) -> Optional[_FastSlice]:
        """Fan-in-closure structures for a bare justification target
        (None when the closure has an unsupported gate)."""
        if net_id in self._justify_cache:
            return self._justify_cache[net_id]
        circuit = self.circuit
        closure: Set[int] = set()
        work = []
        driver = circuit.gate_of_net.get(net_id)
        if driver is not None:
            work.append(driver)
            closure.add(driver)
        while work:
            gi = work.pop()
            for nid in circuit.gates[gi].ins:
                drv = circuit.gate_of_net.get(nid)
                if drv is not None and drv not in closure:
                    closure.add(drv)
                    work.append(drv)
        fs = self._build_structures(sorted(closure), net_id)
        result = fs if fs.supported else None
        self._justify_cache[net_id] = result
        return result

    def _propagate_arr(self, net: int, branch_gate: Optional[int],
                       branch_pos: Optional[int], stuck: int,
                       stem_out: Optional[int]) -> None:
        """Event-driven re-evaluation of both machines from one changed
        source net, recording every overwrite on the undo trail.

        Gates outside the fault cone read identical values in both
        machines, so the faulty machine is re-evaluated only for
        cone-flagged gates (and the stem driver's output is forced).
        """
        gv, fv, trail = self._gv_arr, self._fv_arr, self._trail
        gspec = self._gspec
        gate_users = self.circuit.gate_users
        flags, conefl = self._inflag, self._conefl
        heap = [gi for gi in gate_users[net] if flags[gi]]
        if not heap:
            return
        queued = set(heap)  # ascending list == already a valid heap
        pop, push, ev = heappop, heappush, _eval3_arr
        queued_add, trail_append = queued.add, trail.append
        while heap:
            gi = pop(heap)
            code, out, ins = gspec[gi]
            # The four dominant op codes are evaluated inline; the rest
            # fall through to `_eval3_arr` (identical logic either way).
            if code == _C_AND or code == _C_NAND:
                g_out = 1
                for n in ins:
                    v = gv[n]
                    if v == 0:
                        g_out = 0
                        break
                    if v == 2:
                        g_out = 2
                if code == _C_NAND and g_out != 2:
                    g_out = 1 - g_out
            elif code == _C_OR or code == _C_NOR:
                g_out = 0
                for n in ins:
                    v = gv[n]
                    if v == 1:
                        g_out = 1
                        break
                    if v == 2:
                        g_out = 2
                if code == _C_NOR and g_out != 2:
                    g_out = 1 - g_out
            elif code == _C_INV:
                v = gv[ins[0]]
                g_out = 2 if v == 2 else 1 - v
            elif code == _C_MUX2:
                v = gv[ins[2]]
                if v == 0:
                    g_out = gv[ins[0]]
                elif v == 1:
                    g_out = gv[ins[1]]
                else:
                    a = gv[ins[0]]
                    b = gv[ins[1]]
                    g_out = a if (a == b and a != 2) else 2
            else:
                g_out = ev(code, ins, gv)
            if conefl[gi]:
                if gi == branch_gate:
                    vals = [fv[n] for n in ins]
                    vals[branch_pos] = stuck
                    f_out = _eval3_code(code, vals)
                else:
                    f_out = ev(code, ins, fv)
            elif out == stem_out:
                f_out = stuck
            else:
                f_out = g_out
            old_g, old_f = gv[out], fv[out]
            if g_out == old_g and f_out == old_f:
                continue
            trail_append((out, old_g, old_f))
            gv[out] = g_out
            fv[out] = f_out
            for dep in gate_users[out]:
                if flags[dep] and dep not in queued:
                    queued_add(dep)
                    push(heap, dep)

    def _push_arr(self, net: int, value: int,
                  source_site: Optional[int], stuck: int,
                  branch_gate: Optional[int], branch_pos: Optional[int],
                  stem_out: Optional[int]) -> None:
        """Apply one PI assignment and propagate its consequences."""
        gv, fv = self._gv_arr, self._fv_arr
        self._trail.append((net, gv[net], fv[net]))
        gv[net] = value
        if net != source_site:  # a faulted source stays pinned in fv
            fv[net] = value
        self._propagate_arr(net, branch_gate, branch_pos, stuck,
                            stem_out)

    def _check_arr(self, fs: _FastSlice, site_net: int,
                   stuck: int) -> str:
        gv, fv = self._gv_arr, self._fv_arr
        site_g = gv[site_net]
        if site_g == stuck:
            return "conflict"  # can never be activated under assignment
        for nid in fs.check_nets:
            a, b = gv[nid], fv[nid]
            if a != 2 and b != 2 and a != b:
                return "detected"
        return "open"

    def _objective_arr(self, fs: _FastSlice, site_net: int, stuck: int,
                       branch_gate: Optional[int],
                       branch_pos: Optional[int]
                       ) -> Optional[Tuple[int, int]]:
        gv, fv = self._gv_arr, self._fv_arr
        site_g = gv[site_net]
        if site_g == 2:
            return (site_net, 1 - stuck)  # activate
        for gi, op_name, out, ins in fs.cone:
            if gv[out] != 2 and fv[out] != 2:
                continue
            if gi == branch_gate:
                has_d = site_g != 2 and site_g != stuck
            else:
                has_d = False
                for nid in ins:
                    a = gv[nid]
                    if a != 2:
                        b = fv[nid]
                        if b != 2 and a != b:
                            has_d = True
                            break
            if not has_d:
                continue
            for pos, nid in enumerate(ins):
                if gi == branch_gate and pos == branch_pos:
                    continue  # the faulted pin is not a side input
                if gv[nid] == 2:
                    return (nid, _NONCONTROLLING[op_name])
        return None

    def _run_fast(self, fault: Fault, fs: _FastSlice) -> PodemOutcome:
        """Incremental-engine mirror of :meth:`_run_slow`."""
        circuit = self.circuit
        if not fs.observable and fault.kind is not FaultKind.OBS_BRANCH:
            return PodemOutcome("untestable", {}, 0)
        site_net = circuit.net_ids[fault.net]
        stuck = int(fault.polarity)
        if fault.kind is FaultKind.OBS_BRANCH:
            # Activation is detection: justify site = ¬stuck.
            return self._justify_fast(site_net, 1 - stuck, fs)
        branch_gate = branch_pos = None
        if fault.kind is FaultKind.BRANCH:
            if fs.branch_gate is None:
                return PodemOutcome("untestable", {}, 0)
            branch_gate, branch_pos = fs.branch_gate, fs.branch_pos
        source_site = stem_out = None
        if branch_gate is None:
            if fs.site_is_source:
                source_site = site_net
            else:
                stem_out = site_net

        self._ensure_arrays()
        gv, fv, trail = self._gv_arr, self._fv_arr, self._trail
        flags, conefl = self._inflag, self._conefl
        for gi in fs.slice_gates:
            flags[gi] = 1
        for entry in fs.cone:
            conefl[entry[0]] = 1
        assignment: Dict[int, int] = {}
        #: (net, value, flipped, trail mark before the push)
        decisions: List[Tuple[int, int, bool, int]] = []
        backtracks = 0
        try:
            # Decision-free base state: replayed from the per-polarity
            # snapshot, computed by full slice evaluation on first use.
            # Base writes stay off the undo trail (reset in `finally`),
            # so decision trail marks are relative to an empty trail.
            snapshot = fs.base.get(stuck)
            if snapshot is not None:
                for nid, g, f in snapshot:
                    gv[nid] = g
                    fv[nid] = f
            else:
                for nid, value in fs.sources:
                    gv[nid] = value
                    fv[nid] = value
                if source_site is not None:
                    fv[site_net] = stuck
                for gi, code, out, ins in fs.gates:
                    g_out = _eval3_arr(code, ins, gv)
                    if conefl[gi]:
                        if gi == branch_gate:
                            vals = [fv[n] for n in ins]
                            vals[branch_pos] = stuck
                            f_out = _eval3_code(code, vals)
                        else:
                            f_out = _eval3_arr(code, ins, fv)
                    elif out == stem_out:
                        f_out = stuck
                    else:
                        f_out = g_out
                    gv[out] = g_out
                    fv[out] = f_out
                fs.base[stuck] = [(nid, gv[nid], fv[nid])
                                  for nid in fs.base_nids]

            gv_view = _ArrayView(gv)
            while True:
                status = self._check_arr(fs, site_net, stuck)
                if status == "detected":
                    return PodemOutcome("detected", dict(assignment),
                                        backtracks)
                objective = None
                if status != "conflict":
                    objective = self._objective_arr(fs, site_net, stuck,
                                                    branch_gate,
                                                    branch_pos)
                pi_net: Optional[int] = None
                pi_value = 0
                if objective is not None:
                    pi_net, pi_value = self._backtrace(
                        objective[0], objective[1], gv_view)
                if pi_net is None:
                    # Backtrack (covers both "no objective" and "no
                    # X-path", exactly like the reference engine).
                    while decisions:
                        net, value, flipped, mark = decisions.pop()
                        del assignment[net]
                        self._undo_to(mark)
                        if not flipped:
                            backtracks += 1
                            if backtracks > self.backtrack_limit:
                                return PodemOutcome("aborted", {},
                                                    backtracks)
                            decisions.append((net, 1 - value, True,
                                              len(trail)))
                            assignment[net] = 1 - value
                            self._push_arr(net, 1 - value,
                                           source_site, stuck,
                                           branch_gate, branch_pos,
                                           stem_out)
                            break
                    else:
                        return PodemOutcome("untestable", {}, backtracks)
                    continue

                decisions.append((pi_net, pi_value, False, len(trail)))
                assignment[pi_net] = pi_value
                self._push_arr(pi_net, pi_value, source_site, stuck,
                               branch_gate, branch_pos, stem_out)
        finally:
            self._undo_to(0)
            for nid in fs.base_nids:
                gv[nid] = X
                fv[nid] = X
            for gi in fs.slice_gates:
                flags[gi] = 0
            for entry in fs.cone:
                conefl[entry[0]] = 0

    def _justify_fast(self, net_id: int, value: int,
                      fs: _FastSlice) -> PodemOutcome:
        """Incremental-engine mirror of :meth:`_justify_slow` (good
        machine only; the faulty array simply mirrors it)."""
        self._ensure_arrays()
        gv, fv, trail = self._gv_arr, self._fv_arr, self._trail
        flags = self._inflag
        for gi in fs.slice_gates:
            flags[gi] = 1
        assignment: Dict[int, int] = {}
        decisions: List[Tuple[int, int, bool, int]] = []
        backtracks = 0
        try:
            snapshot = fs.base.get(None)
            if snapshot is not None:
                for nid, g, f in snapshot:
                    gv[nid] = g
                    fv[nid] = f
            else:
                for nid, source_value in fs.sources:
                    gv[nid] = source_value
                    fv[nid] = source_value
                for _gi, code, out, ins in fs.gates:
                    g_out = _eval3_arr(code, ins, gv)
                    gv[out] = g_out
                    fv[out] = g_out
                fs.base[None] = [(nid, gv[nid], fv[nid])
                                 for nid in fs.base_nids]

            gv_view = _ArrayView(gv)
            while True:
                current = gv[net_id]
                if current == value:
                    return PodemOutcome("detected", dict(assignment),
                                        backtracks)
                pi_net: Optional[int] = None
                pi_value = 0
                if current != 1 - value:  # else conflict: backtrack
                    pi_net, pi_value = self._backtrace(net_id, value,
                                                       gv_view)
                if pi_net is not None:
                    decisions.append((pi_net, pi_value, False,
                                      len(trail)))
                    assignment[pi_net] = pi_value
                    self._push_arr(pi_net, pi_value, None, 0, None,
                                   None, None)
                    continue

                while decisions:
                    net, val, flipped, mark = decisions.pop()
                    del assignment[net]
                    self._undo_to(mark)
                    if not flipped:
                        backtracks += 1
                        if backtracks > self.backtrack_limit:
                            return PodemOutcome("aborted", {},
                                                backtracks)
                        decisions.append((net, 1 - val, True,
                                          len(trail)))
                        assignment[net] = 1 - val
                        self._push_arr(net, 1 - val, None, 0, None,
                                       None, None)
                        break
                else:
                    return PodemOutcome("untestable", {}, backtracks)
        finally:
            self._undo_to(0)
            for nid in fs.base_nids:
                gv[nid] = X
                fv[nid] = X
            for gi in fs.slice_gates:
                flags[gi] = 0

    # ------------------------------------------------------------------
    def _imply(self, slice_gates: List[int], assignment: Dict[int, int],
               site_net: Optional[int], stuck: int,
               branch_gate: Optional[int], branch_pos: Optional[int]
               ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """3-valued forward simulation of good (gv) and faulty (fv)
        machines over the slice."""
        circuit = self.circuit
        gv: Dict[int, int] = {}
        fv: Dict[int, int] = {}

        def source_value(nid: int) -> int:
            if nid in assignment:
                return assignment[nid]
            const = circuit.constant_nets.get(nid)
            if const is not None:
                return const
            if nid in circuit.x_net_ids:
                return 0  # tied, consistent with packed simulation
            if nid in self._control:
                return X
            return X

        def get(machine: Dict[int, int], nid: int) -> int:
            if nid in machine:
                return machine[nid]
            value = source_value(nid)
            machine[nid] = value
            return value

        # A stem fault on a source net (FF Q, PI) must be injected before
        # any gate reads it; a stem on a gate output is injected right
        # after that gate evaluates (inside the loop).
        if site_net is not None and branch_gate is None \
                and circuit.gate_of_net.get(site_net) is None:
            get(gv, site_net)
            fv[site_net] = stuck

        specs = self._specs
        for gi in slice_gates:
            op_name, out, ins = specs[gi]
            g_ins = [get(gv, nid) for nid in ins]
            gv[out] = _eval3(op_name, g_ins)

            if branch_gate is not None and gi == branch_gate:
                f_ins = [get(fv, nid) for nid in ins]
                f_ins[branch_pos] = stuck
                fv[out] = _eval3(op_name, f_ins)
            else:
                f_ins = [get(fv, nid) for nid in ins]
                fv[out] = _eval3(op_name, f_ins)
            if site_net is not None and branch_gate is None \
                    and out == site_net:
                fv[site_net] = stuck

        return gv, fv

    # ------------------------------------------------------------------
    def _check(self, gv: Dict[int, int], fv: Dict[int, int],
               site_net: int, stuck: int) -> str:
        """'detected', 'conflict' or 'open'."""
        site_g = gv.get(site_net, X)
        if site_g == stuck:
            return "conflict"  # can never be activated under assignment
        for nid in self.circuit.observed:
            a, b = gv.get(nid, X), fv.get(nid, X)
            if a != X and b != X and a != b:
                return "detected"
        return "open"

    def _objective(self, gv: Dict[int, int], fv: Dict[int, int],
                   site_net: int, stuck: int, slice_gates: List[int],
                   branch_gate: Optional[int] = None,
                   branch_pos: Optional[int] = None
                   ) -> Optional[Tuple[int, int]]:
        site_g = gv.get(site_net, X)
        if site_g == X:
            return (site_net, 1 - stuck)  # activate

        # D-frontier: gate with a D/D̄ input whose output is not yet
        # resolved in at least one machine (composite value unknown).
        # For a branch fault the D̄ sits on the faulted *pin* of the
        # branch gate, which net-level values cannot show.
        specs = self._specs
        for gi in slice_gates:
            op_name, out, ins = specs[gi]
            if gv.get(out, X) != X and fv.get(out, X) != X:
                continue
            if branch_gate is not None and gi == branch_gate:
                has_d = site_g != X and site_g != stuck
            else:
                has_d = any(
                    gv.get(nid, X) != X and fv.get(nid, X) != X
                    and gv.get(nid) != fv.get(nid)
                    for nid in ins
                )
            if not has_d:
                continue
            for pos, nid in enumerate(ins):
                if branch_gate is not None and gi == branch_gate                         and pos == branch_pos:
                    continue  # the faulted pin is not a side input
                if gv.get(nid, X) == X:
                    return (nid, _NONCONTROLLING[op_name])
        return None

    def _backtrace(self, net_id: int, value: int,
                   gv: Dict[int, int]) -> Tuple[Optional[int], int]:
        """Walk an X-path from the objective back to a control net.

        Uses SCOAP guidance: "any input suffices" objectives descend
        into the cheapest X input, "all inputs required" objectives
        into the hardest one — the textbook backtrace policy.
        """
        circuit = self.circuit
        control = self._control
        gate_of_net = circuit.gate_of_net.get
        gates = circuit.gates
        # Direct list indexing on the incremental engine's value array;
        # dict access (with an X default for unset nets) otherwise.
        data = gv.data if type(gv) is _ArrayView else None
        current, target = net_id, value
        for _ in range(100000):  # cycle-free by construction
            if current in control:
                return current, target
            driver = gate_of_net(current)
            if driver is None:
                return None, 0  # constant / X-tie: cannot justify
            gate = gates[driver]
            if data is not None:
                x_inputs = [nid for nid in gate.ins if data[nid] == X]
            else:
                x_inputs = [nid for nid in gate.ins
                            if gv.get(nid, X) == X]
            if not x_inputs:
                return None, 0
            step = self._backtrace_step(gate, target, x_inputs, gv)
            if step is None:
                return None, 0
            current, target = step
        return None, 0

    def _backtrace_step(self, gate, target: int, x_inputs: List[int],
                        gv: Dict[int, int]) -> Optional[Tuple[int, int]]:
        cc0, cc1 = self._cc0, self._cc1
        op = gate.op_name

        def easiest(value: int) -> int:
            table = cc1 if value else cc0
            return min(x_inputs, key=lambda n: table[n])

        def hardest(value: int) -> int:
            table = cc1 if value else cc0
            return max(x_inputs, key=lambda n: table[n])

        if op in ("buf", "inv"):
            flip = op == "inv"
            return (x_inputs[0], 1 - target if flip else target)
        if op in ("and", "nand"):
            out_all1 = target if op == "and" else 1 - target
            if out_all1:  # need every input 1
                return (hardest(1), 1)
            return (easiest(0), 0)  # any input 0 suffices
        if op in ("or", "nor"):
            out_any1 = target if op == "or" else 1 - target
            if out_any1:
                return (easiest(1), 1)
            return (hardest(0), 0)
        if op in ("xor", "xnor"):
            parity = 0
            for nid in gate.ins:
                v = gv.get(nid, X)
                if v != X and nid not in x_inputs:
                    parity ^= v
            want = target if op == "xor" else 1 - target
            chosen = x_inputs[0]
            # Assume the other X inputs resolve to 0.
            return (chosen, want ^ parity)
        if op == "mux2":
            a, b, s = gate.ins
            a_v, b_v, s_v = gv.get(a, X), gv.get(b, X), gv.get(s, X)
            if s_v == 0 and a in x_inputs:
                return (a, target)
            if s_v == 1 and b in x_inputs:
                return (b, target)
            if s_v == X:
                # Choose the side whose data already matches, else side A.
                if a_v == target or (a in x_inputs and b_v != target):
                    return (s, 0) if s in x_inputs else (a, target)
                return (s, 1) if s in x_inputs else ((b, target)
                                                     if b in x_inputs else None)
            return None
        if op in ("aoi21", "oai21"):
            a1, a2, b = gate.ins
            inner_and = op == "aoi21"
            need = 1 - target  # value of the inner (pre-inversion) term
            # aoi: out = !((a1&a2)|b); oai: out = !((a1|a2)&b)
            if op == "aoi21":
                if need:  # (a1&a2)|b must be 1: easiest of b=1 / a1=a2=1
                    if b in x_inputs and (cc1[b] <= cc1[a1] + cc1[a2]
                                          or a1 not in x_inputs
                                          and a2 not in x_inputs):
                        return (b, 1)
                    for nid in (a1, a2):
                        if nid in x_inputs:
                            return (nid, 1)
                    return (b, 1) if b in x_inputs else None
                # (a1&a2)|b must be 0: b=0 and one of a1/a2 = 0
                if b in x_inputs:
                    return (b, 0)
                for nid in sorted((a1, a2), key=lambda n: cc0[n]):
                    if nid in x_inputs:
                        return (nid, 0)
                return None
            # oai21: inner = (a1|a2)&b
            if need:  # inner 1: b=1 and one of a1/a2 = 1
                if b in x_inputs:
                    return (b, 1)
                for nid in sorted((a1, a2), key=lambda n: cc1[n]):
                    if nid in x_inputs:
                        return (nid, 1)
                return None
            # inner 0: b=0 or both a1,a2 = 0
            if b in x_inputs and (cc0[b] <= cc0[a1] + cc0[a2]
                                  or (a1 not in x_inputs
                                      and a2 not in x_inputs)):
                return (b, 0)
            for nid in (a1, a2):
                if nid in x_inputs:
                    return (nid, 0)
            return (b, 0) if b in x_inputs else None
        return (x_inputs[0], target)
