"""NumPy bit-plane fault simulation (the ``numpy`` kernel backend).

The pure-Python engine simulates one fault at a time with event-driven
big-int propagation (:meth:`CompiledCircuit.propagate_stem` and
friends). This module batches fault machines instead: each fault gets a
*column* of uint64 bit-planes (one plane per 64 patterns), all columns
are re-simulated together level by level with vectorized bitwise ops,
and the detection word per fault is the OR over observed nets of the
XOR against the good machine.

Byte-identity with the event-driven path follows from purity: packed
two-valued simulation of an acyclic netlist is a pure function of the
source values, so a full forced re-simulation and an event-driven
delta propagation give the same final values — hence identical
detection words (columns whose forced value equals the good value
simply reproduce the good machine and contribute no diff, matching the
early-exit in ``propagate_stem``/``propagate_branch``).

Fault injection mirrors the dispatcher ops exactly:

* ``("s", net, value)`` — the net's row is forced after its driver's
  level evaluates (or before level 1 for source nets); later levels
  read the stuck value, and the site itself shows it to observation.
* ``("b", gate, pin, value)`` — that one gate is re-evaluated for that
  one column with the faulted operand patched.
* ``("o", net, value)`` — activation equals detection; computed
  directly from the good values without simulation.

Unsupported netlists (any gate without a vectorized model) make
:meth:`PlaneSimulator.build` return ``None`` and the engine falls back
to the per-fault Python path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.sim import CompiledCircuit

try:  # gated: the python backend must work without numpy installed
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via backend tests
    _np = None

#: op names with a vectorized bitwise model (n-ary where the netlist
#: allows it); anything else falls back to the python dispatcher
_VECTOR_OPS = frozenset((
    "buf", "inv", "and", "nand", "or", "nor", "xor", "xnor",
    "mux2", "aoi21", "oai21",
))


def _reduce_and(operands: Sequence["_np.ndarray"]) -> "_np.ndarray":
    result = operands[0] & operands[1] if len(operands) > 1 \
        else operands[0].copy()
    for extra in operands[2:]:
        result &= extra
    return result


def _reduce_or(operands: Sequence["_np.ndarray"]) -> "_np.ndarray":
    result = operands[0] | operands[1] if len(operands) > 1 \
        else operands[0].copy()
    for extra in operands[2:]:
        result |= extra
    return result


def _reduce_xor(operands: Sequence["_np.ndarray"]) -> "_np.ndarray":
    result = operands[0] ^ operands[1] if len(operands) > 1 \
        else operands[0].copy()
    for extra in operands[2:]:
        result ^= extra
    return result


def _op_eval(op_name: str, operands: Sequence["_np.ndarray"]
             ) -> "_np.ndarray":
    """Vectorized packed-logic model; high bits past the pattern mask
    carry garbage that the caller masks off the final detection word,
    exactly like the big-int kernels mask inverting ops."""
    if op_name == "and":
        return _reduce_and(operands)
    if op_name == "nand":
        return ~_reduce_and(operands)
    if op_name == "or":
        return _reduce_or(operands)
    if op_name == "nor":
        return ~_reduce_or(operands)
    if op_name == "xor":
        return _reduce_xor(operands)
    if op_name == "xnor":
        return ~_reduce_xor(operands)
    if op_name == "buf":
        return operands[0].copy()
    if op_name == "inv":
        return ~operands[0]
    if op_name == "mux2":
        a, b, s = operands
        return (a & ~s) | (b & s)
    if op_name == "aoi21":
        a1, a2, b = operands
        return ~((a1 & a2) | b)
    # oai21 — build() admits nothing else
    a1, a2, b = operands
    return ~((a1 | a2) & b)


class PlaneSimulator:
    """Levelized bit-plane fault simulator over one compiled circuit."""

    #: fault columns simulated per vectorized chunk (amortizes the
    #: per-group dispatch overhead without outgrowing cache)
    CHUNK = 512

    def __init__(self, circuit: CompiledCircuit) -> None:
        self.circuit = circuit
        # Levelize: a gate's level is 1 + max of its input net levels,
        # so gates within a level never read each other's outputs and
        # the whole level can evaluate from the previous state.
        net_level = [0] * circuit.n_nets
        gate_level: List[int] = []
        groups: Dict[Tuple[int, str, int], List[int]] = {}
        for gate in circuit.gates:
            level = 1 + max((net_level[nid] for nid in gate.ins),
                            default=0)
            gate_level.append(level)
            net_level[gate.out] = level
            groups.setdefault((level, gate.op_name, len(gate.ins)),
                              []).append(gate.index)
        self.net_level = net_level
        self.gate_level = gate_level
        self.max_level = max(gate_level, default=0)
        #: per level: (op_name, out-id array, in-id matrix (n, arity))
        self.levels: List[List[Tuple[str, "_np.ndarray", "_np.ndarray"]]]
        self.levels = [[] for _ in range(self.max_level + 1)]
        for (level, op_name, _arity), indices in sorted(groups.items()):
            outs = _np.array([circuit.gates[gi].out for gi in indices],
                             dtype=_np.intp)
            ins = _np.array([circuit.gates[gi].ins for gi in indices],
                            dtype=_np.intp)
            self.levels[level].append((op_name, outs, ins))
        self.obs_rows = _np.array(sorted(circuit.observed),
                                  dtype=_np.intp)
        # Only undriven nets (sources) need seeding from the good
        # planes: every driven row is overwritten by its level's bulk
        # evaluation before anything at a later level reads it.
        self.source_rows = _np.array(
            [nid for nid in range(circuit.n_nets)
             if nid not in circuit.gate_of_net], dtype=_np.intp)

    @classmethod
    def build(cls, circuit: CompiledCircuit) -> Optional["PlaneSimulator"]:
        """A simulator for *circuit*, or ``None`` when numpy is absent
        or a gate has no vectorized model."""
        if _np is None:
            return None
        if any(g.op_name not in _VECTOR_OPS for g in circuit.gates):
            return None
        return cls(circuit)

    # ------------------------------------------------------------------
    def _pack(self, values: Sequence[int], nbytes: int) -> "_np.ndarray":
        """Pack big-int pattern words into little-endian uint64 planes."""
        n = len(values)
        buf = bytearray(n * nbytes)
        for i, word in enumerate(values):
            buf[i * nbytes:(i + 1) * nbytes] = word.to_bytes(
                nbytes, "little")
        return _np.frombuffer(bytes(buf), dtype="<u8").reshape(n, -1)

    def detect_many(self, good: Sequence[int], ops: Sequence[Tuple],
                    active: Sequence[int], mask: int) -> List[int]:
        """Detection words for the *active* fault indices, in order.

        *good* is the good-machine value list of the current block and
        *ops* the dispatcher's pre-resolved fault descriptors.
        """
        nbits = mask.bit_length()
        if nbits == 0:
            return [0] * len(active)
        nbytes = ((nbits + 63) // 64) * 8
        good_planes = self._pack(good, nbytes)
        result: Dict[int, int] = {}
        simulated: List[int] = []
        for fault_index in active:
            op = ops[fault_index]
            if op[0] == "o":
                forced = mask if op[2] else 0
                result[fault_index] = (good[op[1]] ^ forced) & mask
            else:
                simulated.append(fault_index)
        for start in range(0, len(simulated), self.CHUNK):
            chunk = simulated[start:start + self.CHUNK]
            dets = self._simulate_chunk(good_planes, ops, chunk, nbytes)
            for fault_index, det_bytes in zip(chunk, dets):
                result[fault_index] = int.from_bytes(
                    det_bytes, "little") & mask
        return [result[fault_index] for fault_index in active]

    def _simulate_chunk(self, good_planes: "_np.ndarray",
                        ops: Sequence[Tuple], chunk: Sequence[int],
                        nbytes: int) -> List[bytes]:
        circuit = self.circuit
        width = len(chunk)
        planes = nbytes // 8
        ones = _np.uint64(0xFFFFFFFFFFFFFFFF)
        zero = _np.uint64(0)
        # One faulty machine per column; only source rows need seeding
        # from the good planes (driven rows are overwritten level by
        # level before any later level reads them).
        state = _np.empty((circuit.n_nets, width, planes),
                          dtype=_np.uint64)
        sources = self.source_rows
        state[sources] = good_planes[sources][:, None, :]

        stem_forces: Dict[int, List[Tuple[int, int, int]]] = {}
        branch_fixes: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for column, fault_index in enumerate(chunk):
            op = ops[fault_index]
            if op[0] == "s":
                level = 0
                driver = circuit.gate_of_net.get(op[1])
                if driver is not None:
                    level = self.gate_level[driver]
                stem_forces.setdefault(level, []).append(
                    (op[1], column, op[2]))
            else:  # "b"
                branch_fixes.setdefault(
                    self.gate_level[op[1]], []).append(
                        (op[1], op[2], column, op[3]))

        for net, column, value in stem_forces.get(0, ()):
            state[net, column, :] = ones if value else zero

        for level in range(1, self.max_level + 1):
            for op_name, outs, ins in self.levels[level]:
                operands = [state[ins[:, position]]
                            for position in range(ins.shape[1])]
                state[outs] = _op_eval(op_name, operands)
            # Patched single gate-columns and stem pins apply after the
            # level's bulk evaluation and before any reader runs.
            for gate_index, position, column, value in \
                    branch_fixes.get(level, ()):
                gate = circuit.gates[gate_index]
                operands = [state[nid, column] for nid in gate.ins]
                operands[position] = _np.full(
                    planes, ones if value else zero, dtype=_np.uint64)
                state[gate.out, column] = _op_eval(gate.op_name, operands)
            for net, column, value in stem_forces.get(level, ()):
                state[net, column, :] = ones if value else zero

        observed = self.obs_rows
        diffs = state[observed] ^ good_planes[observed][:, None, :]
        det_planes = _np.bitwise_or.reduce(diffs, axis=0)
        det_bytes = det_planes.tobytes()
        return [det_bytes[column * nbytes:(column + 1) * nbytes]
                for column in range(width)]
