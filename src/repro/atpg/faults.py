"""Stuck-at fault universe with structural equivalence collapsing.

Fault sites follow the classic stem/branch model:

* **stem** faults live on a net (at its driver's output),
* **branch** faults live on an individual sink pin of a multi-sink net,
* branches feeding an observation point directly (FF ``D`` pins,
  observed ports) are **obs-branch** faults: activation is detection.

Collapsing applies the textbook equivalences into the driving gate's
output faults (NAND input s-a-0 ≡ output s-a-1, and so on), which
roughly halves the universe without changing coverage semantics.

Exclusions:

* nets tied constant in test mode (``test_mode``, ``scan_enable``)
  cannot be toggled — their faults are constrained-untestable;
* inbound-TSV X-source nets are **pre-bond untestable**: the TSV
  floats, so no value on it can be controlled or observed; commercial
  flows report coverage with these excluded (test-coverage convention),
  and so do we. Both counts are recorded on the resulting
  :class:`FaultList` for transparency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dft.testview import TestView
from repro.netlist.core import Netlist, Pin, PortKind
from repro.util.rng import DeterministicRng


class Polarity(enum.IntEnum):
    SA0 = 0
    SA1 = 1


class FaultKind(enum.Enum):
    STEM = "stem"
    BRANCH = "branch"
    OBS_BRANCH = "obs_branch"


@dataclass(frozen=True)
class Fault:
    """One collapsed stuck-at fault."""

    kind: FaultKind
    polarity: Polarity
    net: str
    #: owning gate instance (BRANCH) or observer label (OBS_BRANCH)
    owner: str = ""
    pin: str = ""

    def describe(self) -> str:
        target = self.net if self.kind is FaultKind.STEM \
            else f"{self.owner}.{self.pin}"
        return f"{target} s-a-{int(self.polarity)}"


#: input-fault collapses per cell function:
#: function -> (input polarity collapsed away, or None)
_COLLAPSE_INPUT_POLARITY: Dict[str, Optional[Polarity]] = {
    "and": Polarity.SA0,
    "nand": Polarity.SA0,
    "or": Polarity.SA1,
    "nor": Polarity.SA1,
    # buf/inv collapse BOTH input polarities (handled specially)
}


@dataclass
class FaultList:
    """The measurement universe for one test view."""

    faults: List[Fault] = field(default_factory=list)
    #: faults dropped by equivalence collapsing (for reporting)
    collapsed_away: int = 0
    #: faults excluded because their site floats pre-bond (TSV X nets)
    prebond_untestable: int = 0
    #: faults excluded because their site is tied constant in test mode
    constrained_untestable: int = 0

    @property
    def total(self) -> int:
        return len(self.faults)

    def sample(self, count: int, seed: int) -> "FaultList":
        """Deterministic subsample used on the largest dies.

        The same (count, seed) yields the same universe for every
        method under comparison, so deltas remain meaningful.
        """
        if count >= len(self.faults):
            return self
        rng = DeterministicRng(seed).child("fault_sample", count)
        sampled = rng.sample(self.faults, count)
        return FaultList(
            faults=sampled,
            collapsed_away=self.collapsed_away,
            prebond_untestable=self.prebond_untestable,
            constrained_untestable=self.constrained_untestable,
        )


def _data_sinks(netlist: Netlist, net_name: str
                ) -> Tuple[List[Tuple[str, Pin]], int]:
    """Sinks of a net that matter for test.

    Returns ``(sinks, dark_sinks)`` where each sink is ``(kind, pin)``
    with kind 'gate' or 'obs' (FF D pin / observed port), and
    *dark_sinks* counts pins that are unobservable pre-bond (outbound
    TSV pads) whose branch faults are pre-bond untestable.
    """
    result: List[Tuple[str, Pin]] = []
    dark = 0
    net = netlist.net(net_name)
    for sink in net.sinks:
        if sink.is_port:
            port = netlist.port(sink.owner_name)
            if port.kind in (PortKind.PRIMARY_OUTPUT, PortKind.PSEUDO_OUTPUT):
                result.append(("obs", sink))
            elif port.kind is PortKind.TSV_OUTBOUND:
                dark += 1
            # scan-out sinks are shift-path only
            continue
        inst = netlist.instance(sink.owner_name)
        if inst.is_sequential:
            if sink.pin_name == "D":
                result.append(("obs", sink))
            continue  # SI/SE/CK do not exist in the combinational view
        result.append(("gate", sink))
    return result, dark


def build_fault_list(view: TestView, include_branches: bool = True,
                     collapse: bool = True) -> FaultList:
    """Build the collapsed stuck-at fault universe for *view*."""
    netlist = view.netlist
    x_nets = set(view.x_nets)
    constant_nets = set(view.constant_nets)
    observed_net_labels = {net: label for label, net in view.observe_nets}

    result = FaultList()

    for net_name, net in netlist.nets.items():
        sinks, dark_sinks = _data_sinks(netlist, net_name)
        is_observed_net = net_name in observed_net_labels
        if net_name not in x_nets and net_name not in constant_nets:
            # The pad-side wire of an unbonded outbound TSV is dark in
            # every method; the *net* itself stays in the universe (its
            # undetectability without a wrapper is the coverage gap
            # wrapper cells exist to close).
            result.prebond_untestable += 2 * dark_sinks
        if not sinks and not is_observed_net and not dark_sinks:
            continue  # clock/scan-enable distribution, dangling, etc.

        if net_name in x_nets:
            # Floating TSV: stem + its branches are pre-bond untestable.
            result.prebond_untestable += 2 * (1 + max(0, len(sinks) - 1))
            continue
        if net_name in constant_nets:
            result.constrained_untestable += 2 * (1 + max(0, len(sinks) - 1))
            continue

        driver_inst = None
        if net.driver is not None and not net.driver.is_port:
            driver_inst = netlist.instance(net.driver.owner_name)

        # ---- stem faults (with single-sink collapse into the sink gate)
        for polarity in (Polarity.SA0, Polarity.SA1):
            if collapse and len(sinks) == 1 and sinks[0][0] == "gate":
                sink_inst = netlist.instance(sinks[0][1].owner_name)
                fn = sink_inst.cell.function
                if fn in ("buf", "inv"):
                    result.collapsed_away += 1
                    continue
                if _COLLAPSE_INPUT_POLARITY.get(fn) is polarity:
                    result.collapsed_away += 1
                    continue
            result.faults.append(Fault(
                kind=FaultKind.STEM, polarity=polarity, net=net_name,
            ))

        # ---- branch faults on multi-sink nets ------------------------
        if not include_branches or len(sinks) < 2:
            continue
        for sink_kind, sink in sinks:
            for polarity in (Polarity.SA0, Polarity.SA1):
                if sink_kind == "gate":
                    sink_inst = netlist.instance(sink.owner_name)
                    fn = sink_inst.cell.function
                    if collapse and fn in ("buf", "inv"):
                        result.collapsed_away += 1
                        continue
                    if collapse and _COLLAPSE_INPUT_POLARITY.get(fn) is polarity:
                        result.collapsed_away += 1
                        continue
                    result.faults.append(Fault(
                        kind=FaultKind.BRANCH, polarity=polarity,
                        net=net_name, owner=sink.owner_name,
                        pin=sink.pin_name,
                    ))
                else:  # observation branch
                    result.faults.append(Fault(
                        kind=FaultKind.OBS_BRANCH, polarity=polarity,
                        net=net_name,
                        owner=sink.owner_name, pin=sink.pin_name,
                    ))
    return result
