"""Cause-effect fault diagnosis.

Given the observed failing behaviour of a defective die under a known
pattern set (which patterns failed, and at which observation points),
rank the stuck-at fault candidates whose simulated signatures best
explain it. This is the manufacturing-debug companion of ATPG: once
pre-bond test *fails* a die, diagnosis tells the failure-analysis lab
where to look.

The scoring is classic cause-effect matching over per-fault simulated
signatures: a candidate's score combines how much of the observed
failure it predicts (recall over failing (pattern, observer) pairs) and
how little it predicts that was NOT observed (precision). Exact-match
candidates score 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.atpg.engine import _FaultDispatcher, _patterns_to_words
from repro.atpg.faults import Fault, FaultList, build_fault_list
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import TestView
from repro.util.errors import AtpgError

#: a failure observation: (pattern index, observed net id)
Syndrome = FrozenSet[Tuple[int, int]]


@dataclass
class DiagnosisCandidate:
    fault: Fault
    score: float
    predicted_failures: int
    matched_failures: int

    @property
    def exact(self) -> bool:
        return self.score == 1.0


@dataclass
class DiagnosisResult:
    observed_failures: int
    candidates: List[DiagnosisCandidate] = field(default_factory=list)

    @property
    def best(self) -> Optional[DiagnosisCandidate]:
        return self.candidates[0] if self.candidates else None


class FaultDiagnoser:
    """Diagnosis session over one test view and pattern set."""

    def __init__(self, view: TestView, patterns: Sequence[int],
                 fault_list: Optional[FaultList] = None) -> None:
        if not patterns:
            raise AtpgError("diagnosis needs a non-empty pattern set")
        self.view = view
        self.circuit = CompiledCircuit(view)
        self.patterns = list(patterns)
        self.faults = (fault_list or build_fault_list(view)).faults
        self.dispatcher = _FaultDispatcher(self.circuit, self.faults)
        self._mask = (1 << len(self.patterns)) - 1
        words = _patterns_to_words(self.patterns, self.circuit.input_count)
        self._good = self.circuit.simulate(words, self._mask)

    # ------------------------------------------------------------------
    def signature_of(self, fault_index: int) -> Syndrome:
        """The (pattern, observer) failures fault *fault_index* causes."""
        circuit, good, mask = self.circuit, self._good, self._mask
        op = self.dispatcher.ops[fault_index]
        if op[0] == "s":
            forced = mask if op[2] else 0
            if forced == (good[op[1]] & mask):
                return frozenset()
            changed = circuit.propagate_values(good, {op[1]: forced}, mask)
        elif op[0] == "o":
            forced = mask if op[2] else 0
            diff = (good[op[1]] ^ forced) & mask
            return frozenset((k, op[1]) for k in range(len(self.patterns))
                             if (diff >> k) & 1)
        else:
            _tag, gate_index, position, value = op
            gate = circuit.gates[gate_index]
            ins = [good[i] for i in gate.ins]
            ins[position] = mask if value else 0
            out_word = gate.op(ins, mask)
            if out_word == good[gate.out]:
                return frozenset()
            changed = circuit.propagate_values(good, {gate.out: out_word},
                                               mask)
        failures: Set[Tuple[int, int]] = set()
        for nid, word in changed.items():
            if nid not in circuit.observed:
                continue
            diff = (word ^ good[nid]) & mask
            while diff:
                low = (diff & -diff).bit_length() - 1
                failures.add((low, nid))
                diff &= diff - 1
        return frozenset(failures)

    def simulate_defect(self, fault_index: int) -> Syndrome:
        """What a tester would log for a die carrying this fault."""
        return self.signature_of(fault_index)

    # ------------------------------------------------------------------
    def diagnose(self, observed: Syndrome, top: int = 10) -> DiagnosisResult:
        """Rank fault candidates against the observed syndrome."""
        if not observed:
            return DiagnosisResult(observed_failures=0)
        candidates: List[DiagnosisCandidate] = []
        for index, fault in enumerate(self.faults):
            predicted = self.signature_of(index)
            if not predicted:
                continue
            matched = len(predicted & observed)
            if matched == 0:
                continue
            recall = matched / len(observed)
            precision = matched / len(predicted)
            score = 2 * recall * precision / (recall + precision)
            candidates.append(DiagnosisCandidate(
                fault=fault, score=score,
                predicted_failures=len(predicted),
                matched_failures=matched,
            ))
        candidates.sort(key=lambda c: (-c.score, c.fault.describe()))
        return DiagnosisResult(observed_failures=len(observed),
                               candidates=candidates[:top])
