"""Transition-delay fault ATPG (two-pattern tests).

A slow-to-rise (STR) fault at a net needs a launch pattern V1 setting
the net to 0 and a capture pattern V2 that would set it to 1 and
propagates the resulting stuck-at-0 behaviour to an observation point;
slow-to-fall (STF) is the dual. Tests are pattern *pairs*; the pattern
count reported is the number of pairs, matching how the paper's tables
count transition patterns.

Pairs are independent (launch-off-shift style); see DESIGN.md §9 for
why launch-on-capture fidelity buys nothing on synthetic substrates.
The machinery reuses the stuck-at engine's packed simulation: the
faulty machine in cycle 2 is exactly a stuck-at-initial-value machine,
gated by the cycle-1 launch condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.atpg.engine import AtpgConfig, AtpgResult, _patterns_to_words
from repro.atpg.faults import Fault, FaultKind, FaultList, Polarity, build_fault_list
from repro.atpg.podem import PodemGenerator
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import TestView
from repro.util.rng import DeterministicRng

_ACTIVE, _DETECTED, _UNTESTABLE, _ABORTED = 0, 1, 2, 3


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise/fall fault at a stem."""

    net: str
    slow_to_rise: bool  # False = slow-to-fall

    @property
    def initial_value(self) -> int:
        """Value the net is stuck near during the capture cycle."""
        return 0 if self.slow_to_rise else 1


def build_transition_faults(view: TestView) -> List[TransitionFault]:
    """Transition universe: STR/STF at every stuck-at stem site."""
    stuck = build_fault_list(view, include_branches=False)
    nets = sorted({f.net for f in stuck.faults if f.kind is FaultKind.STEM})
    faults: List[TransitionFault] = []
    for net in nets:
        faults.append(TransitionFault(net=net, slow_to_rise=True))
        faults.append(TransitionFault(net=net, slow_to_rise=False))
    return faults


def run_transition_atpg(view: TestView, config: Optional[AtpgConfig] = None
                        ) -> AtpgResult:
    """Two-pattern transition ATPG over *view*."""
    config = config or AtpgConfig()
    circuit = CompiledCircuit(view)
    faults = build_transition_faults(view)
    if config.fault_sample is not None and config.fault_sample < len(faults):
        rng = DeterministicRng(config.seed).child("tf_sample")
        faults = rng.sample(faults, config.fault_sample)

    net_ids = [circuit.net_ids[f.net] for f in faults]
    status = [_ACTIVE] * len(faults)
    rng = DeterministicRng(config.seed).child("tf", view.netlist.name)
    mask = (1 << config.block_width) - 1
    columns = circuit.input_count

    kept_pairs: List[Tuple[int, int]] = []
    random_kept = 0

    # ---- phase 1: random pattern pairs --------------------------------
    # Launch and capture values live side by side, so the run reuses two
    # preallocated buffers (one per cycle) across blocks.
    launch_buffer = circuit.make_buffer()
    capture_buffer = circuit.make_buffer()
    idle = 0
    for _block in range(config.max_random_blocks):
        active = [i for i, s in enumerate(status) if s == _ACTIVE]
        if not active:
            break
        words1 = [rng.getrandbits(config.block_width) for _ in range(columns)]
        words2 = [rng.getrandbits(config.block_width) for _ in range(columns)]
        good1 = circuit.simulate(words1, mask, out=launch_buffer)
        good2 = circuit.simulate(words2, mask, out=capture_buffer)
        first_detector: Dict[int, int] = {}
        for index in active:
            fault = faults[index]
            nid = net_ids[index]
            initial = fault.initial_value
            launch = (~good1[nid] & mask) if fault.slow_to_rise \
                else (good1[nid] & mask)
            if not launch:
                continue
            det2 = circuit.propagate_stem(good2, nid, initial, mask)
            det = det2 & launch
            if det:
                status[index] = _DETECTED
                k = (det & -det).bit_length() - 1
                first_detector[k] = first_detector.get(k, 0) + 1
        if not first_detector:
            idle += 1
            if idle >= config.stop_after_idle_blocks:
                break
            continue
        idle = 0
        for k in sorted(first_detector):
            p1 = sum(((words1[j] >> k) & 1) << j for j in range(columns))
            p2 = sum(((words2[j] >> k) & 1) << j for j in range(columns))
            kept_pairs.append((p1, p2))
            random_kept += 1

    # ---- phase 2: deterministic top-up ---------------------------------
    generator = PodemGenerator(circuit, config.backtrack_limit)
    deterministic_kept = 0
    attempts = 0
    for index, fault in enumerate(faults):
        if status[index] != _ACTIVE:
            continue
        if config.podem_fault_limit is not None \
                and attempts >= config.podem_fault_limit:
            break
        attempts += 1
        nid = net_ids[index]
        initial = fault.initial_value
        # V2: detect stuck-at-initial at the stem.
        capture = generator.run(Fault(
            kind=FaultKind.STEM,
            polarity=Polarity.SA0 if initial == 0 else Polarity.SA1,
            net=fault.net,
        ))
        if capture.status == "untestable":
            status[index] = _UNTESTABLE
            continue
        if capture.status == "aborted":
            status[index] = _ABORTED
            continue
        # V1: justify the initial value on the stem.
        launch = generator.justify(nid, initial)
        if launch.status == "untestable":
            status[index] = _UNTESTABLE
            continue
        if launch.status == "aborted":
            status[index] = _ABORTED
            continue

        def fill(assignment: Dict[int, int]) -> int:
            pattern = 0
            for j, column_net in enumerate(circuit.input_columns):
                bit = assignment.get(column_net, None)
                if bit is None:
                    bit = rng.randint(0, 1)
                if bit:
                    pattern |= (1 << j)
            return pattern

        kept_pairs.append((fill(launch.assignment), fill(capture.assignment)))
        deterministic_kept += 1
        status[index] = _DETECTED

        # Drop other faults with this pair every block_width pairs.
        if deterministic_kept % config.block_width == 0:
            _drop_with_pairs(circuit, faults, net_ids, status,
                             kept_pairs[-config.block_width:], columns,
                             config.block_width)

    detected = sum(1 for s in status if s == _DETECTED)
    untestable = sum(1 for s in status if s == _UNTESTABLE)
    aborted = sum(1 for s in status if s == _ABORTED)
    return AtpgResult(
        total_faults=len(faults),
        detected=detected,
        proven_untestable=untestable,
        aborted=aborted,
        pattern_count=len(kept_pairs),
        random_patterns=random_kept,
        deterministic_patterns=deterministic_kept,
        prebond_untestable=0,
        patterns=[p2 for _p1, p2 in kept_pairs],
    )


def _drop_with_pairs(circuit: CompiledCircuit, faults: List[TransitionFault],
                     net_ids: List[int], status: List[int],
                     pairs: List[Tuple[int, int]], columns: int,
                     block_width: int) -> None:
    """Fault-simulate recent deterministic pairs against active faults."""
    if not pairs:
        return
    words1 = _patterns_to_words([p1 for p1, _ in pairs], columns)
    words2 = _patterns_to_words([p2 for _, p2 in pairs], columns)
    chunk_mask = (1 << len(pairs)) - 1
    good1 = circuit.simulate(words1, chunk_mask)
    good2 = circuit.simulate(words2, chunk_mask)
    for index, fault in enumerate(faults):
        if status[index] != _ACTIVE:
            continue
        nid = net_ids[index]
        launch = (~good1[nid] & chunk_mask) if fault.slow_to_rise \
            else (good1[nid] & chunk_mask)
        if not launch:
            continue
        det = circuit.propagate_stem(good2, nid, fault.initial_value,
                                     chunk_mask) & launch
        if det:
            status[index] = _DETECTED
