"""The ATPG flow: random patterns with fault dropping, PODEM top-up,
pattern accounting and coverage metrics.

Phases (mirroring a commercial flow):

1. **Random phase** — blocks of packed random patterns are fault-
   simulated with dropping; a pattern is *kept* only if it is the first
   detector of at least one fault (the usual greedy selection that
   keeps random pattern counts honest).
2. **Deterministic phase** — PODEM targets each surviving fault; every
   generated cube is random-filled, batched into blocks, and fault-
   simulated against the remaining faults so one deterministic pattern
   drops many targets.
3. Optional **reverse-order static compaction**.

Coverage uses the test-coverage convention: proven-untestable and
pre-bond-untestable faults are excluded from the denominator (see
:mod:`repro.atpg.faults`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atpg.faults import Fault, FaultKind, FaultList, build_fault_list
from repro.atpg.podem import PodemGenerator
from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import TestView
from repro.runtime import instrument
from repro.util.errors import AtpgError, ConfigError
from repro.util.rng import DeterministicRng


@dataclass
class AtpgConfig:
    """Knobs for one ATPG run."""

    seed: int = 2019
    #: patterns per packed block
    block_width: int = 192
    max_random_blocks: int = 24
    #: stop the random phase after this many detection-free blocks
    stop_after_idle_blocks: int = 2
    backtrack_limit: int = 64
    #: cap on PODEM attempts (None = all undetected faults)
    podem_fault_limit: Optional[int] = None
    #: measure on a deterministic fault subsample (None = full universe)
    fault_sample: Optional[int] = None
    #: reverse-order static compaction of the final pattern set
    compaction: bool = False

    def __post_init__(self) -> None:
        # Bad budgets misbehave deep in the engine (empty packed blocks,
        # negative slicing, PODEM loops that never bound) — reject them
        # at construction, where the mistake is still attributable.
        if self.block_width <= 0:
            raise ConfigError(
                f"block_width must be positive, got {self.block_width}")
        if self.max_random_blocks < 0:
            raise ConfigError(f"max_random_blocks must be >= 0, "
                              f"got {self.max_random_blocks}")
        if self.stop_after_idle_blocks < 0:
            raise ConfigError(f"stop_after_idle_blocks must be >= 0, "
                              f"got {self.stop_after_idle_blocks}")
        if self.backtrack_limit < 0:
            raise ConfigError(f"backtrack_limit must be >= 0, "
                              f"got {self.backtrack_limit}")
        if self.podem_fault_limit is not None and self.podem_fault_limit < 0:
            raise ConfigError(f"podem_fault_limit must be >= 0 or None, "
                              f"got {self.podem_fault_limit}")
        if self.fault_sample is not None and self.fault_sample <= 0:
            raise ConfigError(f"fault_sample must be positive or None, "
                              f"got {self.fault_sample}")


@dataclass
class AtpgResult:
    """Outcome of one ATPG run."""

    total_faults: int
    detected: int
    proven_untestable: int
    aborted: int
    pattern_count: int
    random_patterns: int
    deterministic_patterns: int
    prebond_untestable: int
    #: each pattern is an int whose bit *j* is input column *j*
    patterns: List[int] = field(default_factory=list)

    @property
    def undetected(self) -> int:
        return self.total_faults - self.detected - self.proven_untestable

    @property
    def coverage(self) -> float:
        """Test coverage: detected / (total - proven untestable)."""
        denominator = self.total_faults - self.proven_untestable
        return self.detected / denominator if denominator else 1.0

    @property
    def raw_coverage(self) -> float:
        """Fault coverage over the full (collapsed) universe."""
        return self.detected / self.total_faults if self.total_faults else 1.0


# Fault status codes.
_ACTIVE, _DETECTED, _UNTESTABLE, _ABORTED = 0, 1, 2, 3


class _FaultDispatcher:
    """Pre-resolved simulation ops for each fault."""

    def __init__(self, circuit: CompiledCircuit, faults: Sequence[Fault]) -> None:
        self.ops: List[Tuple] = []
        for fault in faults:
            net_id = circuit.net_ids.get(fault.net)
            if net_id is None:
                raise AtpgError(f"fault site net {fault.net!r} not in circuit")
            value = int(fault.polarity)
            if fault.kind is FaultKind.STEM:
                self.ops.append(("s", net_id, value))
            elif fault.kind is FaultKind.OBS_BRANCH:
                self.ops.append(("o", net_id, value))
            else:
                gate_index = circuit.gate_index_by_name.get(fault.owner)
                if gate_index is None:
                    raise AtpgError(f"branch gate {fault.owner!r} not compiled")
                gate = circuit.gates[gate_index]
                positions = [k for k, nid in enumerate(gate.ins)
                             if nid == net_id]
                if not positions:
                    raise AtpgError(
                        f"branch pin {fault.owner}.{fault.pin} not on net "
                        f"{fault.net}"
                    )
                self.ops.append(("b", gate_index, positions[0], value))

    def detect_word(self, circuit: CompiledCircuit, good: List[int],
                    index: int, mask: int) -> int:
        op = self.ops[index]
        if op[0] == "s":
            return circuit.propagate_stem(good, op[1], op[2], mask)
        if op[0] == "o":
            return circuit.observation_diff(good, op[1], op[2], mask)
        return circuit.propagate_branch(good, op[1], op[2], op[3], mask)


def _patterns_to_words(patterns: Sequence[int], column_count: int
                       ) -> List[int]:
    """Transpose pattern ints (bit j = column j) into per-column words."""
    words = [0] * column_count
    for k, pattern in enumerate(patterns):
        bit = 1 << k
        p = pattern
        j = 0
        while p:
            if p & 1:
                words[j] |= bit
            p >>= 1
            j += 1
    return words


class AtpgEngine:
    """One ATPG session over a test view."""

    def __init__(self, view: TestView, config: Optional[AtpgConfig] = None,
                 fault_list: Optional[FaultList] = None) -> None:
        self.view = view
        self.config = config or AtpgConfig()
        self.circuit = CompiledCircuit(view)
        faults = fault_list or build_fault_list(view)
        if self.config.fault_sample is not None:
            faults = faults.sample(self.config.fault_sample, self.config.seed)
        self.fault_list = faults
        self.dispatcher = _FaultDispatcher(self.circuit, faults.faults)
        self.rng = DeterministicRng(self.config.seed).child(
            "atpg", view.netlist.name)
        # numpy backend: batched bit-plane fault simulation (None when
        # the backend is python, numpy is absent, or a gate has no
        # vectorized model — the per-fault python path then runs).
        self._planes = None
        from repro.runtime.backend import use_numpy
        if use_numpy():
            from repro.atpg.planes import PlaneSimulator
            self._planes = PlaneSimulator.build(self.circuit)

    # ------------------------------------------------------------------
    def _detect_many(self, good: List[int], active: Sequence[int],
                     mask: int) -> List[int]:
        """Detection words for the *active* fault indices, in order —
        byte-identical between the batched plane kernel and the
        per-fault dispatcher loop."""
        if self._planes is not None:
            return self._planes.detect_many(good, self.dispatcher.ops,
                                            active, mask)
        circuit, dispatcher = self.circuit, self.dispatcher
        return [dispatcher.detect_word(circuit, good, fault_index, mask)
                for fault_index in active]

    # ------------------------------------------------------------------
    def run(self) -> AtpgResult:
        config, circuit = self.config, self.circuit
        faults = self.fault_list.faults
        status = [_ACTIVE] * len(faults)
        mask = (1 << config.block_width) - 1
        columns = circuit.input_count

        kept_patterns: List[int] = []
        random_kept = 0
        # One preallocated values buffer serves every block of the run:
        # each phase finishes with a block's good-machine values before
        # simulating the next, so reuse is byte-identical to fresh lists.
        good_buffer = circuit.make_buffer()

        # ---- phase 1: random blocks with dropping ----------------------
        with instrument.phase("atpg.random"):
            idle = 0
            for _block in range(config.max_random_blocks):
                active = [i for i, s in enumerate(status) if s == _ACTIVE]
                if not active:
                    break
                instrument.count("atpg.random_blocks")
                input_words = [self.rng.getrandbits(config.block_width)
                               for _ in range(columns)]
                good = circuit.simulate(input_words, mask, out=good_buffer)
                first_detector: Dict[int, int] = {}  # pattern k -> #faults
                dets = self._detect_many(good, active, mask)
                for fault_index, det in zip(active, dets):
                    if det:
                        status[fault_index] = _DETECTED
                        k = (det & -det).bit_length() - 1
                        first_detector[k] = first_detector.get(k, 0) + 1
                if not first_detector:
                    idle += 1
                    if idle >= config.stop_after_idle_blocks:
                        break
                    continue
                idle = 0
                for k in sorted(first_detector):
                    pattern = 0
                    for j in range(columns):
                        if (input_words[j] >> k) & 1:
                            pattern |= (1 << j)
                    kept_patterns.append(pattern)
                    random_kept += 1
        instrument.count("atpg.random_patterns", random_kept)

        # ---- phase 2: PODEM top-up -------------------------------------
        generator = PodemGenerator(circuit, config.backtrack_limit)
        deterministic_kept = 0
        batch: List[int] = []
        batch_targets: List[int] = []

        def flush_batch() -> None:
            nonlocal deterministic_kept
            if not batch:
                return
            words = _patterns_to_words(batch, columns)
            batch_mask = (1 << len(batch)) - 1
            good = circuit.simulate(words, batch_mask, out=good_buffer)
            useful = set()
            active = [i for i, s in enumerate(status) if s == _ACTIVE]
            dets = self._detect_many(good, active, batch_mask)
            for fault_index, det in zip(active, dets):
                if det:
                    status[fault_index] = _DETECTED
                    useful.add((det & -det).bit_length() - 1)
            # Targeted faults were verified by construction; keep their
            # patterns even if the batch resim attributes them elsewhere.
            useful.update(
                k for k, target in enumerate(batch_targets)
                if status[target] == _DETECTED
            )
            for k in sorted(useful):
                kept_patterns.append(batch[k])
                deterministic_kept += 1
            batch.clear()
            batch_targets.clear()

        podem_budget = config.podem_fault_limit
        attempts = 0
        with instrument.phase("atpg.podem"):
            for fault_index, fault in enumerate(faults):
                if status[fault_index] != _ACTIVE:
                    continue
                if podem_budget is not None and attempts >= podem_budget:
                    break
                attempts += 1
                outcome = generator.run(fault)
                instrument.count("atpg.podem_attempts")
                instrument.count("atpg.podem_backtracks", outcome.backtracks)
                if outcome.status == "untestable":
                    status[fault_index] = _UNTESTABLE
                elif outcome.status == "aborted":
                    status[fault_index] = _ABORTED
                else:
                    pattern = 0
                    for j, nid in enumerate(circuit.input_columns):
                        if nid in outcome.assignment:
                            bit = outcome.assignment[nid]
                        else:
                            bit = self.rng.randint(0, 1)
                        if bit:
                            pattern |= (1 << j)
                    batch.append(pattern)
                    batch_targets.append(fault_index)
                    status[fault_index] = _DETECTED  # verified by flush resim
                    if len(batch) >= config.block_width:
                        status[fault_index] = _ACTIVE
                        flush_batch()
            flush_batch()
        instrument.count("atpg.deterministic_patterns", deterministic_kept)

        # ---- phase 3: optional reverse-order compaction ------------------
        if config.compaction and kept_patterns:
            with instrument.phase("atpg.compaction"):
                kept_patterns = self._compact(kept_patterns)

        detected = sum(1 for s in status if s == _DETECTED)
        untestable = sum(1 for s in status if s == _UNTESTABLE)
        aborted = sum(1 for s in status if s == _ABORTED)
        return AtpgResult(
            total_faults=len(faults),
            detected=detected,
            proven_untestable=untestable,
            aborted=aborted,
            pattern_count=len(kept_patterns),
            random_patterns=random_kept,
            deterministic_patterns=deterministic_kept,
            prebond_untestable=self.fault_list.prebond_untestable,
            patterns=kept_patterns,
        )

    # ------------------------------------------------------------------
    def _compact(self, patterns: List[int]) -> List[int]:
        """Reverse-order static compaction: re-simulate in reverse and
        keep only patterns that first-detect some fault."""
        config, circuit = self.config, self.circuit
        status = [_ACTIVE] * len(self.fault_list.faults)
        keep: List[int] = []
        reverse = list(reversed(patterns))
        width = config.block_width
        good_buffer = circuit.make_buffer()
        for start in range(0, len(reverse), width):
            chunk = reverse[start:start + width]
            words = _patterns_to_words(chunk, circuit.input_count)
            chunk_mask = (1 << len(chunk)) - 1
            good = circuit.simulate(words, chunk_mask, out=good_buffer)
            useful = set()
            active = [i for i, s in enumerate(status) if s == _ACTIVE]
            dets = self._detect_many(good, active, chunk_mask)
            for fault_index, det in zip(active, dets):
                if det:
                    status[fault_index] = _DETECTED
                    useful.add((det & -det).bit_length() - 1)
            for k in sorted(useful):
                keep.append(chunk[k])
        keep.reverse()
        return keep


def run_stuck_at_atpg(view: TestView, config: Optional[AtpgConfig] = None,
                      fault_list: Optional[FaultList] = None) -> AtpgResult:
    """Convenience wrapper: one stuck-at ATPG run over *view*."""
    return AtpgEngine(view, config, fault_list).run()
