"""ATPG and fault simulation (commercial-ATPG stand-in).

Components:

* :mod:`repro.atpg.faults` — stuck-at fault universe with structural
  equivalence collapsing; pre-bond-untestable exclusion.
* :mod:`repro.atpg.sim` — compiled combinational circuit over a
  :class:`~repro.dft.testview.TestView`; packed parallel-pattern
  simulation (one Python big-int per net per block) and event-driven,
  cone-limited faulty-machine propagation.
* :mod:`repro.atpg.podem` — PODEM deterministic test generation for
  random-resistant faults (5-valued D-calculus).
* :mod:`repro.atpg.engine` — the ATPG flow: random-pattern phase with
  fault dropping, PODEM top-up, pattern accounting, coverage metrics.
* :mod:`repro.atpg.transition` — two-pattern transition-fault testing
  built on the same machinery.
"""

from repro.atpg.faults import (
    Fault,
    FaultKind,
    FaultList,
    Polarity,
    build_fault_list,
)
from repro.atpg.sim import CompiledCircuit
from repro.atpg.engine import AtpgConfig, AtpgResult, run_stuck_at_atpg
from repro.atpg.transition import run_transition_atpg
from repro.atpg.podem import PodemGenerator
from repro.atpg.diagnosis import DiagnosisResult, FaultDiagnoser

__all__ = [
    "Fault",
    "FaultKind",
    "FaultList",
    "Polarity",
    "build_fault_list",
    "CompiledCircuit",
    "AtpgConfig",
    "AtpgResult",
    "run_stuck_at_atpg",
    "run_transition_atpg",
    "PodemGenerator",
    "DiagnosisResult",
    "FaultDiagnoser",
]
