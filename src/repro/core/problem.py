"""The WCM problem instance: die + placement + baseline timing + cones.

``build_problem`` performs the pre-algorithm steps of the paper's flow
(Fig. 6): scan stitching, placement, baseline STA, TSV analysis. The
tight-timing clock period is derived from the die *with mandatory
dedicated wrappers inserted* — every inbound TSV receives a test mux in
every method, so the period must budget for that structural overhead;
what differs between methods is only the reuse wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dft.cones import ConeAnalysis
from repro.dft.scan import stitch_scan_chains
from repro.dft.wrapper import dedicated_plan, insert_wrappers
from repro.netlist.core import Netlist, Port, PortKind
from repro.place.placer import PlacementConfig, place_die
from repro.sta.constraints import ClockConstraint, UNCONSTRAINED, tight_period_for
from repro.sta.delay import WireModel
from repro.sta.timer import TimingContext, TimingResult, default_case
from repro.util.errors import ConfigError


@dataclass
class WcmProblem:
    """Everything the WCM algorithms consume for one die."""

    netlist: Netlist  # scan-stitched and placed (the bare die)
    #: STA of the *dedicated-wrapper reference build* under the scenario
    #: clock with the full wire model. Net names survive insertion, so
    #: every query the algorithms make (TSV-net arrival/required, FF
    #: Q/D slack, port slack) already includes the mandatory test muxes
    #: each method must insert anyway; predictions then add only what
    #: reuse changes.
    timing: TimingResult
    #: STA of the reference build in at-speed test mode (test_mode=1);
    #: capture-path predictions read arrivals/requireds from here.
    test_timing: TimingResult
    #: inbound TSV port -> its test mux's output net in the reference
    #: build (stable downstream topology for required-time queries)
    tsv_mux_out: Dict[str, str]
    cones: ConeAnalysis
    #: the reference build itself (for re-timing under another clock)
    dedicated_netlist: Netlist
    #: critical path of the reference build (ps); basis of the tight
    #: clock period.
    dedicated_critical_path_ps: float
    #: reusable STA context for the reference build; ``retime`` reuses
    #: it so constraint sweeps skip the graph preparation.
    timing_context: Optional[TimingContext] = None
    #: cache of cone bitsets keyed by TSV kind, shared by repeated
    #: graph builds over this problem (see ``core.graph``).
    cone_bitset_cache: Dict = field(default_factory=dict)
    #: reference-build wrapper instance -> the bare-netlist object (TSV
    #: port or FF) it was placed at; lets an ECO session mirror a
    #: position edit into ``dedicated_netlist`` without re-inserting.
    dedicated_anchors: Dict[str, str] = field(default_factory=dict)

    # -- convenience views ------------------------------------------------
    @property
    def scan_ffs(self) -> List[str]:
        return [inst.name for inst in self.netlist.scan_flip_flops()]

    @property
    def inbound_tsvs(self) -> List[str]:
        return [p.name for p in self.netlist.inbound_tsvs()]

    @property
    def outbound_tsvs(self) -> List[str]:
        return [p.name for p in self.netlist.outbound_tsvs()]

    def tsvs_of_kind(self, kind: PortKind) -> List[str]:
        if kind is PortKind.TSV_INBOUND:
            return self.inbound_tsvs
        if kind is PortKind.TSV_OUTBOUND:
            return self.outbound_tsvs
        raise ConfigError(f"not a TSV kind: {kind}")

    def location_of(self, name: str):
        return self.netlist.location_of(name)

    def retime(self, clock: ClockConstraint) -> "WcmProblem":
        """Re-run the baseline STAs under a different clock constraint."""
        context = self.timing_context or TimingContext(self.dedicated_netlist)
        timing = context.analyze(
            clock, case=default_case(self.dedicated_netlist, test_mode=0))
        test_timing = context.analyze(
            clock, case=default_case(self.dedicated_netlist, test_mode=1))
        return WcmProblem(
            netlist=self.netlist,
            timing=timing,
            test_timing=test_timing,
            tsv_mux_out=self.tsv_mux_out,
            cones=self.cones,
            dedicated_netlist=self.dedicated_netlist,
            dedicated_critical_path_ps=self.dedicated_critical_path_ps,
            timing_context=context,
            cone_bitset_cache=self.cone_bitset_cache,
            dedicated_anchors=self.dedicated_anchors,
        )


def build_problem(netlist: Netlist, clock: ClockConstraint = UNCONSTRAINED,
                  placement: Optional[PlacementConfig] = None,
                  already_prepared: bool = False) -> WcmProblem:
    """Prepare a die netlist for WCM (stitch, place, analyze).

    With ``already_prepared=True`` the netlist is assumed stitched and
    placed (used when a caller shares one prepared die across several
    method/scenario runs).
    """
    if not already_prepared:
        stitch_scan_chains(netlist)
        place_die(netlist, placement)

    # Dedicated-wrapper reference build: the tight-period basis AND the
    # baseline STA every feasibility prediction is made against.
    wrapped, report = insert_wrappers(netlist, dedicated_plan(netlist))
    stitch_scan_chains(wrapped, restitch=True)
    context = TimingContext(wrapped)
    timing = context.analyze(clock, case=default_case(wrapped, test_mode=0))
    test_timing = context.analyze(clock,
                                  case=default_case(wrapped, test_mode=1))

    return WcmProblem(
        netlist=netlist,
        timing=timing,
        test_timing=test_timing,
        tsv_mux_out=dict(report.mux_out_nets),
        cones=ConeAnalysis(netlist),
        dedicated_netlist=wrapped,
        # The tight period must be feasible for the dedicated reference
        # build in BOTH sign-off modes (functional and at-speed test).
        dedicated_critical_path_ps=max(timing.critical_path_ps,
                                       test_timing.critical_path_ps),
        timing_context=context,
        dedicated_anchors=dict(report.placement_anchors),
    )


def tight_clock_for(problem: WcmProblem, margin: float = 0.08
                    ) -> ClockConstraint:
    """The performance-optimized clock for this die."""
    period = tight_period_for(problem.dedicated_critical_path_ps, margin)
    return ClockConstraint(period_ps=period)
