"""WCM graph construction — Algorithm 1 of the paper.

Nodes: available scan FFs plus the TSVs of one direction that pass the
node filters (``cap_th`` for inbound load, ``s_th`` for outbound
slack). Filtered-out TSVs are recorded; they receive dedicated wrapper
cells and count toward the additional-cell total.

Edges (at least one endpoint a TSV, never FF–FF):

1. ``distance(n1, n2) < d_th`` (ours only — [4] has no distance limit),
2. the method's timing model admits the pair,
3. cones non-overlapped — tested with per-node cone *bitsets*, so the
   O(n²) pair sweep costs one big-int AND per pair — or, when
   overlapped and ``allow_overlap`` is set, the ATPG-backed estimate
   stays within ``cov_th``/``p_th``.

The returned :class:`WcmGraph` carries rejection statistics for the
Fig. 7 edge-count analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import WcmConfig
from repro.core.problem import WcmProblem
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.netlist.core import PortKind
from repro.runtime import instrument, trace
from repro.runtime.backend import use_numpy


#: Relative bucket offsets scanned around a node's bucket by the
#: grid-indexed sweep. Module-level so the verification mutants can
#: patch it (dropping an offset must be caught by the fuzzer).
_GRID_OFFSETS: Tuple[int, ...] = (-1, 0, 1)


@dataclass
class GraphStats:
    """Why edges exist / were rejected (feeds Fig. 7 and Table V)."""

    nodes: int = 0
    ff_nodes: int = 0
    tsv_nodes: int = 0
    excluded_tsvs: int = 0
    edges: int = 0
    #: edges admitted despite overlapped cones (the paper's expansion)
    overlap_edges: int = 0
    rejected_distance: int = 0
    rejected_timing: int = 0
    rejected_overlap: int = 0
    rejected_testability: int = 0


@dataclass
class WcmGraph:
    """The sharing graph for one TSV direction."""

    kind: PortKind
    nodes: List[str]
    is_ff: Dict[str, bool]
    adjacency: Dict[str, Set[str]]
    excluded_tsvs: List[str]
    stats: GraphStats = field(default_factory=GraphStats)

    @property
    def edge_count(self) -> int:
        return sum(len(n) for n in self.adjacency.values()) // 2


def _cone_bitsets(problem: WcmProblem, names: Sequence[str], kind: PortKind
                  ) -> Dict[str, int]:
    """Cone-as-bitset per node: one shared bit index per object name.

    Cones depend only on the (immutable) die topology, so bitsets are
    cached on the problem per TSV direction and shared across repeated
    graph builds (methods, retimes, clique restarts). The bit index
    grows incrementally with newly seen nodes; only AND-emptiness is
    ever consumed, which is invariant to bit assignment.
    """
    index, bitsets = problem.cone_bitset_cache.setdefault(kind, ({}, {}))
    out: Dict[str, int] = {}
    for name in names:
        value = bitsets.get(name)
        if value is None:
            instrument.count("graph.cone_bitset_builds")
            cone = problem.cones.gate_cone(name, kind)
            value = 0
            for item in cone:
                bit = index.get(item)
                if bit is None:
                    bit = len(index)
                    index[item] = bit
                value |= (1 << bit)
            bitsets[name] = value
        out[name] = value
    return out


def _bucket_candidates(tsvs: Sequence[str], location_of, d_th: float):
    """The grid sweep's candidate generator: a spatial hash bucketed at
    cell size ``d_th`` and a function mapping a node name to the TSV
    indices in its 3x3 bucket neighbourhood (ascending). Shared by the
    grid-indexed sweep and the brute-force path's counter parity."""
    inv_cell = 1.0 / d_th

    def bucket_of(name: str) -> Tuple[int, int]:
        x, y = location_of(name)
        return (math.floor(x * inv_cell), math.floor(y * inv_cell))

    buckets: Dict[Tuple[int, int], List[int]] = {}
    for j, tsv in enumerate(tsvs):
        buckets.setdefault(bucket_of(tsv), []).append(j)

    def candidates(name: str) -> List[int]:
        bx, by = bucket_of(name)
        found: List[int] = []
        for dx in _GRID_OFFSETS:
            for dy in _GRID_OFFSETS:
                hit = buckets.get((bx + dx, by + dy))
                if hit:
                    found.extend(hit)
        found.sort()
        return found

    return candidates


def effective_d_th(problem: WcmProblem, config: WcmConfig) -> float:
    """Resolve d_th: explicit um value, or a fraction of die span."""
    if math.isfinite(config.d_th_um) or config.d_th_fraction is None:
        return config.d_th_um
    xs = [p.x for p in problem.netlist.ports.values()]
    ys = [p.y for p in problem.netlist.ports.values()]
    if not xs:
        return config.d_th_um
    span = (max(xs) - min(xs)) + (max(ys) - min(ys))
    return config.d_th_fraction * span


#: edge-memo outcome sentinels (the fourth outcome is an
#: :class:`OverlapEstimate`, kept so threshold re-tunes re-apply
#: ``within`` without re-estimating). ``_REJ_DISTANCE`` appears only
#: in pair logs — distance is re-checked on every build, never
#: memoized.
_EDGE = "edge"
_REJ_TIMING = "timing"
_REJ_OVERLAP = "overlap"
_REJ_DISTANCE = "distance"


def pair_outcome(problem: WcmProblem, config: WcmConfig,
                 model: ReuseTimingModel,
                 estimator: Optional[OverlapTestabilityEstimator],
                 cones: Dict[str, int], kind: PortKind,
                 name_a: str, name_b: str, a_is_ff: bool,
                 edge_memo: Optional[Dict] = None):
    """The post-distance outcome of one candidate pair: a sentinel or
    the pair's :class:`OverlapEstimate`. Shared by the full sweep and
    the session's incremental replay so both apply identical rules."""
    key = ((kind, name_a, name_b, a_is_ff)
           if edge_memo is not None else None)
    outcome = edge_memo.get(key) if key is not None else None
    if outcome is None:
        if not model.pair_feasible(name_a, name_b, kind,
                                   a_is_ff, False):
            outcome = _REJ_TIMING
        elif cones[name_a] & cones[name_b] == 0:
            outcome = _EDGE
        elif not a_is_ff or not config.allow_overlap \
                or estimator is None:
            # The paper's relaxation (Fig. 4) concerns reusing a
            # *scan FF* despite overlapped cones; TSV-TSV sharing
            # keeps the strict non-overlap rule in every method.
            outcome = _REJ_OVERLAP
        else:
            overlap = problem.cones.overlap(name_a, name_b, kind)
            outcome = estimator.estimate(name_a, name_b, kind, overlap)
        if key is not None:
            edge_memo[key] = outcome
    return outcome


def apply_outcome(outcome, name_a: str, name_b: str,
                  adjacency: Dict[str, Set[str]], stats: GraphStats,
                  config: WcmConfig) -> None:
    """Fold one pair outcome into adjacency/statistics — the single
    place edges, rejection counts and coverage-drop observations are
    produced, for both the full sweep and the incremental replay."""
    if outcome is _REJ_DISTANCE:
        stats.rejected_distance += 1
    elif outcome is _EDGE:
        adjacency[name_a].add(name_b)
        adjacency[name_b].add(name_a)
        stats.edges += 1
    elif outcome is _REJ_TIMING:
        stats.rejected_timing += 1
    elif outcome is _REJ_OVERLAP:
        stats.rejected_overlap += 1
    else:
        if trace.active() is not None:
            trace.observe("graph.coverage_drop", outcome.coverage_drop)
        if outcome.within(config.cov_th, config.p_th):
            adjacency[name_a].add(name_b)
            adjacency[name_b].add(name_a)
            stats.edges += 1
            stats.overlap_edges += 1
        else:
            stats.rejected_testability += 1


def build_wcm_graph(problem: WcmProblem, kind: PortKind,
                    available_ffs: Sequence[str], config: WcmConfig,
                    timing_model: Optional[ReuseTimingModel] = None,
                    estimator: Optional[OverlapTestabilityEstimator] = None,
                    use_grid: bool = True,
                    edge_memo: Optional[Dict] = None,
                    pair_log: Optional[Dict] = None) -> WcmGraph:
    """Algorithm 1: build the sharing graph for one TSV direction.

    When the distance limit is active the pair sweep is grid-indexed: a
    spatial hash bucketed at ``d_th`` yields the candidate pairs (a
    superset of all pairs with Manhattan distance < ``d_th``), and the
    pairs in non-neighbouring buckets are charged to
    ``rejected_distance`` arithmetically. Candidate pairs still run the
    exact distance check, so edges, statistics and estimator call order
    are identical to the brute-force sweep (``use_grid=False``).

    *edge_memo* (a caller-owned dict, used by ECO sessions) memoizes
    each candidate pair's post-distance outcome — timing rejection,
    cone-overlap rejection, clean edge, or the testability estimate —
    keyed by ``(kind, name_a, name_b, a_is_ff)``. The caller must drop
    every entry touching a node whose position, timing signature or
    cone changed. Distance is never memoized (position-dependent and
    cheap) and estimates are stored as values, so ``d_th``/``cov_th``
    re-tunes stay correct without invalidation; coverage-drop
    observations are re-emitted on hits, keeping stats, counters and
    manifests byte-identical to an unmemoized build.

    *pair_log*, when given, records every visited candidate pair as
    ``(name_a, name_b, a_is_ff) -> outcome`` (including exact-distance
    rejections) — the session's incremental replay re-derives the next
    build from it by re-considering only pairs touching dirty nodes.
    """
    model = timing_model or ReuseTimingModel(problem, config)
    stats = GraphStats()

    # ---- node construction --------------------------------------------
    tsvs: List[str] = []
    excluded: List[str] = []
    for tsv in problem.tsvs_of_kind(kind):
        if kind is PortKind.TSV_INBOUND:
            eligible = model.inbound_node_eligible(tsv)
        else:
            eligible = model.outbound_node_eligible(tsv)
        (tsvs if eligible else excluded).append(tsv)

    ffs = list(available_ffs)
    nodes = ffs + tsvs
    is_ff = {name: True for name in ffs}
    is_ff.update({name: False for name in tsvs})
    adjacency: Dict[str, Set[str]] = {name: set() for name in nodes}

    stats.ff_nodes = len(ffs)
    stats.tsv_nodes = len(tsvs)
    stats.nodes = len(nodes)
    stats.excluded_tsvs = len(excluded)

    cones = _cone_bitsets(problem, nodes, kind)
    d_th = effective_d_th(problem, config)
    # d_th guards wire delay and routing congestion; the unconstrained
    # area scenario imposes neither.
    check_distance = math.isfinite(d_th) and config.scenario.is_timed

    # ---- edge construction ----------------------------------------------
    def consider(name_a: str, name_b: str, a_is_ff: bool,
                 skip_distance: bool = False) -> None:
        if check_distance and not skip_distance \
                and model.distance_um(name_a, name_b) >= d_th:
            outcome = _REJ_DISTANCE
        else:
            outcome = pair_outcome(problem, config, model, estimator,
                                   cones, kind, name_a, name_b,
                                   a_is_ff, edge_memo)
        if pair_log is not None:
            pair_log[(name_a, name_b, a_is_ff)] = outcome
        apply_outcome(outcome, name_a, name_b, adjacency, stats, config)

    total_pairs = len(tsvs) * (len(tsvs) - 1) // 2 + len(ffs) * len(tsvs)
    if not (check_distance and use_grid):
        for i, tsv_a in enumerate(tsvs):
            for tsv_b in tsvs[i + 1:]:
                consider(tsv_a, tsv_b, a_is_ff=False)
        for ff in ffs:
            for tsv in tsvs:
                consider(ff, tsv, a_is_ff=True)
        # Counter parity with the grid-indexed path (so `repro trace
        # diff` sees no drift between modes): report the candidate/
        # skipped split the grid sweep would have produced over the
        # same geometry. With no distance check there is no grid — the
        # sweep visits every pair; with one, recount the 3x3 bucket
        # candidates without re-running any feasibility work.
        if not check_distance:
            candidate_pairs = total_pairs
        elif d_th <= 0.0:
            candidate_pairs = 0
        else:
            candidates = _bucket_candidates(tsvs, problem.location_of, d_th)
            candidate_pairs = sum(
                sum(1 for j in candidates(tsv_a) if j > i)
                for i, tsv_a in enumerate(tsvs))
            candidate_pairs += sum(len(candidates(ff)) for ff in ffs)
        instrument.count("graph.grid_candidate_pairs", candidate_pairs)
        instrument.count("graph.grid_skipped_pairs",
                         total_pairs - candidate_pairs)
    elif d_th <= 0.0:
        # distance >= d_th holds for every pair: all rejected, no sweep.
        stats.rejected_distance += total_pairs
        instrument.count("graph.grid_candidate_pairs", 0)
        instrument.count("graph.grid_skipped_pairs", total_pairs)
    else:
        # Spatial hash at cell size d_th: any pair with Manhattan
        # distance < d_th sits in the same or an adjacent bucket, so
        # the 3x3 neighbourhood is a sound candidate superset.
        location_of = problem.location_of
        candidates = _bucket_candidates(tsvs, location_of, d_th)

        candidate_pairs = 0
        if not use_numpy():
            for i, tsv_a in enumerate(tsvs):
                for j in candidates(tsv_a):
                    if j <= i:
                        continue
                    candidate_pairs += 1
                    consider(tsv_a, tsvs[j], a_is_ff=False)
            for ff in ffs:
                for j in candidates(ff):
                    candidate_pairs += 1
                    consider(ff, tsvs[j], a_is_ff=True)
        else:
            # Numpy backend: all candidate distance checks run as one
            # vectorized compare, then the survivors run the remaining
            # checks in the same per-node ascending order — edges,
            # statistics and estimator call order are byte-identical to
            # the scalar sweep (same float64 Manhattan arithmetic, same
            # `< d_th` predicate against the same coordinates).
            import numpy as np

            node_names: List[str] = []
            node_ff: List[bool] = []
            node_js: List[List[int]] = []
            node_x: List[float] = []
            node_y: List[float] = []
            for i, tsv_a in enumerate(tsvs):
                js = [j for j in candidates(tsv_a) if j > i]
                if js:
                    x, y = location_of(tsv_a)
                    node_names.append(tsv_a)
                    node_ff.append(False)
                    node_js.append(js)
                    node_x.append(x)
                    node_y.append(y)
                    candidate_pairs += len(js)
            for ff in ffs:
                js = candidates(ff)
                if js:
                    x, y = location_of(ff)
                    node_names.append(ff)
                    node_ff.append(True)
                    node_js.append(js)
                    node_x.append(x)
                    node_y.append(y)
                    candidate_pairs += len(js)

            if candidate_pairs:
                counts = np.array([len(js) for js in node_js],
                                  dtype=np.intp)
                flat_j = np.array([j for js in node_js for j in js],
                                  dtype=np.intp)
                tsv_x = np.array([location_of(t)[0] for t in tsvs],
                                 dtype=np.float64)
                tsv_y = np.array([location_of(t)[1] for t in tsvs],
                                 dtype=np.float64)
                ax = np.repeat(np.array(node_x, dtype=np.float64), counts)
                ay = np.repeat(np.array(node_y, dtype=np.float64), counts)
                dist = (np.abs(ax - tsv_x[flat_j])
                        + np.abs(ay - tsv_y[flat_j]))
                keep = (dist < d_th).tolist()
                stats.rejected_distance += keep.count(False)
                pos = 0
                for name, js, a_is_ff in zip(node_names, node_js,
                                             node_ff):
                    for offset, j in enumerate(js):
                        if keep[pos + offset]:
                            consider(name, tsvs[j], a_is_ff,
                                     skip_distance=True)
                        elif pair_log is not None:
                            # bulk-counted above; log for the replay
                            pair_log[(name, tsvs[j], a_is_ff)] = \
                                _REJ_DISTANCE
                    pos += len(js)
        # Pairs outside the neighbourhood have distance >= d_th by
        # construction; charge them without visiting.
        stats.rejected_distance += total_pairs - candidate_pairs
        instrument.count("graph.grid_candidate_pairs", candidate_pairs)
        instrument.count("graph.grid_skipped_pairs",
                         total_pairs - candidate_pairs)

    if trace.active() is not None:
        trace.observe("graph.edges", stats.edges)
    return WcmGraph(kind=kind, nodes=nodes, is_ff=is_ff,
                    adjacency=adjacency, excluded_tsvs=excluded,
                    stats=stats)
