"""Incremental ECO sessions: scoped re-solve instead of cold WCM runs.

The paper's flow (Fig. 6) re-runs sharing-graph construction, clique
partitioning and STA from scratch for every die configuration, yet a
typical ECO edit — move one FF or TSV, nudge ``d_th``/``cov_th`` —
perturbs only a small neighbourhood of the sharing graph.
:class:`WcmSession` loads a die once and serves a typed edit stream,
re-solving incrementally:

* **Baseline delta.** A position edit is mirrored into the dedicated
  reference build (same-name objects plus the wrapper gear anchored at
  them, via ``WcmProblem.dedicated_anchors``); the warm
  :class:`~repro.sta.timer.TimingContext` refreshes loads/wire delays
  with ``invalidate_nets`` and re-times both sign-off modes with
  ``analyze_delta`` instead of full sweeps.
* **Dirty region.** Per-node signatures capture everything the pair
  feasibility checks read (position, baseline arrivals/requireds,
  loads). Memoized ``pair_feasible`` outcomes survive between solves
  for node pairs whose signatures did not change; the sharing graph is
  rebuilt through the memo, so rejection statistics and trace counters
  come out identical to a cold build.
* **Partition reuse.** ``merged_state`` outcomes are memoized on state
  values (:func:`repro.core.clique._merged_state_fn`); when an edit
  leaves a kind's graph and node states untouched,
  :func:`repro.core.clique.repartition` re-emits the frozen partition
  without re-running Algorithm 2.
* **Sign-off cache.** Wrapped builds are cached per plan fingerprint;
  a cache hit mirrors the moved positions, invalidates the affected
  nets and delta-times both modes on the entry's warm context —
  skipping insertion, restitching and full STA.
* **Fallback.** Structural edits (``AddTsv``/``RemoveTsv``), a scan
  restitch-order change, or a dirty fraction above ``fallback_ratio``
  drop the scoped path and re-solve cold (the memo caches are rebuilt
  on the way through).

Every scoped mechanism is differentially verified against a cold solve
as the oracle — results, per-category stats and manifest fingerprints
must be byte-identical (``repro.verify`` check ``eco``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.clique import CliquePartition, Clique, partition_cliques, repartition
from repro.core.config import WcmConfig
from repro.core.flow import FlowHooks, WcmRunResult, run_wcm_flow
from repro.core.graph import (GraphStats, WcmGraph, _REJ_DISTANCE,
                              _bucket_candidates, _cone_bitsets,
                              apply_outcome, build_wcm_graph,
                              effective_d_th, pair_outcome)
from repro.core.problem import WcmProblem, build_problem
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.dft.scan import _serpentine_order, stitch_scan_chains
from repro.dft.wrapper import InsertionReport, insert_wrappers
from repro.netlist.core import Netlist, PortKind
from repro.runtime import instrument, trace
from repro.sta.timer import TimingContext, TimingResult, default_case
from repro.util.errors import ConfigError


# ---------------------------------------------------------------------------
# Edit stream
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MoveFf:
    """Move a scan flip-flop to a new site (um)."""

    name: str
    x: float
    y: float


@dataclass(frozen=True)
class MoveTsv:
    """Move a TSV landing pad to a new site (um)."""

    name: str
    x: float
    y: float


@dataclass(frozen=True)
class AddTsv:
    """Add a TSV port.

    An inbound TSV drives a fresh net (``net=None``) or an existing
    driverless net; an outbound TSV observes an existing net (``net``
    required).
    """

    name: str
    kind: PortKind
    x: float
    y: float
    net: Optional[str] = None


@dataclass(frozen=True)
class RemoveTsv:
    """Remove a TSV port (its net is deleted when left unconnected;
    removing an inbound TSV leaves its sinks undriven — their arrivals
    fall back to 0, matching a cold solve of the same netlist)."""

    name: str


@dataclass(frozen=True)
class SetThreshold:
    """Re-tune ``d_th`` (um) and/or ``cov_th`` without touching the die."""

    d_th_um: Optional[float] = None
    cov_th: Optional[float] = None


Edit = Union[MoveFf, MoveTsv, AddTsv, RemoveTsv, SetThreshold]


# ---------------------------------------------------------------------------
# Memoized flow pieces
# ---------------------------------------------------------------------------
class _MemoModel(ReuseTimingModel):
    """ReuseTimingModel with a cross-solve ``pair_feasible`` memo.

    The memo is keyed by the pair identity only; the session drops
    every entry touching a node whose signature changed, so a hit is
    always the value the uncached check would recompute.
    """

    def __init__(self, problem: WcmProblem, config: WcmConfig,
                 pair_memo: Dict) -> None:
        super().__init__(problem, config)
        self._pair_memo = pair_memo

    def pair_feasible(self, name_a: str, name_b: str, kind: PortKind,
                      a_is_ff: bool, b_is_ff: bool) -> bool:
        key = (kind, name_a, name_b, a_is_ff, b_is_ff)
        memo = self._pair_memo
        try:
            return memo[key]
        except KeyError:
            result = super().pair_feasible(name_a, name_b, kind,
                                           a_is_ff, b_is_ff)
            memo[key] = result
            return result


@dataclass
class _WrappedBuild:
    """One cached sign-off build (keyed by its plan's fingerprint)."""

    wrapped: Netlist
    report: InsertionReport
    context: TimingContext
    functional: TimingResult
    test: TimingResult
    #: bare anchor (FF/TSV) positions at the entry's last STA
    positions: Dict[str, Tuple[float, float]]
    #: serpentine restitch order the build was stitched with
    order: List[str]
    #: bare anchor name -> wrapper instances placed at it
    anchors_rev: Dict[str, List[str]]


@dataclass
class _GraphCache:
    """One kind's previous sharing-graph build, replayable pair by
    pair. ``pair_log`` maps every visited candidate pair to its
    outcome (see :func:`repro.core.graph.build_wcm_graph`); a re-solve
    purges entries touching dirty nodes, re-considers only the pairs a
    fresh grid query yields for them, and re-tallies the rest."""

    ffs: List[str]
    tsvs: List[str]
    excluded: List[str]
    pair_log: Dict[Tuple[str, str, bool], object]
    d_th: float
    check_distance: bool


_SCAN_PORT_KINDS = (PortKind.SCAN_IN, PortKind.SCAN_OUT,
                    PortKind.SCAN_ENABLE)


def _scan_port_nets(netlist: Netlist) -> Set[str]:
    return {port.net for port in netlist.ports.values()
            if port.kind in _SCAN_PORT_KINDS and port.net is not None}


def _restitch_in_place(netlist: Netlist) -> Set[str]:
    """Rewire the scan chains of an already-stitched netlist and return
    the nets whose timing quantities can change. A chain-order change
    only re-routes SI wiring — untimed and excluded from every load —
    except at the scan ports: the shared scan-enable net (its SE sink
    order feeds the load sum), the scan-in nets, and the old and new
    chain-tail Q nets that carry the scan-out ports (an output-port
    sink adds load and an endpoint)."""
    affected = _scan_port_nets(netlist)
    stitch_scan_chains(netlist, restitch=True)
    return affected | _scan_port_nets(netlist)


def _reverse_anchors(anchors: Dict[str, str]) -> Dict[str, List[str]]:
    rev: Dict[str, List[str]] = {}
    for inst, anchor in anchors.items():
        rev.setdefault(anchor, []).append(inst)
    return rev


def _copy_partition(partition: CliquePartition) -> CliquePartition:
    """Pristine copy to freeze — the flow mutates partitions in place
    (FF adoption), states are never mutated and may be shared."""
    return CliquePartition(
        kind=partition.kind,
        cliques=[Clique(kind=c.kind, tsvs=list(c.tsvs), ff=c.ff,
                        state=c.state) for c in partition.cliques],
        rejected_merges=partition.rejected_merges,
        merges=partition.merges,
        singleton_rescues=partition.singleton_rescues,
    )


def _graph_sig(graph: WcmGraph):
    """Value identity of a sharing graph (nodes, edges, filter stats)."""
    return (tuple(graph.nodes),
            tuple(sorted((name, v) for name, v in graph.is_ff.items())),
            tuple(sorted((name, tuple(sorted(neigh)))
                         for name, neigh in graph.adjacency.items())),
            tuple(graph.excluded_tsvs),
            graph.stats)


class _SessionHooks(FlowHooks):
    def __init__(self, session: "WcmSession") -> None:
        self._session = session

    def make_model(self, problem, config):
        return self._session._solve_model

    def make_estimator(self, problem, config):
        return self._session._make_estimator(problem, config)

    def build_graph(self, problem, kind, available_ffs, config, model,
                    estimator):
        return self._session._build_graph(problem, kind, available_ffs,
                                          config, model, estimator)

    def partition(self, graph, model):
        return self._session._partition(graph, model)

    def signoff(self, problem, plan, config):
        return self._session._signoff(problem, plan, config)


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------
class WcmSession:
    """Hold one die and serve incremental WCM re-solves over an edit
    stream. See the module docstring for the mechanism; results are
    byte-identical to ``run_wcm_flow`` on a freshly built problem.

    The session owns *netlist* (edits mutate it) and the returned
    ``WcmRunResult.wrapped_netlist`` objects may be shared across
    solves — treat both as read-only outside the edit API.
    """

    #: plan-cache size bound (entries are whole wrapped netlists)
    MAX_PLAN_CACHE = 64

    def __init__(self, netlist: Netlist, config: WcmConfig, *,
                 placement=None, already_prepared: bool = False,
                 fallback_ratio: float = 0.25) -> None:
        self.config = config
        self.fallback_ratio = fallback_ratio
        self._clock = config.scenario.clock
        self.netlist = netlist
        with instrument.phase("session.load"):
            self.problem = build_problem(
                netlist, clock=self._clock, placement=placement,
                already_prepared=already_prepared)
        # cross-solve memos
        self._pair_memo: Dict = {}
        self._edge_memo: Dict = {}
        self._merge_memo: Dict = {}
        self._graph_cache: Dict[PortKind, _GraphCache] = {}
        self._frozen: Dict[PortKind, Tuple[object, CliquePartition]] = {}
        self._plan_cache: Dict[tuple, _WrappedBuild] = {}
        self._node_sigs: Dict[str, tuple] = {}
        self._estimator: Optional[OverlapTestabilityEstimator] = None
        # pending-edit state
        self._moved: Set[str] = set()
        self._structural = False
        # baseline bookkeeping
        self._base_rev = _reverse_anchors(self.problem.dedicated_anchors)
        self._base_order = self._dedicated_order()
        # telemetry of the last solve (read by the CLI)
        self.last_dirty_frac = 0.0
        self.last_fallback: Optional[str] = None
        self.edit_count = 0
        # per-solve scratch (set in solve())
        self._solve_model: Optional[_MemoModel] = None
        self._solve_dirty: Set[str] = set()

    # ------------------------------------------------------------------
    # Edits
    # ------------------------------------------------------------------
    def apply(self, edit: Edit) -> None:
        """Queue one edit; the next :meth:`solve` accounts for it."""
        instrument.count("session.edits")
        self.edit_count += 1
        netlist = self.netlist
        if isinstance(edit, MoveFf):
            inst = netlist.instance(edit.name)
            if not inst.is_scan:
                raise ConfigError(f"{edit.name} is not a scan flip-flop")
            inst.x, inst.y = edit.x, edit.y
            self._moved.add(edit.name)
        elif isinstance(edit, MoveTsv):
            port = netlist.port(edit.name)
            if not port.is_tsv:
                raise ConfigError(f"{edit.name} is not a TSV")
            port.x, port.y = edit.x, edit.y
            self._moved.add(edit.name)
        elif isinstance(edit, AddTsv):
            self._add_tsv(edit)
            self._structural = True
        elif isinstance(edit, RemoveTsv):
            self._remove_tsv(edit)
            self._structural = True
        elif isinstance(edit, SetThreshold):
            changes = {}
            if edit.d_th_um is not None:
                changes["d_th_um"] = edit.d_th_um
            if edit.cov_th is not None:
                changes["cov_th"] = edit.cov_th
            if changes:
                self.config = dataclasses.replace(self.config, **changes)
        else:
            raise ConfigError(f"unknown edit {edit!r}")

    def _add_tsv(self, edit: AddTsv) -> None:
        netlist = self.netlist
        if edit.kind not in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND):
            raise ConfigError(f"AddTsv kind must be a TSV kind, "
                              f"got {edit.kind}")
        if edit.kind is PortKind.TSV_OUTBOUND:
            if edit.net is None:
                raise ConfigError("AddTsv(outbound) needs net= — the TSV "
                                  "observes an existing signal")
            netlist.net(edit.net)  # must exist
            net_name = edit.net
        else:
            net_name = edit.net if edit.net is not None \
                else f"{edit.name}_net"
        port = netlist.add_port(edit.name, edit.kind)
        netlist.connect_port(edit.name, net_name)
        port.x, port.y = edit.x, edit.y

    def _remove_tsv(self, edit: RemoveTsv) -> None:
        netlist = self.netlist
        port = netlist.port(edit.name)
        if not port.is_tsv:
            raise ConfigError(f"{edit.name} is not a TSV")
        net_name = port.net
        if net_name is not None:
            net = netlist.net(net_name)
            pin = port.pin()
            if net.driver == pin:
                net.driver = None
            net.sinks = [s for s in net.sinks if s != pin]
            if net.driver is None and not net.sinks:
                del netlist.nets[net_name]
        del netlist.ports[edit.name]
        netlist._topo_cache = None

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> WcmRunResult:
        """Re-solve the die under the pending edits."""
        with instrument.phase("session.solve"):
            return self._solve()

    def _solve(self) -> WcmRunResult:
        self.last_fallback = None
        if self._structural:
            self._fallback("structural")
        else:
            self._refresh_baseline()

        model = _MemoModel(self.problem, self.config, self._pair_memo)
        sigs = self._node_signatures(model)
        dirty = {name for name in set(sigs) | set(self._node_sigs)
                 if sigs.get(name) != self._node_sigs.get(name)}
        frac = (len(dirty) / max(1, len(sigs))
                if self._node_sigs else 1.0)
        self.last_dirty_frac = frac
        trace.observe("session.dirty_frac", frac)
        if self.last_fallback is None and self._node_sigs \
                and frac > self.fallback_ratio:
            self._fallback("dirty_frac")
            # the problem was rebuilt; re-derive the model and
            # signatures from it (the memo dict was cleared in place,
            # so the fresh model starts cold as intended)
            model = _MemoModel(self.problem, self.config, self._pair_memo)
            sigs = self._node_signatures(model)
            dirty = set(sigs)
        if dirty:
            # in place: the model already holds a reference to this dict
            for memo in (self._pair_memo, self._edge_memo):
                stale = [key for key in memo
                         if key[1] in dirty or key[2] in dirty]
                for key in stale:
                    del memo[key]
        self._node_sigs = sigs
        self._solve_model = model
        self._solve_dirty = dirty
        self._moved.clear()

        result = run_wcm_flow(self.problem, self.config,
                              hooks=_SessionHooks(self))
        self._solve_model = None
        return result

    def _fallback(self, reason: str) -> None:
        """Drop the scoped path: rebuild the problem cold and let the
        memo caches refill on the way through the flow."""
        instrument.count("session.fallback")
        self.last_fallback = reason
        self.problem = build_problem(self.netlist, clock=self._clock,
                                     already_prepared=True)
        self._base_rev = _reverse_anchors(self.problem.dedicated_anchors)
        self._base_order = self._dedicated_order()
        self._pair_memo.clear()
        self._edge_memo.clear()
        self._graph_cache.clear()
        self._frozen.clear()
        self._node_sigs.clear()
        if self._structural:
            # cached wrapped builds and the testability estimator embed
            # the old die structure
            self._plan_cache.clear()
            self._estimator = None
        self._structural = False
        self._moved.clear()

    # -- baseline refresh ----------------------------------------------
    def _dedicated_order(self) -> List[str]:
        return [ff.name for ff in _serpentine_order(
            self.problem.dedicated_netlist.scan_flip_flops())]

    def _refresh_baseline(self) -> None:
        """Mirror pending moves into the dedicated reference build and
        delta-time it. When the moves change the serpentine order the
        dedicated build is first rewired in place — restitching removes
        and recreates the scan ports/nets exactly as a cold
        ``insert_wrappers`` + restitch would — and the scan-affected
        nets simply join the dirty set (see :func:`_restitch_in_place`).
        Cones, the mux-out map and the anchors are position-independent
        and survive; the node signatures pick up every timing shift, so
        the scoped graph/partition path continues normally."""
        if not self._moved:
            return
        problem = self.problem
        dedicated = problem.dedicated_netlist
        context = problem.timing_context
        dirty_nets = self._mirror_positions(
            dedicated, self._moved, self._base_rev)
        if self._dedicated_order() != self._base_order:
            instrument.count("session.restitch")
            self.last_fallback = "restitch"
            with instrument.phase("session.restitch"):
                dirty_nets |= _restitch_in_place(dedicated)
            self._base_order = self._dedicated_order()
        if context is None:
            context = problem.timing_context = TimingContext(dedicated)
            with instrument.phase("session.baseline"):
                timing = context.analyze(
                    self._clock, case=default_case(dedicated, test_mode=0))
                test_timing = context.analyze(
                    self._clock, case=default_case(dedicated, test_mode=1))
        else:
            with instrument.phase("session.baseline"):
                context.invalidate_nets(sorted(dirty_nets))
                timing = context.analyze_delta(
                    self._clock, case=default_case(dedicated, test_mode=0),
                    previous=problem.timing, dirty_nets=dirty_nets)
                test_timing = context.analyze_delta(
                    self._clock, case=default_case(dedicated, test_mode=1),
                    previous=problem.test_timing, dirty_nets=dirty_nets)
        problem.timing = timing
        problem.test_timing = test_timing
        problem.dedicated_critical_path_ps = max(
            timing.critical_path_ps, test_timing.critical_path_ps)

    def _mirror_positions(self, target: Netlist, moved,
                          anchors_rev: Dict[str, List[str]]) -> Set[str]:
        """Copy the bare-netlist positions of *moved* objects onto their
        same-name twins in *target* plus the wrapper gear anchored at
        them; return the incident nets (the dirty set for STA)."""
        dirty: Set[str] = set()

        def reposition(name: str, x: float, y: float) -> None:
            inst = target.instances.get(name)
            if inst is not None:
                inst.x, inst.y = x, y
                dirty.update(inst.connections.values())
                return
            port = target.ports.get(name)
            if port is not None:
                port.x, port.y = x, y
                if port.net is not None:
                    dirty.add(port.net)

        for name in moved:
            source = self.netlist.instances.get(name) \
                or self.netlist.ports.get(name)
            if source is None:
                continue
            reposition(name, source.x, source.y)
            for anchored in anchors_rev.get(name, ()):
                reposition(anchored, source.x, source.y)
        return dirty

    # -- node signatures ------------------------------------------------
    def _node_signatures(self, model: ReuseTimingModel) -> Dict[str, tuple]:
        """Everything ``pair_feasible``/``initial_state`` read per node;
        an unchanged signature certifies every memoized check touching
        the node."""
        problem = self.problem
        netlist = problem.netlist
        t, tt = problem.timing, problem.test_timing
        sigs: Dict[str, tuple] = {}
        for name in problem.scan_ffs:
            inst = netlist.instances[name]
            q = inst.output_net()
            d = inst.connections.get("D")
            sigs[name] = (
                "ff", inst.x, inst.y,
                t.arrival_ps.get(q), t.required_ps.get(q),
                t.arrival_ps.get(d), t.required_ps.get(d),
                tt.arrival_ps.get(q), tt.required_ps.get(q),
                tt.arrival_ps.get(d), tt.required_ps.get(d),
            )
        for name in problem.inbound_tsvs:
            port = netlist.ports[name]
            sigs[name] = (
                "in", port.x, port.y,
                model.model_load_ff(name),
                model.required_at_mux_b(name),
            )
        for name in problem.outbound_tsvs:
            port = netlist.ports[name]
            net = port.net
            sigs[name] = (
                "out", port.x, port.y,
                tt.slack_of_port(name),
                t.arrival_ps.get(net), t.required_ps.get(net),
                tt.arrival_ps.get(net), tt.required_ps.get(net),
            )
        return sigs

    # -- flow hooks ------------------------------------------------------
    def _make_estimator(self, problem: WcmProblem, config: WcmConfig
                        ) -> Optional[OverlapTestabilityEstimator]:
        if not config.allow_overlap:
            return None
        if config.estimator_mode != "structural":
            # faultsim estimates are budget-position-dependent: a reused
            # instance's call counter would diverge from a cold one
            return OverlapTestabilityEstimator(problem, config)
        # Structural estimates depend only on cone overlaps and the
        # fault universe — netlist structure, not positions, timing or
        # thresholds — so one prepared instance (with its per-pair
        # cache) serves every scoped solve; dropped on structural edits.
        if self._estimator is None:
            self._estimator = OverlapTestabilityEstimator(problem, config)
        return self._estimator

    def _build_graph(self, problem: WcmProblem, kind: PortKind,
                     available_ffs, config: WcmConfig,
                     model: ReuseTimingModel, estimator) -> WcmGraph:
        """Build one direction's sharing graph, replaying the previous
        build's pair log when possible (see :class:`_GraphCache`).

        The cross-solve edge memo and the replay are gated on the
        structural estimator: faultsim estimates depend on the
        estimator's call order and budget position, so reusing them
        across solves could diverge from a cold run.
        """
        if config.estimator_mode != "structural":
            return build_wcm_graph(problem, kind, available_ffs, config,
                                   model, estimator)
        d_th = effective_d_th(problem, config)
        check_distance = math.isfinite(d_th) and config.scenario.is_timed
        cache = self._graph_cache.get(kind)
        if cache is not None and cache.d_th == d_th \
                and cache.check_distance == check_distance:
            graph = self._replay_graph(problem, kind, available_ffs,
                                       config, model, estimator, cache,
                                       d_th, check_distance)
            if graph is not None:
                return graph
        pair_log: Dict[Tuple[str, str, bool], object] = {}
        graph = build_wcm_graph(problem, kind, available_ffs, config,
                                model, estimator,
                                edge_memo=self._edge_memo,
                                pair_log=pair_log)
        self._graph_cache[kind] = _GraphCache(
            ffs=[n for n in graph.nodes if graph.is_ff[n]],
            tsvs=[n for n in graph.nodes if not graph.is_ff[n]],
            excluded=list(graph.excluded_tsvs),
            pair_log=pair_log, d_th=d_th,
            check_distance=check_distance)
        return graph

    def _replay_graph(self, problem: WcmProblem, kind: PortKind,
                      available_ffs, config: WcmConfig,
                      model: ReuseTimingModel, estimator,
                      cache: _GraphCache, d_th: float,
                      check_distance: bool) -> Optional[WcmGraph]:
        """Re-derive the sharing graph from *cache*'s pair log.

        Node eligibility is re-run fresh (it reads the dedicated-cell
        baseline, which the edit may have shifted); any membership
        change voids the cache — ``None`` means build cold. Otherwise
        pairs touching a dirty node are purged and re-considered via
        the same spatial-hash candidate query, exact distance check and
        :func:`pair_outcome` rules as the full sweep, then every logged
        outcome is re-tallied through :func:`apply_outcome` — stats,
        counters and coverage-drop observations match a cold build.
        """
        tsvs: List[str] = []
        excluded: List[str] = []
        for tsv in problem.tsvs_of_kind(kind):
            if kind is PortKind.TSV_INBOUND:
                eligible = model.inbound_node_eligible(tsv)
            else:
                eligible = model.outbound_node_eligible(tsv)
            (tsvs if eligible else excluded).append(tsv)
        ffs = list(available_ffs)
        if ffs != cache.ffs or tsvs != cache.tsvs \
                or excluded != cache.excluded:
            return None
        nodes = ffs + tsvs
        is_ff = {name: True for name in ffs}
        is_ff.update({name: False for name in tsvs})
        cones = _cone_bitsets(problem, nodes, kind)
        pair_log = cache.pair_log
        dirty = self._solve_dirty
        touched = [name for name in nodes if name in dirty]
        if touched:
            stale = [key for key in pair_log
                     if key[0] in dirty or key[1] in dirty]
            for key in stale:
                del pair_log[key]

            def reconsider(name_a: str, name_b: str,
                           a_is_ff: bool) -> None:
                key = (name_a, name_b, a_is_ff)
                if key in pair_log:
                    return  # both endpoints dirty: visited once
                if check_distance \
                        and model.distance_um(name_a, name_b) >= d_th:
                    pair_log[key] = _REJ_DISTANCE
                else:
                    pair_log[key] = pair_outcome(
                        problem, config, model, estimator, cones, kind,
                        name_a, name_b, a_is_ff, self._edge_memo)

            index_of = {name: j for j, name in enumerate(tsvs)}

            def tsv_pair(i: int, jd: int) -> None:
                a, b = (i, jd) if i < jd else (jd, i)
                reconsider(tsvs[a], tsvs[b], False)

            if not check_distance:
                for name in touched:
                    if is_ff[name]:
                        for tsv in tsvs:
                            reconsider(name, tsv, True)
                    else:
                        jd = index_of[name]
                        for i in range(len(tsvs)):
                            if i != jd:
                                tsv_pair(i, jd)
                        for ff in ffs:
                            reconsider(ff, name, True)
            elif d_th > 0.0:
                candidates = _bucket_candidates(tsvs,
                                                problem.location_of,
                                                d_th)
                for name in touched:
                    if is_ff[name]:
                        for j in candidates(name):
                            reconsider(name, tsvs[j], True)
                    else:
                        jd = index_of[name]
                        for i in candidates(name):
                            if i != jd:
                                tsv_pair(i, jd)
                        for ff in ffs:
                            if jd in candidates(ff):
                                reconsider(ff, name, True)
            # check_distance with d_th <= 0: every pair is rejected
            # arithmetically; nothing to re-consider.

        stats = GraphStats(nodes=len(nodes), ff_nodes=len(ffs),
                           tsv_nodes=len(tsvs),
                           excluded_tsvs=len(excluded))
        adjacency: Dict[str, Set[str]] = {name: set() for name in nodes}
        for (name_a, name_b, _a_is_ff), outcome in pair_log.items():
            apply_outcome(outcome, name_a, name_b, adjacency, stats,
                          config)
        total_pairs = (len(tsvs) * (len(tsvs) - 1) // 2
                       + len(ffs) * len(tsvs))
        candidate_pairs = len(pair_log)
        stats.rejected_distance += total_pairs - candidate_pairs
        instrument.count("graph.grid_candidate_pairs", candidate_pairs)
        instrument.count("graph.grid_skipped_pairs",
                         total_pairs - candidate_pairs)
        instrument.count("session.graph_replays")
        if trace.active() is not None:
            trace.observe("graph.edges", stats.edges)
        return WcmGraph(kind=kind, nodes=nodes, is_ff=is_ff,
                        adjacency=adjacency, excluded_tsvs=excluded,
                        stats=stats)

    def _partition(self, graph: WcmGraph,
                   model: ReuseTimingModel) -> CliquePartition:
        sig = _graph_sig(graph)
        frozen = self._frozen.get(graph.kind)
        if frozen is not None and frozen[0] == sig:
            dirty = self._solve_dirty & set(graph.nodes)
        else:
            dirty = {"__graph_changed__"}
        if frozen is None:
            result = partition_cliques(graph, model,
                                       merge_memo=self._merge_memo)
        else:
            result = repartition(graph, model, dirty, frozen[1],
                                 merge_memo=self._merge_memo)
        self._frozen[graph.kind] = (sig, _copy_partition(result))
        return result

    def _signoff(self, problem: WcmProblem, plan, config: WcmConfig):
        # structural identity of the plan — cheaper than a generic
        # fingerprint() and injective on everything insertion reads
        key = (plan.die_name,
               tuple((g.kind, tuple(g.tsvs), g.reused_ff)
                     for g in plan.groups),
               tuple(plan.excluded_tsvs))
        entry = self._plan_cache.get(key)
        positions = self._anchor_positions()
        if entry is not None:
            moved = [name for name, pos in positions.items()
                     if entry.positions.get(name) != pos]
            hit = self._warm_signoff(entry, moved)
            if hit:
                instrument.count("session.signoff_hits")
                entry.positions = positions
                return (entry.wrapped, entry.report, entry.functional,
                        entry.test)
        # same steps (and counters) as flow.signoff_build, but keeping
        # the TimingContext so later solves can delta-time this build
        with instrument.phase("flow.insertion"):
            wrapped, report = insert_wrappers(problem.netlist, plan)
            stitch_scan_chains(wrapped, restitch=True)
        with instrument.phase("flow.sta"):
            context = TimingContext(wrapped)
            functional = context.analyze(
                self._clock, case=default_case(wrapped, test_mode=0))
            test = context.analyze(
                self._clock, case=default_case(wrapped, test_mode=1))
        entry = _WrappedBuild(
            wrapped=wrapped, report=report, context=context,
            functional=functional, test=test, positions=positions,
            order=[ff.name for ff in
                   _serpentine_order(wrapped.scan_flip_flops())],
            anchors_rev=_reverse_anchors(report.placement_anchors),
        )
        while len(self._plan_cache) >= self.MAX_PLAN_CACHE:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        self._plan_cache[key] = entry
        return wrapped, report, functional, test

    def _warm_signoff(self, entry: _WrappedBuild, moved) -> bool:
        """Delta-time a cached build after mirroring *moved*. When the
        moves change its restitch order the entry is rewired in place
        (matching a cold insert + restitch) and the scan-affected nets
        join the dirty set."""
        if not moved:
            return True
        with instrument.phase("flow.insertion"):
            dirty = self._mirror_positions(entry.wrapped, moved,
                                           entry.anchors_rev)
            order = [ff.name for ff in
                     _serpentine_order(entry.wrapped.scan_flip_flops())]
            if order != entry.order:
                dirty |= _restitch_in_place(entry.wrapped)
                entry.order = order
        with instrument.phase("flow.sta"):
            entry.context.invalidate_nets(sorted(dirty))
            entry.functional = entry.context.analyze_delta(
                self._clock,
                case=default_case(entry.wrapped, test_mode=0),
                previous=entry.functional, dirty_nets=dirty)
            entry.test = entry.context.analyze_delta(
                self._clock,
                case=default_case(entry.wrapped, test_mode=1),
                previous=entry.test, dirty_nets=dirty)
        return True

    def _anchor_positions(self) -> Dict[str, Tuple[float, float]]:
        netlist = self.netlist
        positions = {name: (inst.x, inst.y)
                     for name, inst in netlist.instances.items()
                     if inst.is_scan}
        for name, port in netlist.ports.items():
            if port.is_tsv:
                positions[name] = (port.x, port.y)
        return positions


# ---------------------------------------------------------------------------
# Public byte-identity surface (shared by repro.verify and repro.serve)
# ---------------------------------------------------------------------------
def netlist_payload(netlist: Netlist) -> dict:
    """Canonical structural payload of a netlist (not a dataclass, so
    :func:`repro.util.fingerprint.fingerprint` needs the explicit
    rendering)."""
    return {
        "name": netlist.name,
        "ports": [(p.name, p.kind.value, p.net, p.x, p.y)
                  for p in netlist.ports.values()],
        "instances": [(i.name, i.cell.name,
                       tuple(sorted(i.connections.items())), i.x, i.y)
                      for i in netlist.instances.values()],
        "nets": [(net.name, net.driver, tuple(net.sinks))
                 for net in netlist.nets.values()],
    }


def result_fingerprint(result: WcmRunResult) -> str:
    """Fingerprint of everything a solve produces — the byte-identity
    oracle surface (plan, wrapped netlist, timings, stats, order) that
    a warm session re-solve, a served job, and a cold
    :func:`~repro.core.flow.run_wcm_flow` must agree on."""
    from repro.util.fingerprint import fingerprint

    return fingerprint({
        "plan": result.plan,
        "insertion": result.insertion,
        "final_timing": result.final_timing,
        "test_mode_timing": result.test_mode_timing,
        "graph_stats": result.graph_stats,
        "partitions": result.partitions,
        "order": [kind.value for kind in result.order],
        "wrapped": netlist_payload(result.wrapped_netlist),
    })
