"""ATPG-backed testability estimates for overlapped-cone sharing.

Algorithm 1 admits an edge despite overlapping cones when the estimated
coverage drop stays below ``cov_th`` and the pattern increase below
``p_th``. The paper delegates this to a commercial ATPG; here the
estimate is measured on the die itself:

* an *ideal wrapped view* of the bare die is compiled (every inbound
  TSV an independent control column, every outbound TSV observed) —
  the best any wrapper plan could do;
* for an **inbound** pair, sharing ties the TSV's column to the other
  endpoint's column; the effect is re-propagated event-style and the
  stem faults inside the cone overlap are fault-simulated under both
  input regimes;
* for an **outbound** pair, sharing XOR-merges two observation points;
  each overlap fault's per-observation difference words are combined
  with XOR (aliasing) instead of OR;
* the coverage drop is the fraction of universe faults that were
  detected independently but die under sharing; the pattern increase
  is estimated as one deterministic pattern per lost-or-weakened fault.

Costs are bounded: stem faults only, one packed block, per-pair
caching, and a per-die budget after which the structural fallback
(overlap size scaled against the universe) is used — the same
accuracy/effort trade a commercial incremental ATPG makes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.atpg.faults import FaultKind, build_fault_list
from repro.atpg.sim import CompiledCircuit
from repro.core.config import WcmConfig
from repro.core.problem import WcmProblem
from repro.dft.testview import TestView
from repro.netlist.core import Netlist, PortKind
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class OverlapEstimate:
    """Estimated testability impact of one sharing decision."""

    coverage_drop: float  # fraction of the fault universe
    extra_patterns: int
    mode: str  # "faultsim" | "structural"

    def within(self, cov_th: float, p_th: int) -> bool:
        return self.coverage_drop < cov_th and self.extra_patterns < p_th


def build_ideal_wrapped_view(netlist: Netlist) -> TestView:
    """Test view of the die as if every TSV had its own wrapper cell:
    inbound TSVs controllable, outbound TSVs observable."""
    view = TestView(netlist=netlist)
    for port in netlist.ports.values():
        if port.net is None:
            continue
        if port.kind in (PortKind.PRIMARY_INPUT, PortKind.TSV_INBOUND):
            view.control_nets.append(port.net)
        elif port.kind in (PortKind.PRIMARY_OUTPUT, PortKind.TSV_OUTBOUND):
            view.observe_nets.append((port.name, port.net))
        elif port.kind is PortKind.TEST_MODE:
            view.constant_nets[port.net] = 1
        elif port.kind is PortKind.SCAN_ENABLE:
            view.constant_nets[port.net] = 0
    for ff in netlist.flip_flops():
        q_net = ff.output_net()
        if q_net is not None:
            view.control_nets.append(q_net)
        d_net = ff.connections.get("D")
        if d_net is not None:
            view.observe_nets.append((ff.name, d_net))
    return view


class OverlapTestabilityEstimator:
    """Per-die cache of sharing-impact estimates."""

    def __init__(self, problem: WcmProblem, config: WcmConfig) -> None:
        self.problem = problem
        self.config = config
        self._cache: Dict[Tuple[str, str, PortKind], OverlapEstimate] = {}
        self._faultsim_calls = 0
        self._ready = False
        # Lazy simulation state (built on first fault-sim estimate).
        self._circuit: Optional[CompiledCircuit] = None
        self._good: Optional[List[int]] = None
        self._mask = 0
        self._universe = 1
        self._stem_net_ids: Dict[str, int] = {}
        self._base_detection: Dict[int, int] = {}
        self._block_width = 256

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        if self._ready:
            return
        self._ready = True
        netlist = self.problem.netlist
        view = build_ideal_wrapped_view(netlist)
        circuit = CompiledCircuit(view)
        self._circuit = circuit
        rng = DeterministicRng(self.config.seed).child(
            "overlap_estimator", netlist.name)
        self._mask = (1 << self._block_width) - 1
        words = [rng.getrandbits(self._block_width)
                 for _ in range(circuit.input_count)]
        self._good = circuit.simulate(words, self._mask)

        fault_list = build_fault_list(view, include_branches=True)
        self._universe = max(1, fault_list.total)
        for fault in fault_list.faults:
            if fault.kind is FaultKind.STEM:
                nid = circuit.net_ids.get(fault.net)
                if nid is not None:
                    self._stem_net_ids[fault.net] = nid

    # ------------------------------------------------------------------
    def _overlap_nets(self, overlap: FrozenSet[str]) -> List[int]:
        """Stem-fault net ids of the gates/ports inside an overlap."""
        self._prepare()
        netlist = self.problem.netlist
        circuit = self._circuit
        nets: Set[int] = set()
        for name in overlap:
            if name in netlist.instances:
                out = netlist.instances[name].output_net()
                if out is not None:
                    nid = circuit.net_ids.get(out)
                    if nid is not None:
                        nets.add(nid)
            elif name in netlist.ports:
                net = netlist.ports[name].net
                if net is not None:
                    nid = circuit.net_ids.get(net)
                    if nid is not None:
                        nets.add(nid)
        return sorted(nets)

    def _detect_words(self, good: List[int], net_ids: List[int],
                      alias_pair: Optional[Tuple[int, int]] = None
                      ) -> Dict[int, int]:
        """Detection word per stem fault site (both polarities OR-ed)
        under a given good-machine baseline and observation regime."""
        circuit = self._circuit
        mask = self._mask
        result: Dict[int, int] = {}
        for nid in net_ids:
            total = 0
            for value in (0, 1):
                forced = mask if value else 0
                if forced == (good[nid] & mask):
                    continue
                changed = circuit.propagate_values(good, {nid: forced}, mask)
                if alias_pair is None:
                    for cnid, word in changed.items():
                        if cnid in circuit.observed:
                            total |= (word ^ good[cnid])
                else:
                    o1, o2 = alias_pair
                    diff1 = (changed.get(o1, good[o1]) ^ good[o1])
                    diff2 = (changed.get(o2, good[o2]) ^ good[o2])
                    total |= (diff1 ^ diff2)
                    for cnid, word in changed.items():
                        if cnid in circuit.observed and cnid not in (o1, o2):
                            total |= (word ^ good[cnid])
            result[nid] = total & mask
        return result

    # ------------------------------------------------------------------
    def estimate(self, name_a: str, name_b: str, kind: PortKind,
                 overlap: FrozenSet[str]) -> OverlapEstimate:
        """Impact of letting *name_a* and *name_b* share, given their
        cone *overlap* (non-empty)."""
        key = (min(name_a, name_b), max(name_a, name_b), kind)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        use_faultsim = (self.config.estimator_mode == "faultsim"
                        and self._faultsim_calls < self.config.estimator_budget)
        if use_faultsim:
            self._faultsim_calls += 1
            estimate = self._faultsim_estimate(name_a, name_b, kind, overlap)
        else:
            estimate = self._structural_estimate(overlap)
        self._cache[key] = estimate
        return estimate

    # ------------------------------------------------------------------
    def _structural_estimate(self, overlap: FrozenSet[str]) -> OverlapEstimate:
        """Fallback: scale the overlap size against the universe.

        Calibration: roughly half the overlap's stem faults are at risk
        of correlation masking and one in ten needs a deterministic
        pattern to recover — consistent with what the fault-sim mode
        measures on the small dies.
        """
        self._prepare()
        at_risk = len(overlap)
        drop = 0.5 * (2.0 * at_risk) / self._universe
        extra = math.ceil(0.1 * at_risk)
        return OverlapEstimate(coverage_drop=drop, extra_patterns=extra,
                               mode="structural")

    def _faultsim_estimate(self, name_a: str, name_b: str, kind: PortKind,
                           overlap: FrozenSet[str]) -> OverlapEstimate:
        self._prepare()
        circuit, good, mask = self._circuit, self._good, self._mask
        netlist = self.problem.netlist
        net_ids = self._overlap_nets(overlap)
        if not net_ids:
            return OverlapEstimate(0.0, 0, "faultsim")

        base = self._detect_words(good, net_ids)

        if kind is PortKind.TSV_INBOUND:
            # Tie the TSV column(s) to the driving endpoint's column.
            def control_net_of(name: str) -> Optional[int]:
                if name in netlist.ports:
                    net = netlist.ports[name].net
                else:
                    net = netlist.instances[name].output_net()
                return circuit.net_ids.get(net) if net else None

            nid_a = control_net_of(name_a)
            nid_b = control_net_of(name_b)
            if nid_a is None or nid_b is None:
                return self._structural_estimate(overlap)
            patched = list(good)
            changed = circuit.propagate_values(good, {nid_b: good[nid_a]},
                                               mask)
            for cnid, word in changed.items():
                patched[cnid] = word
            shared = self._detect_words(patched, net_ids)
        else:
            # XOR-merge the two observation nets.
            def observe_net_of(name: str) -> Optional[int]:
                if name in netlist.ports:
                    net = netlist.ports[name].net
                    return circuit.net_ids.get(net) if net else None
                d_net = netlist.instances[name].connections.get("D")
                return circuit.net_ids.get(d_net) if d_net else None

            o1 = observe_net_of(name_a)
            o2 = observe_net_of(name_b)
            if o1 is None or o2 is None:
                return self._structural_estimate(overlap)
            shared = self._detect_words(good, net_ids, alias_pair=(o1, o2))

        lost = 0
        weakened = 0
        for nid in net_ids:
            before = base.get(nid, 0)
            after = shared.get(nid, 0)
            if before and not after:
                lost += 1
            elif before and after:
                count_before = bin(before).count("1")
                count_after = bin(after).count("1")
                if count_after * 4 < count_before and count_after <= 2:
                    weakened += 1
        drop = (2.0 * lost) / self._universe  # both polarities at risk
        extra = lost + weakened
        return OverlapEstimate(coverage_drop=drop, extra_patterns=extra,
                               mode="faultsim")
