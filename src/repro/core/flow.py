"""End-to-end WCM flow (the paper's Fig. 6).

For one prepared die and one method configuration:

1. **TSV analysis / ordering** — ours processes the larger TSV set
   first (Section IV-A, motivated by Table I); [4] processes inbound
   first. An explicit override supports the Table I experiment.
2. Per TSV set: **graph construction** (Algorithm 1) over the still-
   available scan FFs, then **heuristic clique partitioning**
   (Algorithm 2). FFs reused in the first pass are consumed.
3. **Wrapper generation** — cliques become a
   :class:`~repro.dft.wrapper.WrapperPlan`; excluded TSVs get
   dedicated cells; the plan is physically inserted and scan chains
   restitched.
4. **Sign-off** — final STA of the wrapped die under the scenario
   clock decides the Table III timing-violation verdict; ATPG
   (:func:`measure_testability`) provides the Table IV/V coverage and
   pattern counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.atpg.engine import AtpgConfig, AtpgResult, run_stuck_at_atpg
from repro.atpg.transition import run_transition_atpg
from repro.core.clique import CliquePartition, partition_cliques
from repro.core.config import WcmConfig
from repro.core.graph import GraphStats, WcmGraph, build_wcm_graph
from repro.core.problem import WcmProblem
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import FfReuseLedger, ReuseTimingModel
from repro.dft.scan import stitch_scan_chains
from repro.dft.testview import build_prebond_test_view
from repro.dft.wrapper import InsertionReport, WrapperGroup, WrapperPlan, insert_wrappers
from repro.netlist.core import Netlist, PortKind
from repro.netlist.topology import fanin_cone
from repro.runtime import instrument
from repro.sta.timer import TimingContext, TimingResult, default_case
from repro.util.errors import ConfigError


@dataclass
class WcmRunResult:
    """Everything one method run produces for one die."""

    die_name: str
    method: str
    scenario: str
    plan: WrapperPlan
    wrapped_netlist: Netlist
    insertion: InsertionReport
    #: functional-mode sign-off STA (test_mode = 0)
    final_timing: TimingResult
    #: at-speed test-capture STA (test_mode = 1)
    test_mode_timing: Optional[TimingResult] = None
    graph_stats: Dict[str, GraphStats] = field(default_factory=dict)
    partitions: Dict[str, CliquePartition] = field(default_factory=dict)
    order: Tuple[PortKind, ...] = ()

    # -- the paper's headline quantities ---------------------------------
    @property
    def reused_scan_ffs(self) -> int:
        return self.plan.reused_scan_ff_count

    @property
    def additional_wrapper_cells(self) -> int:
        return self.plan.additional_wrapper_cells

    @property
    def timing_violation(self) -> bool:
        if self.final_timing.has_violation:
            return True
        return (self.test_mode_timing is not None
                and self.test_mode_timing.has_violation)

    @property
    def worst_slack_ps(self) -> float:
        worst = self.final_timing.worst_slack_ps
        if self.test_mode_timing is not None:
            worst = min(worst, self.test_mode_timing.worst_slack_ps)
        return worst

    @property
    def total_graph_edges(self) -> int:
        return sum(s.edges for s in self.graph_stats.values())


def decide_order(problem: WcmProblem, config: WcmConfig
                 ) -> Tuple[PortKind, ...]:
    """TSV-set processing order (Section IV-A)."""
    inbound, outbound = PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND
    if not config.order_by_set_size:
        return (inbound, outbound)  # [4]'s fixed order
    if len(problem.outbound_tsvs) > len(problem.inbound_tsvs):
        return (outbound, inbound)
    return (inbound, outbound)


def _adopt_ffs(problem: WcmProblem, graph, partition: CliquePartition,
               model: ReuseTimingModel, ledger: FfReuseLedger,
               max_candidates: int = 24) -> int:
    """FF-adoption phase (DESIGN.md §4): FF-less cliques adopt a scan FF
    that (a) has a graph edge to every member and (b) still has timing
    budget in the ledger. Returns the number of adoptions."""
    ff_names = [n for n in graph.nodes if graph.is_ff[n]]
    ff_set = set(ff_names)
    adopted = 0
    for clique in partition.cliques:
        if clique.ff is not None or not clique.tsvs:
            continue
        candidates: Optional[set] = None
        for member in clique.tsvs:
            member_ffs = graph.adjacency.get(member, set()) & ff_set
            candidates = (member_ffs if candidates is None
                          else candidates & member_ffs)
            if not candidates:
                break
        if not candidates:
            continue
        anchor = clique.state.anchor if clique.state else (0.0, 0.0)

        def hop(ff: str) -> float:
            fx, fy = problem.location_of(ff)
            return abs(fx - anchor[0]) + abs(fy - anchor[1])

        # Tie-break lexicographically: *candidates* is a set of FF-name
        # strings, and a plain stable sort would leave equidistant FFs
        # in hash order (PYTHONHASHSEED-dependent).
        for ff in sorted(candidates, key=lambda f: (hop(f), f))[:max_candidates]:
            if clique.state is not None \
                    and ledger.adoption_feasible(ff, clique.state):
                clique.ff = ff
                ledger.commit(ff, clique.state)
                adopted += 1
                break
    return adopted


def _walk_critical_path(wrapped: Netlist, timing: TimingResult,
                        endpoint_name: str, max_steps: int = 200):
    """Instance names along the worst-arrival chain into an endpoint."""
    if endpoint_name in wrapped.instances:
        current = wrapped.instances[endpoint_name].connections.get("D")
    elif endpoint_name in wrapped.ports:
        current = wrapped.ports[endpoint_name].net
    else:
        return []
    names = []
    for _ in range(max_steps):
        if current is None:
            break
        net = wrapped.nets.get(current)
        if net is None or net.driver is None or net.driver.is_port:
            break
        inst_name = net.driver.owner_name
        names.append(inst_name)
        inst = wrapped.instances[inst_name]
        candidates = [(pin, n) for pin, n in inst.input_nets()
                      if pin not in ("CK", "SE", "SI")]
        if not candidates:
            break
        current = max(candidates,
                      key=lambda pn: timing.arrival_ps.get(pn[1], 0.0))[1]
    return names


def _evict_violating_groups(wrapped: Netlist, report: InsertionReport,
                            plan: WrapperPlan, violations, evict_budget: int,
                            max_endpoints: int = 40):
    """Demote/split the groups *on the critical paths* of violating
    endpoints — at most *evict_budget* changes per round, worst paths
    first. Whole-cone attribution would evict innocents; walking the
    worst-arrival chain pinpoints the causal group. Returns
    (plan, changed). *violations* is a list of (endpoint, timing)."""
    inst_to_group: Dict[str, int] = {}
    for index, instances in enumerate(report.group_instances):
        for name in instances:
            inst_to_group[name] = index

    n_groups = len(plan.groups)
    evict: set = set()
    split: set = set()
    budget = max(1, evict_budget)
    worst_first = sorted(violations, key=lambda pair: pair[0].slack_ps)
    for endpoint, timing in worst_first[:max_endpoints]:
        if len(evict) + len(split) >= budget:
            break
        path = _walk_critical_path(wrapped, timing, endpoint.name)
        if endpoint.name in inst_to_group:
            path = [endpoint.name] + path
        chosen = None
        fallback = None
        for inst_name in path:
            group_index = inst_to_group.get(inst_name)
            if group_index is None or group_index >= n_groups:
                continue
            if group_index in evict or group_index in split:
                chosen = group_index  # already being fixed this round
                break
            group = plan.groups[group_index]
            if group.reused_ff is not None:
                chosen = group_index
                break
            if len(group.tsvs) > 1 and fallback is None:
                fallback = group_index
        if chosen is not None and chosen not in evict | split:
            evict.add(chosen)
        elif chosen is None and fallback is not None:
            split.add(fallback)

    if not evict and not split:
        return plan, False

    new_groups: List[WrapperGroup] = []
    for index, group in enumerate(plan.groups):
        if index in evict and group.reused_ff is not None:
            new_groups.append(WrapperGroup(kind=group.kind,
                                           tsvs=list(group.tsvs),
                                           reused_ff=None))
        elif index in split or (index in evict
                                and group.reused_ff is None):
            for tsv in group.tsvs:
                new_groups.append(WrapperGroup(kind=group.kind, tsvs=[tsv]))
        else:
            new_groups.append(group)
    return WrapperPlan(die_name=plan.die_name, groups=new_groups,
                       excluded_tsvs=list(plan.excluded_tsvs)), True


def signoff_violations(functional_timing: TimingResult,
                       test_timing: TimingResult):
    """Violating endpoints of one sign-off round, worst-cause pairs."""
    return ([(e, functional_timing) for e in functional_timing.violations]
            + [(e, test_timing) for e in test_timing.violations])


def signoff_build(problem: WcmProblem, plan: WrapperPlan, config: WcmConfig
                  ) -> Tuple[Netlist, InsertionReport, TimingResult,
                             TimingResult]:
    """One sign-off round's physical build + STA: insert the plan,
    restitch, analyze both sign-off modes."""
    with instrument.phase("flow.insertion"):
        wrapped, report = insert_wrappers(problem.netlist, plan)
        stitch_scan_chains(wrapped, restitch=True)
    with instrument.phase("flow.sta"):
        # One context serves both sign-off modes: the graph prep
        # (positions, loads, wire delays) is shared, only the
        # arrival/required sweeps differ per case.
        context = TimingContext(wrapped)
        functional_timing = context.analyze(
            config.scenario.clock,
            case=default_case(wrapped, test_mode=0))
        test_timing = context.analyze(
            config.scenario.clock,
            case=default_case(wrapped, test_mode=1))
    return wrapped, report, functional_timing, test_timing


class FlowHooks:
    """Substitutable steps of :func:`run_wcm_flow`.

    The defaults reproduce the cold flow exactly; an incremental
    session (``repro.core.session``) overrides them with memoized
    variants whose results must stay byte-identical — enforced by the
    ``eco`` differential check in ``repro.verify``.
    """

    def make_model(self, problem: WcmProblem,
                   config: WcmConfig) -> ReuseTimingModel:
        return ReuseTimingModel(problem, config)

    def make_estimator(self, problem: WcmProblem, config: WcmConfig
                       ) -> Optional[OverlapTestabilityEstimator]:
        return (OverlapTestabilityEstimator(problem, config)
                if config.allow_overlap else None)

    def build_graph(self, problem: WcmProblem, kind: PortKind,
                    available_ffs: List[str], config: WcmConfig,
                    model: ReuseTimingModel,
                    estimator: Optional[OverlapTestabilityEstimator]
                    ) -> WcmGraph:
        return build_wcm_graph(problem, kind, available_ffs, config,
                               model, estimator)

    def partition(self, graph: WcmGraph,
                  model: ReuseTimingModel) -> CliquePartition:
        return partition_cliques(graph, model)

    def signoff(self, problem: WcmProblem, plan: WrapperPlan,
                config: WcmConfig):
        return signoff_build(problem, plan, config)


_DEFAULT_HOOKS = FlowHooks()


def run_wcm_flow(problem: WcmProblem, config: WcmConfig,
                 order_override: Optional[Tuple[PortKind, ...]] = None,
                 hooks: Optional[FlowHooks] = None) -> WcmRunResult:
    """Run one method/scenario on one prepared die."""
    hooks = hooks or _DEFAULT_HOOKS
    model = hooks.make_model(problem, config)
    estimator = hooks.make_estimator(problem, config)
    order = order_override or decide_order(problem, config)
    if set(order) != {PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND}:
        raise ConfigError(f"order must cover both TSV kinds, got {order}")

    all_ffs = list(problem.scan_ffs)
    ledger = FfReuseLedger(model)
    groups: List[WrapperGroup] = []
    excluded: List[str] = []
    graph_stats: Dict[str, GraphStats] = {}
    partitions: Dict[str, CliquePartition] = {}

    for kind in order:
        with instrument.phase("flow.graph"):
            graph = hooks.build_graph(problem, kind, all_ffs, config,
                                      model, estimator)
        with instrument.phase("flow.partition"):
            partition = hooks.partition(graph, model)
        graph_stats[kind.value] = graph.stats
        partitions[kind.value] = partition

        # Ledger first records the FFs Algorithm 2 itself placed...
        for clique in partition.cliques:
            if clique.ff is not None and clique.tsvs and clique.state:
                ledger.commit(clique.ff, clique.state)
        # ...then FF-less cliques adopt FFs with remaining budget.
        with instrument.phase("flow.adoption"):
            adopted = _adopt_ffs(problem, graph, partition, model, ledger)
        instrument.count("flow.adopted_ffs", adopted)

        for clique in partition.cliques:
            if not clique.tsvs:
                continue  # an unused FF
            groups.append(WrapperGroup(kind=kind, tsvs=list(clique.tsvs),
                                       reused_ff=clique.ff))
        excluded.extend(graph.excluded_tsvs)

    plan = WrapperPlan(die_name=problem.netlist.name, groups=groups,
                       excluded_tsvs=excluded)

    # ---- insertion + sign-off (+ ECO repair for the proposed method).
    # Per-group predictions cannot see the global arrival fixed point
    # (each reuse inflates arrivals downstream of its mux), so the flow
    # iterates sign-off STA and demotes reuse groups found on violating
    # paths to dedicated cells — the ECO loop every physical DFT flow
    # runs. [4] ships its first answer (signoff_repair=False), which is
    # exactly why it violates under tight timing (Table III).
    rounds = (config.repair_iterations
              if (config.signoff_repair and config.scenario.is_timed) else 1)
    wrapped = report = functional_timing = test_timing = None
    for _round in range(max(1, rounds)):
        instrument.count("flow.eco_rounds")
        wrapped, report, functional_timing, test_timing = \
            hooks.signoff(problem, plan, config)
        if not (config.signoff_repair and config.scenario.is_timed):
            break
        violations = signoff_violations(functional_timing, test_timing)
        if not violations:
            break
        # Gentle schedule: single evictions first (most violations have
        # one dominant cause), escalate only if they persist.
        budget = 1 if _round < 10 else 2 ** (_round - 9)
        plan, changed = _evict_violating_groups(
            wrapped, report, plan, violations, evict_budget=budget)
        if not changed:
            break
        instrument.count("flow.eco_repairs")

    return WcmRunResult(
        die_name=problem.netlist.name,
        method=config.method,
        scenario=config.scenario.name,
        plan=plan,
        wrapped_netlist=wrapped,
        insertion=report,
        final_timing=functional_timing,
        test_mode_timing=test_timing,
        graph_stats=graph_stats,
        partitions=partitions,
        order=tuple(order),
    )


@dataclass
class TestabilityReport:
    """ATPG outcome of a wrapped die (one Table IV cell pair)."""

    stuck_at: AtpgResult
    transition: Optional[AtpgResult] = None

    @property
    def stuck_at_pair(self) -> Tuple[float, int]:
        return (self.stuck_at.coverage, self.stuck_at.pattern_count)

    @property
    def transition_pair(self) -> Optional[Tuple[float, int]]:
        if self.transition is None:
            return None
        return (self.transition.coverage, self.transition.pattern_count)


def measure_testability(result: WcmRunResult,
                        atpg_config: Optional[AtpgConfig] = None,
                        include_transition: bool = True
                        ) -> TestabilityReport:
    """Run ATPG on the wrapped die (the flow's fault-coverage check)."""
    view = build_prebond_test_view(result.wrapped_netlist)
    stuck_at = run_stuck_at_atpg(view, atpg_config)
    transition = (run_transition_atpg(view, atpg_config)
                  if include_transition else None)
    return TestabilityReport(stuck_at=stuck_at, transition=transition)
