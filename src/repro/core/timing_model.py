"""Reuse timing models: accurate (ours) vs load-only (Agrawal [4]).

Electrical story (matches :mod:`repro.dft.wrapper` insertion):

* an **inbound** wrapper group is driven by its wrapper source (a
  reused scan FF's Q, or a dedicated cell's Q) through one ``BUF_X2``
  placed at the source; the buffer fans out to one test mux per member
  TSV, each placed at its TSV site. The buffer's load is the members'
  mux pins and sink loads *plus the route capacitance* — ``cap_th`` is
  the buffer's max load. The FF itself only gains one buffer input pin
  per adopted group;
* an **outbound** wrapper group folds its members into one XOR chain
  behind a test-mode mux in front of the capturing FF's D pin. The
  capture path ``TSV → (wire) → XOR chain → mux → D`` must fit the
  period; the functional D path gains one mux stage.

The accurate model (``use_wire_delay=True``) includes the wire terms;
the Agrawal model [4] zeroes them — under tight timing it overcommits
and its solutions fail sign-off STA (Table III's 20/24 violations).

A scan FF may serve several groups ("reused multiple times"); the
:class:`FfReuseLedger` accumulates each FF's extra Q load and enforces
at most one outbound chain per FF. See DESIGN.md §4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import WcmConfig
from repro.core.problem import WcmProblem
from repro.netlist.core import PortKind
from repro.sta.delay import WireModel
from repro.util.errors import ConfigError

INF = math.inf

#: safety margin (ps) kept between a predicted path and its requirement
PREDICTION_MARGIN_PS = 4.0


@dataclass
class CliqueTimingState:
    """Incrementally maintained timing/load state of one clique."""

    kind: PortKind
    members: Tuple[str, ...]
    anchor: Tuple[float, float]
    has_ff: bool
    #: buffer load the wrapper driver must carry (inbound groups)
    cap_ff: float = 0.0
    #: worst member-side arrival at the anchor (outbound groups)
    worst_arrival_ps: float = 0.0
    #: tightest required time among member TSV nets (inbound groups)
    min_required_ps: float = INF
    #: largest single member sink load (sets the slowest member mux)
    max_member_load_ff: float = 0.0
    #: farthest member from the anchor (um)
    max_span_um: float = 0.0
    # -- reused-FF data (when has_ff) ----------------------------------
    ff_name: Optional[str] = None
    ff_arrival_ps: float = 0.0
    ff_q_slack_ps: float = INF
    ff_resistance: float = 0.0
    #: arrival of the FF's functional D net (joins the XOR chain)
    ff_d_arrival_ps: float = 0.0
    #: worst member-net driver resistance (ps/fF) — the new XOR tap's
    #: wire load slows that driver down
    worst_member_resistance: float = 0.0
    #: tightest slack among member nets (both modes) — the tap slowdown
    #: must fit inside it, or the member's OTHER fanout paths violate
    min_member_slack_ps: float = INF
    #: slowdown of the functional D net from re-pinning (xor+mux pins)
    ff_d_slowdown_ps: float = 0.0


class ReuseTimingModel:
    """Feasibility oracle for reuse/sharing decisions."""

    def __init__(self, problem: WcmProblem, config: WcmConfig) -> None:
        self.problem = problem
        self.config = config
        self.timing = problem.timing
        self.test_timing = problem.test_timing
        library = problem.netlist.library
        self._mux = library.get("MUX2_X1")
        self._xor = library.get("XOR2_X1")
        self._buf = library.get("BUF_X2")
        self._sdff = library.get("SDFF_X1")
        #: physical wire model (matches the STA's defaults)
        self._wire = WireModel()
        # The "no timing constraint at all" scenario disables the whole
        # timing model (wire terms included): Table III's area columns
        # show both methods nearly identical, which only holds when the
        # area run is genuinely unconstrained.
        self._use_wire = config.use_wire_delay and config.scenario.is_timed
        period = config.scenario.clock.period_ps
        self._ff_required = (period - config.scenario.clock.setup_ps
                             if period is not None else INF)
        self._timed = config.scenario.is_timed
        # Memoized lookups over immutable problem state. The pair sweep
        # asks for the same locations / nets / resistances thousands of
        # times; each cache returns exactly the value the uncached code
        # would recompute.
        self._location_cache: Dict[str, Tuple[float, float]] = {}
        self._tsv_net_cache: Dict[str, str] = {}
        self._resistance_cache: Dict[str, float] = {}
        self._mux_b_required_cache: Dict[str, float] = {}
        self._load_cache: Dict[str, float] = {}
        self._mux_b_cap = self._mux.input_cap("B")

    # ------------------------------------------------------------------
    # Geometry / electrical primitives
    # ------------------------------------------------------------------
    def _location(self, name: str) -> Tuple[float, float]:
        loc = self._location_cache.get(name)
        if loc is None:
            loc = self._location_cache[name] = self.problem.location_of(name)
        return loc

    def distance_um(self, name_a: str, name_b: str) -> float:
        ax, ay = self._location(name_a)
        bx, by = self._location(name_b)
        return abs(ax - bx) + abs(ay - by)

    def _wire_cap(self, length_um: float) -> float:
        if not self._use_wire:
            return 0.0
        return self._wire.wire_cap_ff(length_um)

    def _wire_delay(self, length_um: float, load_ff: float) -> float:
        if not self._use_wire:
            return 0.0
        return self._wire.wire_delay_ps(length_um, load_ff)

    def _tsv_net(self, tsv_name: str) -> str:
        net = self._tsv_net_cache.get(tsv_name)
        if net is None:
            net = self.problem.netlist.port(tsv_name).net
            if net is None:
                raise ConfigError(f"TSV {tsv_name} unconnected")
            self._tsv_net_cache[tsv_name] = net
        return net

    @property
    def buf_pin_cap(self) -> float:
        return self._buf.input_cap("A")

    def _mux_delay(self, load_ff: float) -> float:
        return self._mux.delay_ps(load_ff)

    def _xor_delay(self) -> float:
        return self._xor.delay_ps(self._xor.input_cap("A"))

    # ------------------------------------------------------------------
    # Loads (the quantity compared against cap_th)
    # ------------------------------------------------------------------
    def pin_load_ff(self, tsv_name: str) -> float:
        """Sink pin capacitance of the TSV's net (no wire)."""
        return self.problem.netlist.sink_cap_ff(self._tsv_net(tsv_name))

    def model_load_ff(self, tsv_name: str) -> float:
        """The load this method's model attributes to an inbound TSV.

        Computed on the *bare* die (the functional sinks the test mux
        must re-drive): pin caps plus, for the accurate model, the
        star-route wire capacitance from the TSV to each sink.
        """
        cached = self._load_cache
        load = cached.get(tsv_name)
        if load is not None:
            return load
        netlist = self.problem.netlist
        net = netlist.net(self._tsv_net(tsv_name))
        port = netlist.port(tsv_name)
        total = 0.0
        for sink in net.sinks:
            if sink.is_port:
                continue
            inst = netlist.instance(sink.owner_name)
            if sink.pin_name in ("SI", "SE", "CK"):
                continue
            total += inst.cell.input_cap(sink.pin_name)
            if self._use_wire:
                length = (abs(port.x - inst.x) + abs(port.y - inst.y))
                total += self._wire.wire_cap_ff(length)
        cached[tsv_name] = total
        return total

    def _driver_resistance(self, net_name: str) -> float:
        resistance = self._resistance_cache.get(net_name)
        if resistance is None:
            net = self.problem.netlist.net(net_name)
            if net.driver is None or net.driver.is_port:
                resistance = 0.0
            else:
                inst = self.problem.netlist.instance(net.driver.owner_name)
                resistance = inst.cell.drive_resistance
            self._resistance_cache[net_name] = resistance
        return resistance

    def member_buffer_load(self, tsv_name: str) -> float:
        """What one member adds to the group buffer: its test mux pin
        (the mux re-drives the sink load itself)."""
        return self._mux_b_cap

    def required_at_mux_b(self, tsv_name: str) -> float:
        """Required time at the inbound test mux's B pin, from the
        test-mode STA of the reference build."""
        required = self._mux_b_required_cache.get(tsv_name)
        if required is None:
            required = self._required_at_mux_b(tsv_name)
            self._mux_b_required_cache[tsv_name] = required
        return required

    def _required_at_mux_b(self, tsv_name: str) -> float:
        mux_out = self.problem.tsv_mux_out.get(tsv_name)
        if mux_out is None:
            return INF
        required = self.test_timing.required_ps.get(mux_out, INF)
        if required is INF:
            return INF
        return required - self._mux_delay(
            self.test_timing.load_of_net(mux_out))

    # ------------------------------------------------------------------
    # Node filters (Algorithm 1, node construction)
    # ------------------------------------------------------------------
    def inbound_node_eligible(self, tsv_name: str) -> bool:
        return self.model_load_ff(tsv_name) < self.config.scenario.cap_th_ff

    def outbound_node_eligible(self, tsv_name: str) -> bool:
        # The capture happens in test mode; use the test-mode slack.
        slack = self.test_timing.slack_of_port(tsv_name)
        return slack > self.config.scenario.s_th_ps

    # ------------------------------------------------------------------
    # Pair feasibility (Algorithm 1, edge construction)
    # ------------------------------------------------------------------
    def inbound_reuse_feasible(self, ff_name: str, tsv_name: str) -> bool:
        """Can *ff_name* (via its group buffer) drive *tsv_name*'s mux?"""
        if not self._timed:
            return True
        state = self.initial_state(tsv_name, PortKind.TSV_INBOUND,
                                   is_ff=False)
        ledger = FfReuseLedger(self)
        return ledger.inbound_adoption_feasible(ff_name, state)

    def inbound_share_feasible(self, tsv_a: str, tsv_b: str) -> bool:
        """Can two inbound TSVs hang off one group buffer?"""
        cap_th = self.config.scenario.cap_th_ff
        if cap_th is INF:
            return True
        coupling = self._wire_cap(self.distance_um(tsv_a, tsv_b))
        total = (self.model_load_ff(tsv_a) + self.model_load_ff(tsv_b)
                 + 2 * self._mux.input_cap("B") + coupling)
        return total < cap_th

    def outbound_reuse_feasible(self, ff_name: str, tsv_name: str) -> bool:
        """Can *ff_name* observe *tsv_name* through an XOR tap?"""
        if not self._timed:
            return True
        state = self.initial_state(tsv_name, PortKind.TSV_OUTBOUND,
                                   is_ff=False)
        ledger = FfReuseLedger(self)
        return ledger.outbound_adoption_feasible(ff_name, state)

    def outbound_share_feasible(self, tsv_a: str, tsv_b: str) -> bool:
        """Can two outbound TSVs share one observation chain?"""
        if not self._timed:
            return True
        dist = self.distance_um(tsv_a, tsv_b)
        worst = 0.0
        for tsv in (tsv_a, tsv_b):
            net = self._tsv_net(tsv)
            arrival = (self.timing.arrival_ps.get(net, 0.0)
                       + self._wire_delay(dist, self._xor.input_cap("B"))
                       + 2 * self._xor_delay()
                       + self._mux_delay(self._sdff.input_cap("D")))
            worst = max(worst, arrival)
        slack = self._ff_required - worst
        return slack > self.config.scenario.s_th_ps + PREDICTION_MARGIN_PS

    def pair_feasible(self, name_a: str, name_b: str, kind: PortKind,
                      a_is_ff: bool, b_is_ff: bool) -> bool:
        """Edge-level timing feasibility for Algorithm 1."""
        if a_is_ff and b_is_ff:
            return False  # FF-FF edges never exist
        if kind is PortKind.TSV_INBOUND:
            if a_is_ff:
                return self.inbound_reuse_feasible(name_a, name_b)
            if b_is_ff:
                return self.inbound_reuse_feasible(name_b, name_a)
            return self.inbound_share_feasible(name_a, name_b)
        if a_is_ff:
            return self.outbound_reuse_feasible(name_a, name_b)
        if b_is_ff:
            return self.outbound_reuse_feasible(name_b, name_a)
        return self.outbound_share_feasible(name_a, name_b)

    # ------------------------------------------------------------------
    # Clique state (Algorithm 2's `cap` bookkeeping)
    # ------------------------------------------------------------------
    def initial_state(self, name: str, kind: PortKind, is_ff: bool
                      ) -> CliqueTimingState:
        location = self.problem.location_of(name)
        if is_ff:
            netlist = self.problem.netlist
            ff = netlist.instance(name)
            q_net = ff.output_net()
            d_net = ff.connections.get("D")
            # Re-pinning D onto the XOR/mux pair changes its net's load
            # by (xor.A + mux.A - ff.D) and slows its driver.
            d_slow = 0.0
            if d_net is not None:
                delta = (self._xor.input_cap("A") + self._mux.input_cap("A")
                         - self._sdff.input_cap("D"))
                d_slow = self._driver_resistance(d_net) * max(delta, 0.0)
            return CliqueTimingState(
                kind=kind, members=(), anchor=location, has_ff=True,
                ff_name=name,
                ff_arrival_ps=self.timing.arrival_ps.get(q_net, 0.0),
                ff_q_slack_ps=self.timing.slack_of_net(q_net),
                ff_resistance=ff.cell.drive_resistance,
                ff_d_arrival_ps=(self.test_timing.arrival_ps.get(d_net, 0.0)
                                 if d_net else 0.0),
                ff_d_slowdown_ps=d_slow,
            )
        if kind is PortKind.TSV_INBOUND:
            return CliqueTimingState(
                kind=kind, members=(name,), anchor=location, has_ff=False,
                cap_ff=self.member_buffer_load(name),
                min_required_ps=self.required_at_mux_b(name),
                max_member_load_ff=self.model_load_ff(name),
            )
        net = self._tsv_net(name)
        return CliqueTimingState(
            kind=kind, members=(name,), anchor=location, has_ff=False,
            worst_arrival_ps=self.test_timing.arrival_ps.get(net, 0.0),
            worst_member_resistance=self._driver_resistance(net),
            min_member_slack_ps=min(self.timing.slack_of_net(net),
                                    self.test_timing.slack_of_net(net)),
        )

    def _inbound_capture_ok(self, state: CliqueTimingState) -> bool:
        """Worst member path through buffer+mux vs. tightest required."""
        if not self._timed or state.min_required_ps is INF:
            return True
        if not state.has_ff:
            # Dedicated cell at the anchor: its launch is the SDFF's
            # clock-to-Q; members still pay buffer + route.
            path = (self._sdff.delay_ps(self.buf_pin_cap)
                    + self._buf.delay_ps(state.cap_ff)
                    + self._wire_delay(state.max_span_um,
                                       self._mux.input_cap("B")))
            return path + PREDICTION_MARGIN_PS <= state.min_required_ps
        # The baseline STA already includes each member's test mux (the
        # dedicated-wrapper reference build), so the prediction adds
        # only what reuse changes: FF loading, buffer, route.
        path = (state.ff_arrival_ps
                + state.ff_resistance * self.buf_pin_cap
                + self._buf.delay_ps(state.cap_ff)
                + self._wire_delay(state.max_span_um,
                                   self._mux.input_cap("B")))
        return path + PREDICTION_MARGIN_PS <= state.min_required_ps

    def merged_state(self, a: CliqueTimingState, b: CliqueTimingState
                     ) -> Optional[CliqueTimingState]:
        """State after merging two cliques, or None if infeasible.

        This is the paper's ``cap + 1 < cap_th`` merge test, with the
        accurate model adding anchor-distance wire terms.
        """
        if a.has_ff and b.has_ff:
            return None
        if (len(a.members) + len(b.members)
                > self.config.max_group_size):
            return None
        primary, other = (a, b) if (a.has_ff or not b.has_ff) else (b, a)
        anchor = primary.anchor
        span = (abs(a.anchor[0] - b.anchor[0])
                + abs(a.anchor[1] - b.anchor[1]))
        members = a.members + b.members
        max_span = max(primary.max_span_um, other.max_span_um + span)

        common = dict(
            kind=a.kind, members=members, anchor=anchor,
            has_ff=a.has_ff or b.has_ff,
            ff_name=a.ff_name or b.ff_name,
            ff_arrival_ps=max(a.ff_arrival_ps, b.ff_arrival_ps),
            ff_q_slack_ps=min(a.ff_q_slack_ps, b.ff_q_slack_ps),
            ff_resistance=max(a.ff_resistance, b.ff_resistance),
            ff_d_arrival_ps=max(a.ff_d_arrival_ps, b.ff_d_arrival_ps),
            ff_d_slowdown_ps=max(a.ff_d_slowdown_ps, b.ff_d_slowdown_ps),
            worst_member_resistance=max(a.worst_member_resistance,
                                        b.worst_member_resistance),
            min_member_slack_ps=min(a.min_member_slack_ps,
                                    b.min_member_slack_ps),
            max_span_um=max_span,
        )

        if a.kind is PortKind.TSV_INBOUND:
            cap = a.cap_ff + b.cap_ff + self._wire_cap(span)
            if cap >= self.config.scenario.cap_th_ff:
                return None
            state = CliqueTimingState(
                cap_ff=cap,
                min_required_ps=min(a.min_required_ps, b.min_required_ps),
                max_member_load_ff=max(a.max_member_load_ff,
                                       b.max_member_load_ff),
                **common,
            )
            if not self._inbound_capture_ok(state):
                return None
            return state

        # Outbound: the XOR chain deepens with the member count.
        # worst_arrival_ps stays *raw* (at the member net); wire and
        # driver-slowdown terms are computed from the span when checked.
        worst_raw = max(a.worst_arrival_ps, b.worst_arrival_ps)
        state = CliqueTimingState(worst_arrival_ps=worst_raw, **common)
        if self._timed and not self.outbound_capture_ok(state, 0.0):
            return None
        return state

    def outbound_capture_ok(self, state: CliqueTimingState,
                            extra_hop_um: float) -> bool:
        """Test-capture feasibility of an outbound group whose chain
        sits *extra_hop_um* beyond the current anchor (0 for the state
        as-is, the FF hop at adoption time)."""
        if not self._timed:
            return True
        span = state.max_span_um + extra_hop_um
        xor_pin = self._xor.input_cap("B")
        tap_cap = xor_pin + self._wire_cap(span)
        slowdown = state.worst_member_resistance * tap_cap
        # The tap slowdown also delays the member's other fanout; it
        # must fit inside the member's own slack.
        if slowdown + PREDICTION_MARGIN_PS > state.min_member_slack_ps:
            return False
        member_source = (state.worst_arrival_ps + slowdown
                         + self._wire_delay(span, xor_pin))
        d_source = ((state.ff_d_arrival_ps + state.ff_d_slowdown_ps)
                    if state.has_ff else 0.0)
        chain_depth = max(1, len(state.members))
        capture = (max(member_source, d_source)
                   + chain_depth * self._xor_delay()
                   + self._mux_delay(self._sdff.input_cap("D")))
        slack = self._ff_required - capture
        return slack > self.config.scenario.s_th_ps + PREDICTION_MARGIN_PS


class FfReuseLedger:
    """Per-FF budget accounting for multi-group reuse (DESIGN.md §4)."""

    def __init__(self, model: ReuseTimingModel) -> None:
        self.model = model
        self._extra_q_cap: Dict[str, float] = {}
        self._outbound_used: Set[str] = set()

    # ------------------------------------------------------------------
    def _ff_q_slack(self, ff_name: str) -> float:
        netlist = self.model.problem.netlist
        q_net = netlist.instance(ff_name).output_net()
        return self.model.timing.slack_of_net(q_net)

    def _ff_arrival(self, ff_name: str) -> float:
        netlist = self.model.problem.netlist
        q_net = netlist.instance(ff_name).output_net()
        return self.model.timing.arrival_ps.get(q_net, 0.0)

    def inbound_adoption_feasible(self, ff_name: str,
                                  state: CliqueTimingState) -> bool:
        model = self.model
        if not model._timed:
            return True
        netlist = model.problem.netlist
        ff = netlist.instance(ff_name)
        new_cap = self._extra_q_cap.get(ff_name, 0.0) + model.buf_pin_cap
        delta_delay = ff.cell.drive_resistance * new_cap
        if self._ff_q_slack(ff_name) < delta_delay + PREDICTION_MARGIN_PS:
            return False
        if state.min_required_ps is INF:
            return True
        fx, fy = model.problem.location_of(ff_name)
        hop = abs(fx - state.anchor[0]) + abs(fy - state.anchor[1])
        cap = state.cap_ff + model._wire_cap(hop)
        if cap >= model.config.scenario.cap_th_ff:
            return False
        path = (self._ff_arrival(ff_name) + delta_delay
                + model._buf.delay_ps(cap)
                + model._wire_delay(state.max_span_um + hop,
                                    model._mux.input_cap("B")))
        return path + PREDICTION_MARGIN_PS <= state.min_required_ps

    def outbound_adoption_feasible(self, ff_name: str,
                                   state: CliqueTimingState) -> bool:
        model = self.model
        if ff_name in self._outbound_used:
            return False
        if not model._timed:
            return True
        netlist = model.problem.netlist
        ff = netlist.instance(ff_name)
        d_net = ff.connections.get("D")
        if d_net is None:
            return False
        mux_penalty = model._mux_delay(model._sdff.input_cap("D"))
        delta = (model._xor.input_cap("A") + model._mux.input_cap("A")
                 - model._sdff.input_cap("D"))
        d_slow = model._driver_resistance(d_net) * max(delta, 0.0)
        d_slack = min(model.timing.slack_of_net(d_net),
                      model.test_timing.slack_of_net(d_net))
        if d_slack < mux_penalty + d_slow + PREDICTION_MARGIN_PS:
            return False
        fx, fy = model.problem.location_of(ff_name)
        hop = abs(fx - state.anchor[0]) + abs(fy - state.anchor[1])
        delta = (model._xor.input_cap("A") + model._mux.input_cap("A")
                 - model._sdff.input_cap("D"))
        probe = CliqueTimingState(
            kind=state.kind, members=state.members, anchor=state.anchor,
            has_ff=True, worst_arrival_ps=state.worst_arrival_ps,
            worst_member_resistance=state.worst_member_resistance,
            max_span_um=state.max_span_um,
            ff_d_arrival_ps=model.test_timing.arrival_ps.get(d_net, 0.0),
            ff_d_slowdown_ps=model._driver_resistance(d_net)
            * max(delta, 0.0),
        )
        return model.outbound_capture_ok(probe, hop)

    # ------------------------------------------------------------------
    def adoption_feasible(self, ff_name: str, state: CliqueTimingState
                          ) -> bool:
        if state.kind is PortKind.TSV_INBOUND:
            return self.inbound_adoption_feasible(ff_name, state)
        return self.outbound_adoption_feasible(ff_name, state)

    def commit(self, ff_name: str, state: CliqueTimingState) -> None:
        if state.kind is PortKind.TSV_INBOUND:
            self._extra_q_cap[ff_name] = (self._extra_q_cap.get(ff_name, 0.0)
                                          + self.model.buf_pin_cap)
        else:
            self._outbound_used.add(ff_name)
