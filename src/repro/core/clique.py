"""Heuristic clique partitioning — Algorithm 2 of the paper.

Start with every node a singleton clique. Repeatedly take the
minimum-degree node with non-zero degree and its minimum-degree
neighbour; if the merged wrapper stays legal (the paper's
``cap + 1 < cap_th`` test, generalized by
:meth:`~repro.core.timing_model.ReuseTimingModel.merged_state` to the
accurate load/slack bookkeeping), merge them into one clique whose
neighbourhood is the *intersection* of the two neighbourhoods (keeping
the partition's clique invariant); otherwise delete the edge. Stop when
no edges remain.

Minimizing cliques minimizes additional wrapper cells: every clique
without a scan FF needs one new cell, and the number of FF cliques is
fixed.
"""

from __future__ import annotations

import dataclasses
import heapq
import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.graph import WcmGraph
from repro.core.timing_model import CliqueTimingState, ReuseTimingModel
from repro.netlist.core import PortKind
from repro.runtime import instrument, trace


@dataclass
class Clique:
    """One clique of the final partition."""

    kind: PortKind
    tsvs: List[str]
    ff: Optional[str] = None
    #: load/slack bookkeeping carried out of Algorithm 2 (used by the
    #: FF-adoption phase, DESIGN.md §4)
    state: Optional[CliqueTimingState] = None

    @property
    def is_reuse(self) -> bool:
        return self.ff is not None and bool(self.tsvs)


@dataclass
class CliquePartition:
    """Result of Algorithm 2 on one graph."""

    kind: PortKind
    cliques: List[Clique]
    #: merge attempts rejected by the capacity/slack test
    rejected_merges: int = 0
    merges: int = 0
    #: merges contributed by the singleton-rescue pass (also included
    #: in ``merges``); carried so an incremental re-partition can
    #: re-emit the same counters without re-running Algorithm 2
    singleton_rescues: int = 0

    @property
    def reused_ff_count(self) -> int:
        return sum(1 for c in self.cliques if c.is_reuse)

    @property
    def additional_cells(self) -> int:
        """Cliques holding TSVs but no FF (excluded TSVs counted later)."""
        return sum(1 for c in self.cliques if c.tsvs and c.ff is None)


_STATE_GETTER = operator.attrgetter(
    *(f.name for f in dataclasses.fields(CliqueTimingState)))


def _state_key(state: CliqueTimingState) -> tuple:
    """Hashable identity of a clique timing state (all fields are
    floats, strings, tuples or enums — no nesting, so a flat attribute
    tuple equals ``dataclasses.astuple`` at a fraction of the cost)."""
    return _STATE_GETTER(state)


def _merged_state_fn(model: ReuseTimingModel,
                     merge_memo: Optional[Dict]) -> Callable:
    """``merged_state`` with an optional cross-run memo.

    ``merged_state`` is pure in its two state arguments plus session-
    constant configuration (``max_group_size``, ``cap_th``, ``s_th``,
    library caps, the wire model), so outcomes can be memoized on the
    state *values* and shared across re-partitions — states embed every
    timing quantity the check reads, so a stale-timing hit is
    impossible. Result states are never mutated after partitioning, so
    sharing the memoized objects is safe.
    """
    if merge_memo is None:
        return model.merged_state

    def merged(a: CliqueTimingState, b: CliqueTimingState):
        key = (_state_key(a), _state_key(b))
        try:
            return merge_memo[key]
        except KeyError:
            result = model.merged_state(a, b)
            merge_memo[key] = result
            return result

    return merged


def partition_cliques(graph: WcmGraph, model: ReuseTimingModel,
                      merge_memo: Optional[Dict] = None
                      ) -> CliquePartition:
    """Run Algorithm 2 on *graph* with merge checks from *model*.

    *merge_memo* (a plain dict owned by the caller) memoizes
    ``merged_state`` outcomes across repeated partitions — see
    :func:`_merged_state_fn`; results are byte-identical with or
    without it.
    """
    merged_state = _merged_state_fn(model, merge_memo)
    # Clique state, keyed by an integer id.
    members: Dict[int, List[str]] = {}
    ff_of: Dict[int, Optional[str]] = {}
    states: Dict[int, CliqueTimingState] = {}
    adjacency: Dict[int, Set[int]] = {}

    id_of_node: Dict[str, int] = {}
    for index, name in enumerate(graph.nodes):
        id_of_node[name] = index
        if graph.is_ff[name]:
            members[index] = []
            ff_of[index] = name
        else:
            members[index] = [name]
            ff_of[index] = None
        states[index] = model.initial_state(name, graph.kind,
                                            graph.is_ff[name])
    for name, neighbours in graph.adjacency.items():
        adjacency[id_of_node[name]] = {id_of_node[n] for n in neighbours}

    next_id = len(graph.nodes)
    rejected = 0
    merges = 0

    # Lazy min-degree heap over (degree, id).
    heap: List[Tuple[int, int]] = [
        (len(neigh), cid) for cid, neigh in adjacency.items() if neigh
    ]
    heapq.heapify(heap)

    def push(cid: int) -> None:
        degree = len(adjacency[cid])
        if degree:
            heapq.heappush(heap, (degree, cid))

    while heap:
        degree, n1 = heapq.heappop(heap)
        if n1 not in adjacency:
            continue  # stale: merged away
        current = len(adjacency[n1])
        if current == 0:
            continue
        if degree != current:
            heapq.heappush(heap, (current, n1))
            continue

        # Minimum-degree neighbour (sampled when the neighbourhood is
        # huge; exact min over thousands of candidates per iteration
        # would make dense graphs quadratic).
        neighbours = adjacency[n1]
        if len(neighbours) <= 64:
            n2 = min(neighbours, key=lambda c: (len(adjacency[c]), c))
        else:
            # The sample must not depend on set-iteration order (clique
            # ids are ints, but "first 64 seen" still tracks insertion
            # history); take the 64 smallest ids — deterministic and
            # O(n log 64).
            sample = heapq.nsmallest(64, neighbours)
            n2 = min(sample, key=lambda c: (len(adjacency[c]), c))

        merged = merged_state(states[n1], states[n2])
        if merged is None:
            rejected += 1
            adjacency[n1].discard(n2)
            adjacency[n2].discard(n1)
            push(n1)
            push(n2)
            continue

        # Merge n1 and n2 into n'.
        merges += 1
        new_id = next_id
        next_id += 1
        common = (adjacency[n1] & adjacency[n2]) - {n1, n2}
        members[new_id] = members[n1] + members[n2]
        ff_of[new_id] = ff_of[n1] or ff_of[n2]
        states[new_id] = merged
        adjacency[new_id] = set(common)

        for cid in adjacency[n1]:
            if cid not in (n1, n2):
                adjacency[cid].discard(n1)
        for cid in adjacency[n2]:
            if cid not in (n1, n2):
                adjacency[cid].discard(n2)
        for cid in common:
            adjacency[cid].add(new_id)
            push(cid)
        del adjacency[n1], adjacency[n2]
        del states[n1], states[n2]
        push(new_id)
        # Nodes that lost an edge need their heap entries refreshed.
        # (Stale entries are skipped lazily on pop.)

    cliques: List[Clique] = []
    for cid, member_list in members.items():
        if cid not in adjacency:
            continue  # merged away
        cliques.append(Clique(kind=graph.kind, tsvs=list(member_list),
                              ff=ff_of[cid], state=states.get(cid)))

    rescued = _absorb_singletons(graph, merged_state, cliques)
    merges += rescued

    instrument.count("clique.merges", merges)
    instrument.count("clique.rejected_merges", rejected)
    instrument.count("clique.singleton_rescues", rescued)
    if trace.active() is not None:
        for clique in cliques:
            trace.observe("clique.size", len(clique.tsvs))

    return CliquePartition(kind=graph.kind, cliques=cliques,
                           rejected_merges=rejected, merges=merges,
                           singleton_rescues=rescued)


def _absorb_singletons(graph: WcmGraph, merged_state: Callable,
                       cliques: List[Clique]) -> int:
    """Second-chance pass: Algorithm 2's intersection adjacency loses
    information as cliques form, stranding nodes whose merged
    neighbours disappeared. Re-check stranded small cliques against the
    ORIGINAL graph: a clique may absorb another when every cross pair
    is an original edge and the merged load/slack state stays legal.
    The clique property is preserved exactly."""
    adjacency = graph.adjacency
    merges = 0
    # Smallest donors first; try absorbing them into any compatible host.
    order = sorted(range(len(cliques)),
                   key=lambda i: (len(cliques[i].tsvs),
                                  cliques[i].ff is not None))
    absorbed: set = set()
    for donor_index in order:
        donor = cliques[donor_index]
        if donor_index in absorbed or not donor.tsvs or donor.state is None:
            continue
        if len(donor.tsvs) > 2:
            continue  # only rescue the stragglers
        donor_nodes = list(donor.tsvs) + ([donor.ff] if donor.ff else [])
        for host_index, host in enumerate(cliques):
            if host_index == donor_index or host_index in absorbed:
                continue
            if not host.tsvs or host.state is None:
                continue
            if donor.ff is not None and host.ff is not None:
                continue
            host_nodes = list(host.tsvs) + ([host.ff] if host.ff else [])
            if not all(b in adjacency.get(a, ())
                       for a in donor_nodes for b in host_nodes):
                continue
            merged = merged_state(host.state, donor.state)
            if merged is None:
                continue
            host.tsvs.extend(donor.tsvs)
            host.ff = host.ff or donor.ff
            host.state = merged
            donor.tsvs = []
            donor.ff = None
            absorbed.add(donor_index)
            merges += 1
            break
    cliques[:] = [c for c in cliques if c.tsvs or c.ff]
    return merges


def repartition(graph: WcmGraph, model: ReuseTimingModel,
                dirty_nodes: Set[str], frozen: CliquePartition,
                merge_memo: Optional[Dict] = None) -> CliquePartition:
    """Incremental entry point for ECO sessions.

    When the edit left the sharing graph untouched (*dirty_nodes* is
    empty and the rebuilt *graph* matches the one *frozen* was computed
    from), Algorithm 2 would reproduce *frozen* exactly — so skip it and
    re-emit the same counters/observations from the frozen partition.
    Any dirty node invalidates the greedy merge order globally (the
    min-degree heap is sequential), so a non-empty dirty set falls back
    to a full re-run of Algorithm 2, accelerated by *merge_memo* which
    short-circuits the load/slack checks for state pairs already decided
    in previous partitions.
    """
    if not dirty_nodes:
        instrument.count("clique.merges", frozen.merges)
        instrument.count("clique.rejected_merges", frozen.rejected_merges)
        instrument.count("clique.singleton_rescues",
                         frozen.singleton_rescues)
        if trace.active() is not None:
            for clique in frozen.cliques:
                trace.observe("clique.size", len(clique.tsvs))
        cliques = [Clique(kind=c.kind, tsvs=list(c.tsvs), ff=c.ff,
                          state=c.state)
                   for c in frozen.cliques]
        return CliquePartition(kind=frozen.kind, cliques=cliques,
                               rejected_merges=frozen.rejected_merges,
                               merges=frozen.merges,
                               singleton_rescues=frozen.singleton_rescues)
    return partition_cliques(graph, model, merge_memo=merge_memo)
