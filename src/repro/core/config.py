"""WCM configuration: thresholds, scenarios and method presets.

The paper's two experimental scenarios:

* **area-optimized** ("no timing"): no timing constraint at all —
  ``cap_th`` = ∞, ``s_th`` = −∞, no distance limit;
* **performance-optimized** ("tight timing"): the clock period is tuned
  just above the critical path of the die *with mandatory dedicated
  wrappers inserted* (muxes at every inbound TSV are structural
  necessities shared by every method), ``cap_th`` from the cell
  library, and a positive slack margin ``s_th``.

Method presets:

* ``ours(...)`` — accurate timing model (cap + wire delay), distance
  threshold ``d_th``, larger-TSV-set-first ordering, overlapped-cone
  sharing under testability constraints (``cov_th = 0.5 %``,
  ``p_th = 10``, the values of Section V-B);
* ``agrawal(...)`` — the reuse-based baseline [4]: capacity load only
  (no wire terms), no distance limit, inbound-set-first, overlap
  forbidden.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.netlist.library import DEFAULT_CAP_TH_FF
from repro.sta.constraints import ClockConstraint, UNCONSTRAINED
from repro.util.errors import ConfigError

INF = math.inf


@dataclass(frozen=True)
class Scenario:
    """One timing scenario (clock + thresholds)."""

    name: str
    clock: ClockConstraint
    cap_th_ff: float
    s_th_ps: float

    @classmethod
    def area_optimized(cls, cap_th_ff: float = DEFAULT_CAP_TH_FF
                       ) -> "Scenario":
        """The paper's "no timing" scenario.

        Only *timing* constraints are dropped; ``cap_th`` comes from the
        cell library (a drive-strength limit, not a timing budget) and
        still bounds how many TSVs one wrapper driver can serve —
        Table III's area-scenario group counts imply exactly that.
        """
        return cls(name="area", clock=UNCONSTRAINED, cap_th_ff=cap_th_ff,
                   s_th_ps=-INF)

    @classmethod
    def performance_optimized(cls, period_ps: float,
                              cap_th_ff: float = DEFAULT_CAP_TH_FF,
                              s_th_ps: float = 0.0) -> "Scenario":
        """The paper's "tight timing" scenario for a given period."""
        if period_ps <= 0:
            raise ConfigError(f"period must be positive, got {period_ps}")
        return cls(name="tight", clock=ClockConstraint(period_ps=period_ps),
                   cap_th_ff=cap_th_ff, s_th_ps=s_th_ps)

    @property
    def is_timed(self) -> bool:
        return self.clock.is_constrained


@dataclass(frozen=True)
class WcmConfig:
    """Full configuration of one WCM method run."""

    scenario: Scenario
    #: method label for reports
    method: str = "ours"
    #: distance threshold d_th (um); inf disables (Agrawal has none)
    d_th_um: float = INF
    #: when d_th_um is inf, derive it as this fraction of the die's
    #: half-perimeter (None keeps it disabled) — the paper leaves the
    #: value of d_th unstated, so ours defaults to a placement-relative
    #: rule of thumb
    d_th_fraction: Optional[float] = None
    #: include wire delay / wire cap in feasibility (the accurate model)
    use_wire_delay: bool = True
    #: process the larger TSV set first (ours) vs inbound first ([4])
    order_by_set_size: bool = True
    #: allow overlapped fan-in/fan-out cones under testability bounds
    allow_overlap: bool = True
    #: max tolerated fault-coverage drop per sharing decision (fraction)
    cov_th: float = 0.005
    #: max tolerated test-pattern increase per sharing decision
    p_th: int = 10
    #: testability estimator mode: "structural" (size-scaled, selective
    #: — the default; its rejection rate matches the paper's few-percent
    #: edge expansion) or "faultsim" (measures the actual detection loss
    #: under packed random patterns; more permissive)
    estimator_mode: str = "structural"
    #: cap on per-die fault-sim pair checks before falling back to the
    #: structural estimate (keeps big dies tractable)
    estimator_budget: int = 4000
    #: design-rule bound on TSVs per wrapper group (XOR-chain aliasing
    #: and routing); binds mainly where cap_th does not (outbound /
    #: area scenario)
    max_group_size: int = 6
    #: iterate sign-off STA and evict reuse groups on violating paths
    #: (the ECO loop behind "no timing violation"); [4] has no such step
    signoff_repair: bool = True
    #: max repair iterations before giving up
    repair_iterations: int = 20
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.cov_th < 0:
            raise ConfigError(f"cov_th must be >= 0, got {self.cov_th}")
        if self.p_th < 0:
            raise ConfigError(f"p_th must be >= 0, got {self.p_th}")
        if self.estimator_mode not in ("faultsim", "structural"):
            raise ConfigError(
                f"estimator_mode must be 'faultsim' or 'structural', "
                f"got {self.estimator_mode!r}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def ours(cls, scenario: Scenario, d_th_um: float = INF,
             d_th_fraction: Optional[float] = 0.8,
             **overrides) -> "WcmConfig":
        """The proposed method under *scenario*."""
        return cls(scenario=scenario, method="ours", d_th_um=d_th_um,
                   d_th_fraction=d_th_fraction,
                   use_wire_delay=True, order_by_set_size=True,
                   allow_overlap=True, **overrides)

    @classmethod
    def agrawal(cls, scenario: Scenario, **overrides) -> "WcmConfig":
        """The baseline of Agrawal et al. [4] under *scenario*."""
        return cls(scenario=scenario, method="agrawal", d_th_um=INF,
                   use_wire_delay=False, order_by_set_size=False,
                   allow_overlap=False, signoff_repair=False, **overrides)

    def without_overlap(self) -> "WcmConfig":
        """Ours with overlapped-cone sharing disabled (Table V / Fig 7)."""
        return replace(self, allow_overlap=False)

    @property
    def is_area_scenario(self) -> bool:
        return not self.scenario.is_timed
