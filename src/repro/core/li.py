"""Reuse-once baseline of J. Li & D. Xiang [3].

Each scan flip-flop may be reused as the wrapper cell of *at most one*
TSV (no TSV–TSV sharing at all), and only when the relevant
fan-in/fan-out cones do not overlap. Additional wrapper cells cover
whatever no FF can serve. Implemented as a greedy bipartite matching
ordered by FF→TSV distance, which is how a DFT engineer would seed it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import WcmConfig
from repro.core.problem import WcmProblem
from repro.core.timing_model import ReuseTimingModel
from repro.dft.wrapper import WrapperGroup, WrapperPlan
from repro.netlist.core import PortKind


def run_li_reuse_once(problem: WcmProblem, config: WcmConfig) -> WrapperPlan:
    """Build a [3]-style reuse-once wrapper plan."""
    model = ReuseTimingModel(problem, config)
    used_ffs: Set[str] = set()
    groups: List[WrapperGroup] = []

    for kind in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND):
        tsvs = problem.tsvs_of_kind(kind)
        # Candidate (distance, ff, tsv) pairs, nearest first.
        candidates: List[Tuple[float, str, str]] = []
        for ff in problem.scan_ffs:
            for tsv in tsvs:
                candidates.append((model.distance_um(ff, tsv), ff, tsv))
        candidates.sort()

        assigned: Dict[str, str] = {}
        for _distance, ff, tsv in candidates:
            if ff in used_ffs or tsv in assigned:
                continue
            if problem.cones.overlaps(ff, tsv, kind):
                continue
            if not model.pair_feasible(ff, tsv, kind,
                                       a_is_ff=True, b_is_ff=False):
                continue
            assigned[tsv] = ff
            used_ffs.add(ff)

        for tsv in tsvs:
            groups.append(WrapperGroup(kind=kind, tsvs=[tsv],
                                       reused_ff=assigned.get(tsv)))

    return WrapperPlan(die_name=problem.netlist.name, groups=groups)
