"""The paper's contribution: timing-aware wrapper cell minimization.

Pipeline (Fig. 6 of the paper):

1. :mod:`repro.core.problem` — bundle a scan-stitched, placed die with
   its baseline STA into a :class:`WcmProblem`.
2. :mod:`repro.core.timing_model` — the *accurate* timing model
   (capacity load + wire delay from FF/TSV coordinates) and the
   load-only model of Agrawal et al. [4].
3. :mod:`repro.core.graph` — graph construction (Algorithm 1), with
   node filters (``cap_th``, ``s_th``), distance filter (``d_th``),
   cone-overlap tests, and the testability-constrained overlap
   expansion (``cov_th``, ``p_th``).
4. :mod:`repro.core.clique` — the heuristic clique-partitioning
   algorithm (Algorithm 2).
5. :mod:`repro.core.flow` — the end-to-end flow: TSV-set ordering, two
   partitioning passes, wrapper insertion, restitching, and the final
   STA violation check.

Baselines: :func:`repro.core.config.WcmConfig.agrawal` (load-only
timing, inbound-first, no overlap) and :mod:`repro.core.li` (reuse-once
matching of Li & Xiang [3]).
"""

from repro.core.config import Scenario, WcmConfig
from repro.core.problem import WcmProblem, build_problem
from repro.core.timing_model import ReuseTimingModel
from repro.core.graph import GraphStats, WcmGraph, build_wcm_graph
from repro.core.clique import CliquePartition, partition_cliques
from repro.core.testability import OverlapEstimate, OverlapTestabilityEstimator
from repro.core.flow import WcmRunResult, run_wcm_flow
from repro.core.li import run_li_reuse_once

__all__ = [
    "Scenario",
    "WcmConfig",
    "WcmProblem",
    "build_problem",
    "ReuseTimingModel",
    "GraphStats",
    "WcmGraph",
    "build_wcm_graph",
    "CliquePartition",
    "partition_cliques",
    "OverlapEstimate",
    "OverlapTestabilityEstimator",
    "WcmRunResult",
    "run_wcm_flow",
    "run_li_reuse_once",
]
