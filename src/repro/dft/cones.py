"""Cached fan-in/fan-out cone analysis for WCM graph construction.

Algorithm 1 tests, for every candidate (scan FF, TSV) or (TSV, TSV)
pair, whether the relevant cones overlap:

* sharing a wrapper for an **inbound** TSV correlates the *driving*
  value, so the relevant cones are **fan-out** cones (of the FF's Q and
  of each inbound TSV);
* sharing an observation point for an **outbound** TSV XOR-merges the
  *observed* values, so the relevant cones are **fan-in** cones (of the
  FF's D and of each outbound TSV).

Cones are frozensets of object names, computed once per object and
cached; pair overlap tests are then set intersections.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.netlist.core import Netlist, PortKind
from repro.netlist.topology import fanin_cone, fanout_cone
from repro.util.errors import NetlistError


class ConeAnalysis:
    """Lazy cone cache over one die netlist.

    Overlap tests compare *gate* memberships only: a shared level-0
    source (a primary input or the Q of some third flip-flop) is weak
    common-mode correlation, not the shared-logic case of the paper's
    Fig. 4, and counting it would mark nearly every pair of a richly
    mixed design as overlapping. Raw cones (including ports/FFs) remain
    available for the testability estimator's region mapping.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._fanin: Dict[str, FrozenSet[str]] = {}
        self._fanout: Dict[str, FrozenSet[str]] = {}
        self._gate_only: Dict[Tuple[str, PortKind], FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    def fanout_of(self, name: str) -> FrozenSet[str]:
        """Fan-out cone of a scan FF (from Q) or inbound TSV (from net)."""
        cone = self._fanout.get(name)
        if cone is None:
            cone = fanout_cone(self.netlist, name)
            self._fanout[name] = cone
        return cone

    def fanin_of(self, name: str) -> FrozenSet[str]:
        """Fan-in cone of a scan FF (into D) or outbound TSV (into net)."""
        cone = self._fanin.get(name)
        if cone is None:
            cone = fanin_cone(self.netlist, name)
            self._fanin[name] = cone
        return cone

    # ------------------------------------------------------------------
    def relevant_cone(self, name: str, tsv_kind: PortKind) -> FrozenSet[str]:
        """The cone that matters when *name* serves a TSV set of
        *tsv_kind* (see module docstring)."""
        if tsv_kind is PortKind.TSV_INBOUND:
            return self.fanout_of(name)
        if tsv_kind is PortKind.TSV_OUTBOUND:
            return self.fanin_of(name)
        raise NetlistError(f"not a TSV kind: {tsv_kind}")

    def gate_cone(self, name: str, tsv_kind: PortKind) -> FrozenSet[str]:
        """The relevant cone restricted to combinational gates (the
        membership the overlap tests compare)."""
        key = (name, tsv_kind)
        cached = self._gate_only.get(key)
        if cached is not None:
            return cached
        instances = self.netlist.instances
        cone = frozenset(
            item for item in self.relevant_cone(name, tsv_kind)
            if item in instances and not instances[item].is_sequential
        )
        self._gate_only[key] = cone
        return cone

    def overlap(self, name_a: str, name_b: str, tsv_kind: PortKind
                ) -> FrozenSet[str]:
        """The shared gate region of two candidates (may be empty)."""
        cone_a = self.gate_cone(name_a, tsv_kind)
        cone_b = self.gate_cone(name_b, tsv_kind)
        if len(cone_a) > len(cone_b):
            cone_a, cone_b = cone_b, cone_a
        return frozenset(item for item in cone_a if item in cone_b)

    def overlaps(self, name_a: str, name_b: str, tsv_kind: PortKind) -> bool:
        cone_a = self.gate_cone(name_a, tsv_kind)
        cone_b = self.gate_cone(name_b, tsv_kind)
        if len(cone_a) > len(cone_b):
            cone_a, cone_b = cone_b, cone_a
        return any(item in cone_b for item in cone_a)
