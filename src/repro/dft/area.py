"""Area accounting for wrapper plans.

The paper's whole motivation is *area overhead*: dedicated wrapper
cells at every TSV cost die area, and reuse removes it. This module
prices a wrapper plan in um² using the cell library's areas — the
wrapper cells themselves plus all the glue insertion adds (test muxes,
XOR taps, group buffers) — and expresses it against the die's logic
area, so "0.92%–6.01% fewer wrapper cells" can be read in um² too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dft.wrapper import InsertionReport, WrapperPlan
from repro.netlist.core import Netlist, PortKind
from repro.util.tables import AsciiTable, format_percent


@dataclass
class AreaReport:
    """Area price of one wrapper plan on one die."""

    die_name: str
    logic_area_um2: float
    wrapper_cell_area_um2: float
    mux_area_um2: float
    xor_area_um2: float
    buffer_area_um2: float

    @property
    def dft_area_um2(self) -> float:
        return (self.wrapper_cell_area_um2 + self.mux_area_um2
                + self.xor_area_um2 + self.buffer_area_um2)

    @property
    def overhead_fraction(self) -> float:
        if self.logic_area_um2 <= 0:
            return 0.0
        return self.dft_area_um2 / self.logic_area_um2

    def render(self) -> str:
        table = AsciiTable(["component", "area (um^2)"],
                           title=f"DFT area report — {self.die_name}")
        table.add_row(["functional logic", f"{self.logic_area_um2:.1f}"])
        table.add_row(["wrapper cells", f"{self.wrapper_cell_area_um2:.1f}"])
        table.add_row(["test muxes", f"{self.mux_area_um2:.1f}"])
        table.add_row(["XOR taps", f"{self.xor_area_um2:.1f}"])
        table.add_row(["group buffers", f"{self.buffer_area_um2:.1f}"])
        table.add_separator()
        table.add_row(["DFT total", f"{self.dft_area_um2:.1f}"])
        table.add_row(["overhead", format_percent(self.overhead_fraction)])
        return table.render()


def area_of_insertion(netlist: Netlist, report: InsertionReport
                      ) -> AreaReport:
    """Price an insertion report against *netlist* (the bare die)."""
    library = netlist.library
    logic = sum(inst.cell.area_um2 for inst in netlist.instances.values())
    return AreaReport(
        die_name=netlist.name,
        logic_area_um2=logic,
        wrapper_cell_area_um2=report.wrapper_cells
        * library.get("SDFF_X1").area_um2,
        mux_area_um2=report.muxes * library.get("MUX2_X1").area_um2,
        xor_area_um2=report.xors * library.get("XOR2_X1").area_um2,
        buffer_area_um2=(report.wrapper_cells + report.reused_ffs)
        * library.get("BUF_X2").area_um2
        if _plan_has_inbound(report) else 0.0,
    )


def _plan_has_inbound(report: InsertionReport) -> bool:
    # Buffers are only inserted for inbound groups; muxes betray them.
    return report.muxes > 0


def plan_area_estimate(netlist: Netlist, plan: WrapperPlan) -> AreaReport:
    """Price a plan without inserting it (estimation for planning)."""
    library = netlist.library
    logic = sum(inst.cell.area_um2 for inst in netlist.instances.values())
    muxes = xors = buffers = cells = 0
    for group in list(plan.groups):
        if group.kind is PortKind.TSV_INBOUND:
            muxes += len(group.tsvs)
            buffers += 1
            if group.reused_ff is None:
                cells += 1
        else:
            if group.reused_ff is not None:
                xors += len(group.tsvs)
                muxes += 1
            else:
                xors += max(0, len(group.tsvs) - 1)
                cells += 1
    for tsv in plan.excluded_tsvs:
        kind = netlist.port(tsv).kind
        cells += 1
        if kind is PortKind.TSV_INBOUND:
            muxes += 1
            buffers += 1
    return AreaReport(
        die_name=netlist.name,
        logic_area_um2=logic,
        wrapper_cell_area_um2=cells * library.get("SDFF_X1").area_um2,
        mux_area_um2=muxes * library.get("MUX2_X1").area_um2,
        xor_area_um2=xors * library.get("XOR2_X1").area_um2,
        buffer_area_um2=buffers * library.get("BUF_X2").area_um2,
    )


def compare_plans(netlist: Netlist, plans: Dict[str, WrapperPlan]) -> str:
    """Side-by-side um² comparison of several plans on one die."""
    table = AsciiTable(
        ["plan", "#reused", "#additional", "DFT area (um^2)", "overhead"],
        title=f"Wrapper-plan area comparison — {netlist.name}",
    )
    for label, plan in plans.items():
        report = plan_area_estimate(netlist, plan)
        table.add_row([
            label, plan.reused_scan_ff_count, plan.additional_wrapper_cells,
            f"{report.dft_area_um2:.1f}",
            format_percent(report.overhead_fraction),
        ])
    return table.render()
