"""Scan-chain stitching.

Connects every scan flip-flop's SI input into one or more chains fed
from ``scan_in`` ports and observed at ``scan_out`` ports, with a
shared ``scan_enable``. Chain order is placement-aware (serpentine
sort) so the scan wiring is short, as a layout-driven stitcher would
produce. Stitching is re-runnable: wrapper insertion adds new scan
cells, after which the flow unstitches and restitches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netlist.core import Instance, Netlist, PortKind
from repro.util.errors import NetlistError


@dataclass
class ScanChain:
    """One stitched chain: ordered FF instance names, head/tail ports."""

    index: int
    flip_flops: List[str]
    scan_in_port: str
    scan_out_port: str

    @property
    def length(self) -> int:
        return len(self.flip_flops)


def _serpentine_order(flip_flops: List[Instance], rows: int = 16) -> List[Instance]:
    """Order FFs row-major with alternating direction (short stitches)."""
    if not flip_flops:
        return []
    ys = [ff.y for ff in flip_flops]
    y_min, y_max = min(ys), max(ys)
    span = (y_max - y_min) or 1.0

    def row_of(ff: Instance) -> int:
        return min(rows - 1, int((ff.y - y_min) / span * rows))

    # Single-pass bucketing keeps each row in flip_flops order (same as
    # a per-row filter), so the stable x-sort yields identical chains.
    buckets: List[List[Instance]] = [[] for _ in range(rows)]
    for ff in flip_flops:
        buckets[row_of(ff)].append(ff)
    ordered: List[Instance] = []
    for row, members in enumerate(buckets):
        members.sort(key=lambda ff: ff.x, reverse=(row % 2 == 1))
        ordered.extend(members)
    return ordered


def unstitch_scan_chains(netlist: Netlist) -> None:
    """Remove all scan stitching (SI/SE connections and scan ports)."""
    for inst in netlist.scan_flip_flops():
        netlist.disconnect_pin(inst.name, "SI")
        netlist.disconnect_pin(inst.name, "SE")
    for port in list(netlist.ports.values()):
        if port.kind in (PortKind.SCAN_IN, PortKind.SCAN_OUT,
                         PortKind.SCAN_ENABLE):
            net_name = port.net
            if net_name is not None:
                net = netlist.net(net_name)
                pin = port.pin()
                if net.driver == pin:
                    net.driver = None
                net.sinks = [s for s in net.sinks if s != pin]
                if net.driver is None and not net.sinks:
                    del netlist.nets[net_name]
            del netlist.ports[port.name]
    netlist._topo_cache = None


def stitch_scan_chains(netlist: Netlist, chain_count: int = 1,
                       restitch: bool = False) -> List[ScanChain]:
    """Stitch all scan FFs into *chain_count* balanced chains.

    With ``restitch=True`` any existing stitching is removed first.
    """
    if restitch:
        unstitch_scan_chains(netlist)

    flip_flops = netlist.scan_flip_flops()
    for ff in flip_flops:
        if "SI" in ff.connections or "SE" in ff.connections:
            raise NetlistError(
                f"{netlist.name}: {ff.name} already stitched; "
                f"pass restitch=True"
            )
    if not flip_flops:
        return []

    chain_count = max(1, min(chain_count, len(flip_flops)))
    ordered = _serpentine_order(flip_flops)

    se_net = netlist.get_or_add_net("scan_enable")
    if "scan_enable__port" not in netlist.ports:
        netlist.add_port("scan_enable__port", PortKind.SCAN_ENABLE,
                         net=se_net.name)

    chains: List[ScanChain] = []
    per_chain = (len(ordered) + chain_count - 1) // chain_count
    for chain_index in range(chain_count):
        members = ordered[chain_index * per_chain:(chain_index + 1) * per_chain]
        if not members:
            continue
        si_port = f"scan_in{chain_index}__port"
        so_port = f"scan_out{chain_index}__port"
        si_net = netlist.get_or_add_net(f"scan_in{chain_index}")
        netlist.add_port(si_port, PortKind.SCAN_IN, net=si_net.name)

        previous_net = si_net.name
        for ff in members:
            netlist.connect(ff.name, "SI", previous_net)
            netlist.connect(ff.name, "SE", se_net.name)
            previous_net = ff.output_net()
            if previous_net is None:
                raise NetlistError(f"{netlist.name}: {ff.name} has no Q net")
        netlist.add_port(so_port, PortKind.SCAN_OUT)
        netlist.connect_port(so_port, previous_net)
        chains.append(ScanChain(
            index=chain_index,
            flip_flops=[ff.name for ff in members],
            scan_in_port=si_port,
            scan_out_port=so_port,
        ))
    return chains
