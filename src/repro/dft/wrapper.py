"""Wrapper plan model and physical wrapper insertion (paper Fig. 3).

A :class:`WrapperPlan` is the outcome of any WCM algorithm: a set of
:class:`WrapperGroup` cliques — TSVs that share one wrapper cell, which
is either a reused scan flip-flop or a newly inserted dedicated cell —
plus the TSVs excluded from sharing by Algorithm 1's node filter (each
gets its own dedicated cell).

``insert_wrappers`` materializes a plan on a cloned netlist:

* inbound TSV served by cell/FF ``w``: every sink of the TSV net is
  re-driven through a ``MUX2`` (A = TSV, B = w.Q, S = test_mode)
  placed at the TSV site — Fig. 3(a);
* outbound TSV observed by scan FF ``f``: an XOR folds the TSV value
  into ``f``'s D path behind a test-mode mux — Fig. 3(b); groups with
  several TSVs chain XORs (which is where observation aliasing, and
  hence the testability constraint, comes from);
* dedicated wrapper cells are scan FFs (plus the same mux/XOR gear)
  placed at the TSV site.

After insertion the scan chains must be restitched so new cells are
load/unload-able; the flow does this (see ``repro.core.flow``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.core import Instance, Netlist, Pin, PortKind
from repro.util.errors import NetlistError


@dataclass
class WrapperGroup:
    """One clique of the WCM solution."""

    kind: PortKind  # TSV_INBOUND or TSV_OUTBOUND
    tsvs: List[str]  # TSV port names sharing one wrapper cell
    reused_ff: Optional[str] = None  # scan FF instance name, or None

    def __post_init__(self) -> None:
        if self.kind not in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND):
            raise NetlistError(f"wrapper group kind must be a TSV kind, "
                               f"got {self.kind}")
        if not self.tsvs:
            raise NetlistError("wrapper group with no TSVs")

    @property
    def needs_additional_cell(self) -> bool:
        return self.reused_ff is None


@dataclass
class WrapperPlan:
    """A complete wrapper-cell assignment for one die."""

    die_name: str
    groups: List[WrapperGroup] = field(default_factory=list)
    #: TSVs excluded by the node filter (load/slack); dedicated cells.
    excluded_tsvs: List[str] = field(default_factory=list)

    # ---- the paper's reported quantities -----------------------------
    @property
    def reused_scan_ff_count(self) -> int:
        return sum(1 for g in self.groups if g.reused_ff is not None)

    @property
    def additional_wrapper_cells(self) -> int:
        return (sum(1 for g in self.groups if g.needs_additional_cell)
                + len(self.excluded_tsvs))

    @property
    def wrapped_tsv_count(self) -> int:
        return (sum(len(g.tsvs) for g in self.groups)
                + len(self.excluded_tsvs))

    def validate(self, netlist: Netlist) -> None:
        """Check the plan is a partition of the die's TSVs.

        A scan FF may be reused by several groups (see DESIGN.md §4)
        but can anchor at most ONE outbound group — only one XOR/mux
        chain fits in front of its D pin.
        """
        seen_tsvs: Dict[str, str] = {}
        outbound_ffs: Dict[str, int] = {}
        for index, group in enumerate(self.groups):
            for tsv in group.tsvs:
                port = netlist.port(tsv)
                if port.kind is not group.kind:
                    raise NetlistError(
                        f"plan {self.die_name}: TSV {tsv} is "
                        f"{port.kind.value} but group {index} is "
                        f"{group.kind.value}"
                    )
                if tsv in seen_tsvs:
                    raise NetlistError(
                        f"plan {self.die_name}: TSV {tsv} in two groups"
                    )
                seen_tsvs[tsv] = f"group{index}"
            if group.reused_ff is not None:
                inst = netlist.instance(group.reused_ff)
                if not inst.is_scan:
                    raise NetlistError(
                        f"plan {self.die_name}: {group.reused_ff} is not "
                        f"a scan flip-flop"
                    )
                if group.kind is PortKind.TSV_OUTBOUND:
                    if group.reused_ff in outbound_ffs:
                        raise NetlistError(
                            f"plan {self.die_name}: scan FF "
                            f"{group.reused_ff} anchors two outbound groups"
                        )
                    outbound_ffs[group.reused_ff] = index
        for tsv in self.excluded_tsvs:
            netlist.port(tsv)  # must exist
            if tsv in seen_tsvs:
                raise NetlistError(
                    f"plan {self.die_name}: excluded TSV {tsv} also in a group"
                )
            seen_tsvs[tsv] = "excluded"
        all_tsvs = {p.name for p in netlist.inbound_tsvs()}
        all_tsvs |= {p.name for p in netlist.outbound_tsvs()}
        missing = all_tsvs - set(seen_tsvs)
        if missing:
            raise NetlistError(
                f"plan {self.die_name}: {len(missing)} TSVs unwrapped, "
                f"e.g. {sorted(missing)[:3]}"
            )


def dedicated_plan(netlist: Netlist) -> WrapperPlan:
    """The pre-reuse baseline [1], [2], [13]: one dedicated wrapper cell
    at every TSV endpoint, no sharing, no reuse."""
    plan = WrapperPlan(die_name=netlist.name)
    for port in netlist.inbound_tsvs():
        plan.groups.append(WrapperGroup(PortKind.TSV_INBOUND, [port.name]))
    for port in netlist.outbound_tsvs():
        plan.groups.append(WrapperGroup(PortKind.TSV_OUTBOUND, [port.name]))
    return plan


@dataclass
class InsertionReport:
    """What insertion physically added."""

    reused_ffs: int = 0
    wrapper_cells: int = 0
    muxes: int = 0
    xors: int = 0
    #: wrapper cell / reused FF name per group index
    group_cells: List[str] = field(default_factory=list)
    #: inbound TSV port name -> its test mux's output net
    mux_out_nets: Dict[str, str] = field(default_factory=dict)
    #: inserted instance names per group (plan.groups order, then one
    #: entry per excluded TSV) — lets sign-off repair attribute a
    #: violating path to the group that created it
    group_instances: List[List[str]] = field(default_factory=list)
    #: inserted instance name -> name of the pre-existing object (TSV
    #: port or reused FF) whose site it was placed at; lets an ECO
    #: session mirror a position edit onto the wrapped netlist instead
    #: of re-running insertion
    placement_anchors: Dict[str, str] = field(default_factory=dict)


def insert_wrappers(netlist: Netlist, plan: WrapperPlan
                    ) -> Tuple[Netlist, InsertionReport]:
    """Materialize *plan* on a clone of *netlist*; returns the wrapped
    netlist and an :class:`InsertionReport`.

    New cells are placed at the TSV site (inbound muxes, dedicated
    cells) or at the reused FF site (outbound XOR/mux), so post-
    insertion STA sees the true FF<->TSV wire lengths.
    """
    plan.validate(netlist)
    work = netlist.clone(f"{netlist.name}_wrapped")
    report = InsertionReport()

    clock_nets = [p.net for p in work.ports.values()
                  if p.kind is PortKind.CLOCK and p.net]
    if not clock_nets:
        raise NetlistError(f"{work.name}: no clock port; cannot add "
                           f"wrapper cells")
    clock_net = clock_nets[0]

    if not any(p.kind is PortKind.TEST_MODE for p in work.ports.values()):
        tm_net = work.add_net("test_mode")
        work.add_port("test_mode__port", PortKind.TEST_MODE, net=tm_net.name)
    test_mode_net = next(p.net for p in work.ports.values()
                         if p.kind is PortKind.TEST_MODE)

    counters = {"mux": 0, "xor": 0, "cell": 0, "net": 0, "buf": 0}

    def new_net(prefix: str) -> str:
        counters["net"] += 1
        return work.add_net(f"wrap_{prefix}_{counters['net']}").name

    def new_mux(a: str, b: str, out: str, x: float, y: float,
                anchor: str) -> Instance:
        counters["mux"] += 1
        report.muxes += 1
        inst = work.add_instance(f"wrapmux_{counters['mux']}", "MUX2_X1")
        work.connect(inst.name, "A", a)
        work.connect(inst.name, "B", b)
        work.connect(inst.name, "S", test_mode_net)
        work.connect(inst.name, "Z", out)
        inst.x, inst.y = x, y
        report.placement_anchors[inst.name] = anchor
        return inst

    def new_xor(a: str, b: str, out: str, x: float, y: float,
                anchor: str) -> Instance:
        counters["xor"] += 1
        report.xors += 1
        inst = work.add_instance(f"wrapxor_{counters['xor']}", "XOR2_X1")
        work.connect(inst.name, "A", a)
        work.connect(inst.name, "B", b)
        work.connect(inst.name, "Z", out)
        inst.x, inst.y = x, y
        report.placement_anchors[inst.name] = anchor
        return inst

    def new_buffer(source_net: str, x: float, y: float,
                   anchor: str) -> str:
        """Per-group X2 driver buffer; returns its output net."""
        counters["buf"] += 1
        inst = work.add_instance(f"wrapbuf_{counters['buf']}", "BUF_X2")
        work.connect(inst.name, "A", source_net)
        out = new_net("bufz")
        work.connect(inst.name, "Z", out)
        inst.x, inst.y = x, y
        report.placement_anchors[inst.name] = anchor
        return out

    def new_wrapper_cell(d_net: str, x: float, y: float,
                         anchor: str) -> Instance:
        counters["cell"] += 1
        report.wrapper_cells += 1
        inst = work.add_instance(f"wrapcell_{counters['cell']}", "SDFF_X1")
        work.connect(inst.name, "D", d_net)
        work.connect(inst.name, "CK", clock_net)
        work.connect(inst.name, "Q", new_net("q"))
        inst.x, inst.y = x, y
        report.placement_anchors[inst.name] = anchor
        return inst

    _prefixes = {"mux": "wrapmux", "xor": "wrapxor", "cell": "wrapcell",
                 "buf": "wrapbuf"}

    def insert_group(group: WrapperGroup) -> None:
        before = {key: counters[key] for key in _prefixes}
        _do_insert_group(group)
        inserted = [
            f"{prefix}_{i}"
            for key, prefix in _prefixes.items()
            for i in range(before[key] + 1, counters[key] + 1)
        ]
        report.group_instances.append(inserted)

    def _do_insert_group(group: WrapperGroup) -> None:
        first_port = work.port(group.tsvs[0])
        if group.kind is PortKind.TSV_INBOUND:
            # Driving value: reused FF's Q, or a new dedicated cell's Q,
            # fanned out to the member muxes through one X2 buffer.
            if group.reused_ff is not None:
                report.reused_ffs += 1
                ff = work.instance(group.reused_ff)
                source_net = ff.output_net()
                source_pos = (ff.x, ff.y)
                cell_name = group.reused_ff
                source_anchor = group.reused_ff
                if source_net is None:
                    raise NetlistError(f"{group.reused_ff} has no Q net")
            else:
                cell = new_wrapper_cell(first_port.net, first_port.x,
                                        first_port.y, group.tsvs[0])
                source_net = cell.output_net()
                source_pos = (first_port.x, first_port.y)
                cell_name = cell.name
                source_anchor = group.tsvs[0]
            report.group_cells.append(cell_name)
            drive_net = new_buffer(source_net, *source_pos, source_anchor)
            for tsv in group.tsvs:
                port = work.port(tsv)
                tsv_net = work.net(port.net)
                sinks = [s for s in tsv_net.sinks
                         if not (s.is_port and s.owner_name == port.name)]
                mux_out = new_net("in")
                new_mux(tsv_net.name, drive_net, mux_out, port.x, port.y,
                        tsv)
                report.mux_out_nets[tsv] = mux_out
                for sink in sinks:
                    work.retarget_sink(sink, mux_out)
        else:
            if group.reused_ff is not None:
                report.reused_ffs += 1
                ff = work.instance(group.reused_ff)
                report.group_cells.append(ff.name)
                d_net = ff.connections.get("D")
                if d_net is None:
                    raise NetlistError(f"{ff.name} has no D net")
                work.disconnect_pin(ff.name, "D")
                chain = d_net
                for tsv in group.tsvs:
                    port = work.port(tsv)
                    out = new_net("ob")
                    new_xor(chain, port.net, out, ff.x, ff.y, ff.name)
                    chain = out
                mux_out = new_net("obm")
                new_mux(d_net, chain, mux_out, ff.x, ff.y, ff.name)
                work.connect(ff.name, "D", mux_out)
            else:
                # Dedicated capture cell: XOR-merge the group, then latch.
                chain = work.port(group.tsvs[0]).net
                for tsv in group.tsvs[1:]:
                    port = work.port(tsv)
                    out = new_net("ob")
                    new_xor(chain, port.net, out, first_port.x, first_port.y,
                            group.tsvs[0])
                    chain = out
                cell = new_wrapper_cell(chain, first_port.x, first_port.y,
                                        group.tsvs[0])
                report.group_cells.append(cell.name)

    for group in plan.groups:
        insert_group(group)
    for tsv in plan.excluded_tsvs:
        kind = netlist.port(tsv).kind
        insert_group(WrapperGroup(kind, [tsv]))

    return work, report
