"""Post-bond test views for assembled stacks.

Pre-bond testing (the paper's subject) qualifies each die alone;
post-bond testing re-runs test on the assembled stack, where bonded
TSVs are real wires between dies. The reuse-based wrapper hardware
serves double duty there ([4] optimizes both): the same muxes/XOR taps
give per-die isolation, and the TSV wires themselves become testable.

This module builds the post-bond view of a bonded stack: the dies'
netlists are joined, with every bonded crossing *registered* at the
receiving die (the synchronous-stack style — which also keeps the
merged netlist combinationally acyclic). Bonded inbound TSVs stop
being X-sources and the TSV wires become testable through the bond
registers' scan access; unbonded (external) endpoints remain dark.

The view namespaces each die's nets as ``die{k}/net`` in one merged
netlist, so the standard ATPG machinery runs unchanged on the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dft.testview import TestView, build_prebond_test_view
from repro.netlist.core import Netlist, PortKind
from repro.threed.model import Stack3D
from repro.util.errors import PartitionError


def merge_stack_netlist(stack: Stack3D,
                        wrapped_dies: Optional[List[Netlist]] = None
                        ) -> Netlist:
    """Join the (optionally wrapped) dies into one flat netlist.

    Instance/net/port names are prefixed ``die{k}/``. For every bonded
    link the inbound port disappears and its net is driven by the
    source die's outbound net; the outbound port disappears too (it is
    now an internal wire). External endpoints keep their TSV ports.
    """
    dies = wrapped_dies or stack.dies
    if len(dies) != stack.die_count:
        raise PartitionError(
            f"{stack.name}: {len(dies)} netlists for {stack.die_count} dies"
        )
    merged = Netlist(f"{stack.name}_stack", dies[0].library)

    bonded_inbound: Dict[Tuple[int, str], Tuple[int, str]] = {}
    bonded_outbound = set()
    for link in stack.links:
        if link.is_external:
            continue
        bonded_inbound[(link.target_die, link.target_port)] = \
            (link.source_die, link.source_port)
        bonded_outbound.add((link.source_die, link.source_port))

    def net_name(die_index: int, net: str) -> str:
        return f"die{die_index}/{net}"

    # All nets and instances first.
    for index, die in enumerate(dies):
        for net in die.nets.values():
            merged.add_net(net_name(index, net.name))
        for inst in die.instances.values():
            copy = merged.add_instance(f"die{index}/{inst.name}",
                                       inst.cell.name)
            copy.x, copy.y = inst.x, inst.y
            for pin, net in inst.connections.items():
                merged.connect(copy.name, pin, net_name(index, net))

    # Ports: bonded TSVs become registered internal crossings.
    for index, die in enumerate(dies):
        # A die may be a wrapped clone whose link ports kept their
        # original names, so look links up against this die's ports.
        for port in die.ports.values():
            if port.net is None:
                continue
            local = net_name(index, port.net)
            key = (index, port.name)
            if port.kind is PortKind.TSV_INBOUND and key in bonded_inbound:
                source_die, source_port_name = bonded_inbound[key]
                source_port = dies[source_die].port(source_port_name)
                source_net = net_name(source_die, source_port.net)
                # Registered crossing: synchronous 3D stacks register
                # inter-die signals at the receiving die, which keeps
                # the merged stack combinationally acyclic and makes
                # every bond point scan-controllable/observable.
                bond = merged.add_instance(
                    f"bond/{index}/{port.name}", "SDFF_X1")
                merged.connect(bond.name, "D", source_net)
                clock_ports = [p for p in dies[index].ports.values()
                               if p.kind is PortKind.CLOCK and p.net]
                if not clock_ports:
                    raise PartitionError(
                        f"die {index} has no clock for bond registers")
                merged.connect(bond.name, "CK",
                               net_name(index, clock_ports[0].net))
                merged.connect(bond.name, "Q", local)
                continue
            if port.kind is PortKind.TSV_OUTBOUND and key in bonded_outbound:
                continue  # consumed by the inbound side's bond register
            merged.add_port(f"die{index}/{port.name}", port.kind,
                            net=local)
    return merged


def build_postbond_test_view(stack: Stack3D,
                             wrapped_dies: Optional[List[Netlist]] = None
                             ) -> TestView:
    """Post-bond view: scan access everywhere, bonded TSVs functional.

    Test mode stays 0: post-bond interconnect test exercises the real
    TSV wires through the functional paths (the wrapper muxes must NOT
    isolate the dies), while all FFs remain scan-controllable.
    """
    merged = merge_stack_netlist(stack, wrapped_dies)
    view = build_prebond_test_view(merged)
    # Post-bond: test_mode = 0 (functional paths through bonded TSVs).
    for net in list(view.constant_nets):
        port_kinds = {p.kind for p in merged.ports.values()
                      if p.net == net}
        if PortKind.TEST_MODE in port_kinds:
            view.constant_nets[net] = 0
    # Bonded inbound ports were replaced by bond buffers during the
    # merge, so view.x_nets already holds only the still-external
    # endpoints — the KGD coverage gap that remains after bonding.
    return view
