"""Design-for-testability transformations.

* :mod:`repro.dft.scan` — scan-chain stitching (placement-aware order).
* :mod:`repro.dft.cones` — fan-in/fan-out cone queries for scan FFs and
  TSVs, with caching (Algorithm 1's overlap tests).
* :mod:`repro.dft.wrapper` — the wrapper plan model (which TSVs share
  which wrapper cell / reused scan FF) and its physical insertion:
  muxes for inbound reuse, XOR+mux for outbound reuse (paper Fig. 3),
  dedicated wrapper cells for unshared/excluded TSVs.
* :mod:`repro.dft.testview` — the pre-bond test view of a wrapped die:
  which nets are controllable, constant, X-source, or observed. This is
  what the ATPG engine measures coverage against.
"""

from repro.dft.scan import ScanChain, stitch_scan_chains, unstitch_scan_chains
from repro.dft.cones import ConeAnalysis
from repro.dft.wrapper import (
    WrapperGroup,
    WrapperPlan,
    dedicated_plan,
    insert_wrappers,
)
from repro.dft.testview import TestView, build_prebond_test_view
from repro.dft.area import AreaReport, area_of_insertion, compare_plans, plan_area_estimate
from repro.dft.postbond import build_postbond_test_view, merge_stack_netlist

__all__ = [
    "ScanChain",
    "stitch_scan_chains",
    "unstitch_scan_chains",
    "ConeAnalysis",
    "WrapperGroup",
    "WrapperPlan",
    "dedicated_plan",
    "insert_wrappers",
    "TestView",
    "build_prebond_test_view",
    "AreaReport",
    "area_of_insertion",
    "compare_plans",
    "plan_area_estimate",
    "build_postbond_test_view",
    "merge_stack_netlist",
]
