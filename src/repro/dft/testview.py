"""Pre-bond test view of a (wrapped) die.

The test view abstracts one scan load/capture/unload cycle into a
combinational problem, which is what ATPG operates on:

* **controllable** nets: primary-input port nets and every flip-flop Q
  net (scan chains make all FFs — including wrapper cells — load-able);
* **constant** nets: ``test_mode`` = 1 (wrapper muxes select the test
  path), ``scan_enable`` = 0 (capture mode);
* **X-source** nets: inbound TSV port nets — pre-bond, the TSV floats.
  Faults sited on these nets are *pre-bond untestable* and excluded
  from the fault universe (the test-coverage convention commercial
  ATPG reports);
* **observed** nets: primary-output port nets and every flip-flop D
  net (captured and unloaded through the scan chain). Outbound TSV
  ports are NOT observed pre-bond — that is exactly why they need
  wrapper observation, which insertion realizes as XOR taps folded
  into FF D nets.

Because shared wrappers are materialized as real muxes/XORs in the
netlist, the coverage effects of sharing (correlated drive values,
XOR observation aliasing) emerge in simulation rather than being
modelled by formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.netlist.core import Netlist, PortKind


@dataclass
class TestView:
    """Combinational abstraction of one scan test cycle."""

    netlist: Netlist
    control_nets: List[str] = field(default_factory=list)
    constant_nets: Dict[str, int] = field(default_factory=dict)
    x_nets: List[str] = field(default_factory=list)
    #: (observer label, net name)
    observe_nets: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def input_count(self) -> int:
        return len(self.control_nets)

    @property
    def output_count(self) -> int:
        return len(self.observe_nets)


def build_prebond_test_view(netlist: Netlist) -> TestView:
    """Build the pre-bond test view of *netlist* (wrapped or bare)."""
    view = TestView(netlist=netlist)

    for port in netlist.ports.values():
        if port.net is None:
            continue
        if port.kind is PortKind.PRIMARY_INPUT:
            view.control_nets.append(port.net)
        elif port.kind is PortKind.TEST_MODE:
            view.constant_nets[port.net] = 1
        elif port.kind is PortKind.SCAN_ENABLE:
            view.constant_nets[port.net] = 0
        elif port.kind is PortKind.TSV_INBOUND:
            view.x_nets.append(port.net)
        elif port.kind is PortKind.PRIMARY_OUTPUT:
            view.observe_nets.append((port.name, port.net))
        elif port.kind is PortKind.PSEUDO_INPUT:
            view.control_nets.append(port.net)
        elif port.kind is PortKind.PSEUDO_OUTPUT:
            view.observe_nets.append((port.name, port.net))

    for ff in netlist.flip_flops():
        q_net = ff.output_net()
        if q_net is not None:
            view.control_nets.append(q_net)
        d_net = ff.connections.get("D")
        if d_net is not None:
            view.observe_nets.append((ff.name, d_net))

    return view
