"""Client library for the WCM job server (``repro submit`` et al.).

One :class:`ServeClient` per daemon socket. Requests are synchronous
JSON-line exchanges; each request opens a fresh connection by default
(Unix-socket connects are ~microseconds and a per-request connection
means a half-dead daemon can never wedge a pooled one).

:meth:`ServeClient.submit_with_backoff` is the polite client loop the
admission controller is designed for: on a ``shed`` response it sleeps
the server's ``retry_after_s`` hint scaled by deterministic capped
exponential backoff (:func:`repro.serve.queue.backoff_s` — no jitter,
so chaos scenarios replay identically) and resubmits, up to
``max_attempts``. ``quarantined`` responses are surfaced immediately:
the breaker is telling the client its die is broken, and hammering it
would only delay the half-open probe.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    LineChannel,
    QUARANTINED,
    SHED,
    validate_priority,
)
from repro.serve.queue import backoff_s
from repro.serve.server import SOCKET_NAME
from repro.util.errors import ReproError


class ServeError(ReproError):
    """Protocol-level failure talking to the daemon."""


class ServeUnavailable(ServeError):
    """No daemon behind the socket (not running, or not yet bound)."""


def socket_path_for(state_dir: os.PathLike) -> Path:
    return Path(state_dir) / SOCKET_NAME


class ServeClient:
    """Synchronous client for one daemon socket."""

    def __init__(self, socket_path: os.PathLike,
                 timeout_s: float = 60.0) -> None:
        self.socket_path = Path(socket_path)
        self.timeout_s = timeout_s

    # -- transport -------------------------------------------------------
    def request(self, message: Dict[str, Any],
                timeout_s: Optional[float] = None) -> Dict[str, Any]:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout_s if timeout_s is not None
                        else self.timeout_s)
        try:
            sock.connect(str(self.socket_path))
        except (FileNotFoundError, ConnectionRefusedError, OSError) as exc:
            sock.close()
            raise ServeUnavailable(
                f"no server at {self.socket_path}: {exc}") from None
        channel = LineChannel(sock)
        try:
            channel.send(message)
            response = channel.recv()
        except socket.timeout:
            raise ServeError(
                f"server did not answer within "
                f"{timeout_s or self.timeout_s:g}s") from None
        except OSError as exc:
            raise ServeUnavailable(
                f"connection to {self.socket_path} lost: {exc}"
            ) from None
        finally:
            channel.close()
        if response is None:
            raise ServeUnavailable(
                f"server at {self.socket_path} closed the connection")
        return response

    # -- ops -------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"}, timeout_s=5.0)

    def wait_until_up(self, timeout_s: float = 10.0,
                      interval_s: float = 0.05) -> bool:
        """Poll until the daemon answers a ping (daemon startup)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except ServeError:
                time.sleep(interval_s)
        return False

    def submit(self, kind: str, params: Dict[str, Any], *,
               priority: str = "normal",
               deadline_s: Optional[float] = None,
               wait: bool = True,
               timeout_s: Optional[float] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "submit", "kind": kind, "params": params,
            "priority": validate_priority(priority), "wait": wait,
        }
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        return self.request(message,
                            timeout_s=(timeout_s + 10.0)
                            if wait and timeout_s is not None else None)

    def submit_with_backoff(self, kind: str, params: Dict[str, Any], *,
                            priority: str = "normal",
                            deadline_s: Optional[float] = None,
                            wait: bool = True,
                            timeout_s: Optional[float] = None,
                            max_attempts: int = 6,
                            backoff_base_s: float = 0.05,
                            backoff_cap_s: float = 2.0,
                            sleep=time.sleep) -> Dict[str, Any]:
        """Submit, honoring shed/retry-after with capped backoff.

        Returns the first non-shed response (done, failed, quarantined
        or a timed-out wait). The final shed response is returned
        as-is once *max_attempts* submissions were refused — callers
        can distinguish it by ``state == "shed"``."""
        response: Dict[str, Any] = {}
        for attempt in range(1, max_attempts + 1):
            response = self.submit(kind, params, priority=priority,
                                   deadline_s=deadline_s, wait=wait,
                                   timeout_s=timeout_s)
            state = response.get("state")
            if state != SHED:
                return response
            if attempt == max_attempts:
                break
            hinted = float(response.get("retry_after_s", 0.0) or 0.0)
            sleep(hinted + backoff_s(attempt + 1, backoff_base_s,
                                     backoff_cap_s))
        return response

    def wait_for(self, job_id: str,
                 timeout_s: Optional[float] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "wait", "job_id": job_id}
        if timeout_s is not None:
            message["timeout_s"] = timeout_s
        return self.request(message,
                            timeout_s=(timeout_s + 10.0)
                            if timeout_s is not None else None)

    def jobs(self) -> Dict[str, Any]:
        return self.request({"op": "jobs"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def drain(self) -> Dict[str, Any]:
        return self.request({"op": "drain"}, timeout_s=10.0)


__all__ = ["ServeClient", "ServeError", "ServeUnavailable",
           "socket_path_for", "QUARANTINED"]
