"""The WCM job daemon: warm workers, resident sessions, graceful drain.

One :class:`WcmServer` owns:

* a **Unix domain socket** (``<state_dir>/serve.sock``) speaking the
  JSON-line protocol, one handler thread per connection, bounded
  per-connection socket timeouts so a slow or vanished client costs
  only its own thread,
* a **warm worker pool** — the supervisor's process workers
  (:class:`repro.runtime.supervisor._Worker`) kept alive across jobs,
  so every request after the first skips interpreter and import
  cold-start; a worker that crashes or hangs is killed and respawned
  without losing the job (it re-queues with backoff),
* **resident ECO sessions** — warm
  :class:`~repro.core.session.WcmSession` instances keyed by die, so
  an eco job whose edit stream extends the resident prefix re-solves
  incrementally in milliseconds,
* the **shared result cache** — terminal results of cacheable kinds
  are stored under the job's content fingerprint, so identical
  requests are served without computing (across restarts too), and a
  torn/corrupt entry quarantines and recomputes like any other cache
  defect,
* the **scheduler loop** — one thread multiplexing worker pipes, job
  deadlines and retry backoffs with ``multiprocessing.connection.wait``
  plus a self-pipe for wakeups; it never blocks on client sockets.

Failure matrix (chaos-asserted; see DESIGN.md §13): worker crash/hang
=> retry with deterministic capped backoff, then terminal ``failed``
and a breaker strike; deterministic exception => terminal ``failed``
immediately; queue overflow / drain / queued-deadline-expiry =>
terminal ``shed`` with retry-after; breaker open => terminal
``quarantined`` (half-open probes admit every Nth); daemon SIGTERM =>
finish running jobs, journal the rest, flush traces, exit 0; daemon
crash => journal replay re-admits unfinished jobs on restart.
"""

from __future__ import annotations

import multiprocessing.connection as mp_connection
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runtime import trace
from repro.runtime.cache import ResultCache
from repro.runtime.config import current_config
from repro.runtime.supervisor import _Worker
from repro.serve import jobs as jobs_mod
from repro.serve.protocol import (
    DONE,
    PROTOCOL_VERSION,
    LineChannel,
    ProtocolError,
    QUEUED,
    RUNNING,
    validate_priority,
)
from repro.serve.queue import AdmissionPolicy, JobJournal, JobQueue, JobRecord

SOCKET_NAME = "serve.sock"
JOURNAL_NAME = "queue.journal"

#: scheduler tick ceiling — also the cadence of deadline enforcement
_TICK_S = 0.25


class _PoolWorker:
    """One warm worker process and the job currently on it."""

    __slots__ = ("worker", "job", "deadline", "deadline_kind")

    def __init__(self, worker: _Worker) -> None:
        self.worker = worker
        self.job: Optional[JobRecord] = None
        self.deadline: Optional[float] = None
        #: "deadline" (job deadline -> shed) or "timeout" (-> retry)
        self.deadline_kind: Optional[str] = None


class WcmServer:
    """Long-running job server over one state directory.

    ``start()`` recovers the journal, binds the socket and spawns the
    accept + scheduler threads; ``serve_forever()`` blocks the calling
    thread until drain completes. Tests run ``start()`` +
    ``stop(drain=True)`` with the scheduler on its background thread.
    """

    def __init__(self, state_dir: os.PathLike, *, workers: int = 2,
                 policy: Optional[AdmissionPolicy] = None,
                 job_timeout_s: Optional[float] = None,
                 socket_timeout_s: float = 30.0,
                 seed: int = 0) -> None:
        self.state_dir = Path(state_dir)
        self.workers_wanted = max(1, int(workers))
        self.policy = policy or AdmissionPolicy()
        self.job_timeout_s = job_timeout_s
        self.socket_timeout_s = socket_timeout_s
        self.seed = seed

        self.socket_path = self.state_dir / SOCKET_NAME
        self.journal_path = self.state_dir / JOURNAL_NAME
        self.queue: Optional[JobQueue] = None
        self.cache: Optional[ResultCache] = None
        self.recovered_jobs = 0

        self._pool: List[_PoolWorker] = []
        self._sessions: Dict[str, jobs_mod.EcoHost] = {}
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conn_threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._started = time.monotonic()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "WcmServer":
        self.state_dir.mkdir(parents=True, exist_ok=True)
        config = current_config()
        if not config.no_cache:
            # the service always runs cached: a daemon without its
            # cache would recompute every warm request
            cache_dir = config.cache_dir or str(self.state_dir / "cache")
            from repro.runtime import configure
            configure(cache_dir=cache_dir)
            self.cache = ResultCache(cache_dir)

        # replay BEFORE truncating: pending work survives a crash,
        # and the rewritten journal stays bounded across restarts
        pending = JobJournal.replay(self.journal_path)
        try:
            self.journal_path.unlink()
        except OSError:
            pass
        self.queue = JobQueue(self.policy,
                              journal=JobJournal(self.journal_path))
        self.recovered_jobs = self.queue.recover_records(
            pending, now=time.monotonic())

        for _ in range(self.workers_wanted):
            self._pool.append(self._spawn_worker())

        try:
            self.socket_path.unlink()
        except OSError:
            pass
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(str(self.socket_path))
        self._listener.listen(64)
        self._listener.settimeout(0.5)

        for name, target in (("serve-accept", self._accept_loop),
                             ("serve-scheduler", self._scheduler_loop)):
            thread = threading.Thread(target=target, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        trace.event("serve.started", workers=self.workers_wanted,
                    recovered=self.recovered_jobs,
                    socket=str(self.socket_path))
        return self

    def _spawn_worker(self) -> _PoolWorker:
        import multiprocessing as mp

        config = current_config()
        worker = _Worker(mp.get_context(), config, jobs_mod.execute_job,
                         self.seed, config.chaos)
        return _PoolWorker(worker)

    def serve_forever(self) -> None:
        """Block until drain completes (signal handlers end this)."""
        self._drained.wait()

    def request_drain(self) -> None:
        """Graceful drain: refuse new work, finish running jobs,
        leave queued jobs journaled for the next start."""
        if self.queue is not None:
            self.queue.start_drain()
        self._stopping.set()
        self._wake()
        trace.event("serve.drain_requested")

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        self.request_drain()
        self._drained.wait(timeout_s)
        if not drain:
            for pooled in self._pool:
                if pooled.job is not None:
                    pooled.worker.kill()

    def install_signal_handlers(self) -> None:
        import signal

        def _handler(signum, frame):
            self.request_drain()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except OSError:
            pass

    # -- scheduler -------------------------------------------------------
    def _scheduler_loop(self) -> None:
        try:
            while True:
                now = time.monotonic()
                if not self._stopping.is_set():
                    self._assign(now)
                busy = [p for p in self._pool if p.job is not None]
                if self._stopping.is_set() and not busy:
                    break
                self._wait_and_collect(busy)
        finally:
            self._finalize()

    def _assign(self, now: float) -> None:
        assert self.queue is not None
        while True:
            idle = [p for p in self._pool if p.job is None]
            job, _ = self.queue.next_ready(now)
            if job is None:
                return
            if self._serve_cached(job):
                continue
            if not jobs_mod.runs_on_worker(job.kind):
                self._run_inline(job)
                continue
            if not idle:
                # no worker free: hand the slot back uncharged
                self.queue.requeue(job)
                return
            pooled = idle[0]
            cell = {"kind": job.kind, "params": job.params}
            try:
                pooled.worker.conn.send((job.seq, job.attempts, cell))
            except (OSError, ValueError) as exc:
                self._replace_worker(pooled, kill=True)
                self.queue.fail(job, f"worker hand-off failed: {exc}",
                                retryable=True, crash=True,
                                now=time.monotonic())
                continue
            pooled.job = job
            budget = self.job_timeout_s
            pooled.deadline_kind = "timeout" if budget is not None else None
            remaining = job.remaining_s(now)
            if remaining is not None and (budget is None
                                          or remaining < budget):
                budget = max(0.0, remaining)
                pooled.deadline_kind = "deadline"
            pooled.deadline = (now + budget) if budget is not None else None
            trace.event("serve.dispatch", job_id=job.job_id,
                        kind=job.kind, attempt=job.attempts)

    def _serve_cached(self, job: JobRecord) -> bool:
        """Terminal-complete a job straight from the result cache."""
        if self.cache is None or not jobs_mod.is_cacheable(job.kind):
            return False
        payload = self.cache.get(job.fingerprint)
        if payload is None:
            return False
        if (payload.get("schema") != PROTOCOL_VERSION
                or payload.get("kind") != job.kind
                or not isinstance(payload.get("result"), dict)):
            # entry exists but is not a served-job payload: torn or
            # stale beyond recognition
            self.cache.quarantine(job.fingerprint)
            return False
        self.queue.complete(job, payload["result"], cached=True)
        return True

    def _store_result(self, job: JobRecord,
                      result: Dict[str, Any]) -> None:
        if self.cache is None or not jobs_mod.is_cacheable(job.kind):
            return
        try:
            self.cache.put(job.fingerprint,
                           {"schema": PROTOCOL_VERSION, "kind": job.kind,
                            "result": result})
        except (OSError, TypeError, ValueError):
            trace.inc("serve.cache_store_failures")

    def _run_inline(self, job: JobRecord) -> None:
        """Eco jobs run in the daemon on the resident warm session."""
        try:
            if job.kind == "eco":
                key = jobs_mod.eco_die_key(job.params)
                host = self._sessions.get(key)
                if host is None:
                    host = self._sessions[key] = jobs_mod.EcoHost(
                        job.params)
                result = jobs_mod.run_eco(job.params, host=host)
            else:
                result = jobs_mod.execute_job(
                    {"kind": job.kind, "params": job.params})
        except Exception as exc:
            if job.kind == "eco":
                # a poisoned resident session must not serve the next job
                try:
                    self._sessions.pop(jobs_mod.eco_die_key(job.params),
                                       None)
                except Exception:
                    pass
            self.queue.fail(job, f"{type(exc).__name__}: {exc}",
                            retryable=False)
            return
        self._store_result(job, result)
        self.queue.complete(job, result)

    def _wait_and_collect(self, busy: List[_PoolWorker]) -> None:
        now = time.monotonic()
        timeout = _TICK_S
        for pooled in busy:
            if pooled.deadline is not None:
                timeout = min(timeout, max(0.0, pooled.deadline - now))
        ready = mp_connection.wait(
            [p.worker.conn for p in busy] + [self._wake_recv],
            timeout=timeout)
        if self._wake_recv in ready:
            try:
                while self._wake_recv.recv(4096):
                    pass
            except (BlockingIOError, OSError):
                pass
        now = time.monotonic()
        for pooled in busy:
            if pooled.worker.conn in ready:
                self._collect(pooled)
            elif (pooled.deadline is not None and now >= pooled.deadline):
                self._on_worker_timeout(pooled)

    def _collect(self, pooled: _PoolWorker) -> None:
        job = pooled.job
        try:
            message = pooled.worker.conn.recv()
        except (EOFError, OSError):
            exitcode = pooled.worker.process.exitcode
            trace.inc("serve.worker_crashes")
            trace.event("serve.worker_crash", job_id=job.job_id,
                        exit_code=exitcode)
            self._replace_worker(pooled, kill=True)
            self.queue.fail(job, f"worker crashed (exit {exitcode})",
                            retryable=True, crash=True,
                            now=time.monotonic())
            return
        pooled.job = None
        pooled.deadline = None
        kind, _idx, _att, error, payload, metrics = message
        tracer = trace.active()
        if metrics is not None and tracer is not None:
            tracer.metrics.merge_payload(metrics)
        if kind == "ok":
            self._store_result(job, payload)
            self.queue.complete(job, payload)
        else:
            # a raised exception is deterministic: same params would
            # fail the same way on any worker — terminal, no retry
            self.queue.fail(job, error, retryable=False)

    def _on_worker_timeout(self, pooled: _PoolWorker) -> None:
        job = pooled.job
        kind = pooled.deadline_kind or "timeout"
        trace.inc("serve.worker_timeouts")
        trace.event("serve.worker_timeout", job_id=job.job_id, kind=kind)
        self._replace_worker(pooled, kill=True)
        if kind == "deadline":
            self.queue.shed_running(job, "deadline exceeded while running")
        else:
            self.queue.fail(
                job, f"exceeded {self.job_timeout_s:g}s budget",
                retryable=True, crash=True, now=time.monotonic())

    def _replace_worker(self, pooled: _PoolWorker, kill: bool) -> None:
        if kill:
            pooled.worker.kill()
        else:
            pooled.worker.shutdown()
        try:
            index = self._pool.index(pooled)
        except ValueError:
            return
        if self._stopping.is_set():
            self._pool.pop(index)
        else:
            self._pool[index] = self._spawn_worker()

    def _finalize(self) -> None:
        for pooled in self._pool:
            if pooled.job is not None:
                pooled.worker.kill()
            else:
                pooled.worker.shutdown()
        self._pool.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        try:
            self.socket_path.unlink()
        except OSError:
            pass
        if self.queue is not None and self.queue.journal is not None:
            self.queue.journal.close()
        trace.event("serve.stopped",
                    pending=len(self.queue.pending())
                    if self.queue else 0)
        self._drained.set()

    # -- connections -----------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._drained.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                if self._stopping.is_set() and self._drained.is_set():
                    return
                continue
            except OSError:
                return
            conn.settimeout(self.socket_timeout_s)
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="serve-conn", daemon=True)
            thread.start()
            self._conn_threads.append(thread)
            self._conn_threads = [t for t in self._conn_threads
                                  if t.is_alive()]

    def _handle_connection(self, conn: socket.socket) -> None:
        channel = LineChannel(conn)
        try:
            while True:
                try:
                    message = channel.recv()
                except ProtocolError as exc:
                    # unsynchronizable stream: answer once and drop
                    try:
                        channel.send({"ok": False, "error": str(exc)})
                    except OSError:
                        pass
                    return
                if message is None:
                    return
                try:
                    response = self._dispatch(message)
                except ProtocolError as exc:
                    response = {"ok": False, "error": str(exc)}
                except Exception as exc:  # never kill the handler loop
                    trace.inc("serve.handler_errors")
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                channel.send(response)
        except (socket.timeout, OSError, ProtocolError):
            # slow, stalled or vanished client: drop the connection;
            # its jobs keep running and stay addressable by job id
            trace.inc("serve.client_disconnects")
        finally:
            channel.close()

    # -- ops -------------------------------------------------------------
    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "ping":
            return {"ok": True, "pong": True,
                    "draining": self._stopping.is_set(),
                    "uptime_s": round(time.monotonic() - self._started,
                                      3)}
        if op == "submit":
            return self._op_submit(message)
        if op == "wait":
            return self._op_wait(message)
        if op == "jobs":
            return {"ok": True,
                    "jobs": self.queue.snapshot(time.monotonic())}
        if op == "stats":
            stats = self.queue.stats()
            stats.update({
                "ok": True,
                "workers": len(self._pool),
                "workers_busy": sum(1 for p in self._pool
                                    if p.job is not None),
                "resident_sessions": sorted(self._sessions),
                "recovered_jobs": self.recovered_jobs,
                "cache_entries": len(self.cache)
                if self.cache is not None else 0,
            })
            return stats
        if op == "drain":
            self.request_drain()
            return {"ok": True, "draining": True}
        raise ProtocolError(f"unknown op {message.get('op')!r}")

    def _op_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        kind = message.get("kind")
        params = message.get("params", {})
        priority = validate_priority(message.get("priority", "normal"))
        deadline_s = message.get("deadline_s")
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ProtocolError("deadline_s must be > 0")
        try:
            job, verdict = self.queue.submit(
                kind, params, priority=priority, deadline_s=deadline_s,
                now=time.monotonic())
        except jobs_mod.JobError as exc:
            return {"ok": False, "error": str(exc)}
        self._wake()
        if verdict == "queued" and self._serve_cached_submit(job):
            verdict = "cached"
        if message.get("wait") and not job.terminal:
            timeout_s = message.get("timeout_s")
            job.terminal_event.wait(
                float(timeout_s) if timeout_s is not None else None)
        return self._job_response(job, verdict)

    def _serve_cached_submit(self, job: JobRecord) -> bool:
        """Cache check at admission (the scheduler re-checks at
        dispatch; doing it here answers warm submits without a
        scheduler round-trip)."""
        with self.queue.lock:
            if job.state != QUEUED:
                return False
        return self._serve_cached(job)

    def _op_wait(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job_id")
        job = self.queue.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise ProtocolError(f"unknown job id {job_id!r}")
        timeout_s = message.get("timeout_s")
        job.terminal_event.wait(
            float(timeout_s) if timeout_s is not None else None)
        return self._job_response(job, job.state)

    def _job_response(self, job: JobRecord,
                      verdict: str) -> Dict[str, Any]:
        response = {
            "ok": True,
            "job_id": job.job_id,
            "verdict": verdict,
            "state": job.state,
            "attempts": job.attempts,
            "cached": job.cached,
        }
        if job.state == DONE:
            response["result"] = job.result
        elif job.terminal:
            response["error"] = job.error
            if isinstance(job.result, dict) \
                    and "retry_after_s" in job.result:
                response["retry_after_s"] = job.result["retry_after_s"]
        elif job.state in (QUEUED, RUNNING):
            response["timed_out"] = True
        return response
