"""JSON-line wire protocol for the WCM job server.

Every message — request or response — is one JSON object on one
``\\n``-terminated line over a Unix domain socket. One connection may
carry any number of requests; the server answers each in order on the
same connection. The framing is deliberately dumb: any language (or
``nc -U``) can speak it, a torn line is detected by the missing
newline, and a hostile or confused client can at worst cost the
server one bounded read buffer.

Requests carry an ``op``:

``ping``
    liveness + drain status.
``submit``
    ``{"op": "submit", "kind": K, "params": {...},
    "priority": "interactive"|"normal"|"batch",
    "deadline_s": S, "wait": bool, "timeout_s": T}``.
    The response reports the admission verdict: ``queued`` /
    ``coalesced`` (single-flight attach to an identical in-flight
    job) / ``cached`` (served from the result cache without running
    anything) / ``shed`` (queue full or draining; carries
    ``retry_after_s``) / ``quarantined`` (circuit breaker open for
    this job's die). With ``wait`` the response arrives only once the
    job is terminal (or ``timeout_s`` elapses).
``wait``
    block until a job id is terminal (bounded by ``timeout_s``).
``jobs`` / ``stats``
    queue snapshot / counters, breaker and worker state.
``drain``
    begin graceful drain (finish in-flight, checkpoint the rest).

Responses always carry ``"ok": true|false``; job-bearing responses
carry ``job_id``, ``state`` and — when terminal — ``result`` or
``error``.

Slow-client protection lives at this layer: reads are bounded by
:data:`MAX_LINE` bytes and by the socket timeout the server sets, so
a client that dribbles bytes or stops reading is disconnected without
ever touching the scheduler (its jobs keep running; results remain
addressable by job id and by content fingerprint).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.util.errors import ReproError
from repro.util.fingerprint import fingerprint

#: wire-format / job-identity schema; bump on incompatible change
PROTOCOL_VERSION = 1

#: largest accepted message line (a submit with a big edit stream is
#: a few KiB; anything near this is hostile or broken)
MAX_LINE = 4 * 1024 * 1024

# -- job states -------------------------------------------------------------
QUEUED = "queued"          # admitted, waiting for a worker
RUNNING = "running"        # on a worker (or inline, for eco jobs)
DONE = "done"              # terminal: result available
FAILED = "failed"          # terminal: non-retryable error or retries spent
SHED = "shed"              # terminal: load-shed / deadline / drain refusal
QUARANTINED = "quarantined"  # terminal: circuit breaker open for this die

TERMINAL_STATES = (DONE, FAILED, SHED, QUARANTINED)

# -- priority classes (lower rank wins) -------------------------------------
PRIORITIES = ("interactive", "normal", "batch")
PRIORITY_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


class ProtocolError(ReproError):
    """Malformed message: not JSON, not an object, or oversized."""


def job_fingerprint(kind: str, params: Dict[str, Any]) -> str:
    """Content identity of a job: two submissions with equal
    fingerprints are the same computation (single-flight + cache key).

    The kernel backend is deliberately excluded — backends are
    byte-identical by contract (DESIGN.md §11), so a result computed
    under either serves both.
    """
    return fingerprint({"kind": "serve-job", "schema": PROTOCOL_VERSION,
                        "job_kind": kind, "params": params})


def encode(message: Dict[str, Any]) -> bytes:
    """One message as one compact JSON line."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}")
    return message


class LineChannel:
    """Buffered line-oriented reader/writer over one socket.

    Owns its read buffer so partial lines survive between reads;
    honors the socket's timeout for both directions. ``recv`` returns
    ``None`` on a clean EOF and raises :class:`ProtocolError` when the
    peer exceeds :data:`MAX_LINE` without a newline (the caller should
    drop the connection — there is no way to resynchronize).
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = b""

    def recv(self) -> Optional[Dict[str, Any]]:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                if not line.strip():
                    continue  # tolerate blank keep-alive lines
                return decode(line)
            if len(self._buffer) > MAX_LINE:
                raise ProtocolError(
                    f"message exceeds {MAX_LINE} bytes without a newline")
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer.strip():
                    raise ProtocolError("connection closed mid-message")
                return None
            self._buffer += chunk

    def send(self, message: Dict[str, Any]) -> None:
        self.sock.sendall(encode(message))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def validate_priority(priority: str) -> str:
    if priority not in PRIORITY_RANK:
        raise ProtocolError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}")
    return priority
