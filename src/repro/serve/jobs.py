"""Workload registry for the job server.

A job is ``{"kind": K, "params": {...}}`` with JSON-only params, so
every workload is addressable over the wire and content-fingerprints
cleanly (:func:`repro.serve.protocol.job_fingerprint`). Results are
JSON-only dicts for the same reason. The contract that makes the
service trustworthy: **a job result is a pure function of its params**
— no session state, wall clock or submission order leaks in — so
single-flight coalescing, cache serving and crash-retries all return
the same bytes a cold run would.

Kinds:

``flow``
    one WCM flow on one generated die (the Table III unit of work);
    result carries the :class:`~repro.runtime.cache.WcmSummary`
    payload plus result/manifest fingerprints byte-identical to a
    cold :func:`~repro.core.flow.run_wcm_flow`.
``atpg``
    ``flow`` plus fault-model coverage on the wrapped die.
``experiment``
    one full table/figure driver at a named scale.
``eco``
    an edit stream applied to a baseline die, solved incrementally on
    a server-resident :class:`~repro.core.session.WcmSession` when the
    stream extends the session's applied prefix, cold otherwise —
    warm or cold, the result is identical by the session contract.
``noop``
    a trivial echo/sleep job (tests, benchmarks, liveness probes).

``flow``/``atpg`` run through :func:`repro.experiments.common.run_cell`,
so workers share the content-addressed :class:`ResultCache` with batch
runs — a die the CLI already computed is a warm hit for the service
and vice versa.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.util.errors import ConfigError, ReproError


class JobError(ReproError):
    """Invalid or failing job payload (non-retryable by definition:
    the same params would fail the same way on any worker)."""


# ---------------------------------------------------------------------------
# Param plumbing
# ---------------------------------------------------------------------------
def _require(params: Dict[str, Any], key: str) -> Any:
    try:
        return params[key]
    except KeyError:
        raise JobError(f"job params missing required key {key!r}") from None


def _choice(params: Dict[str, Any], key: str, default: str,
            allowed: Tuple[str, ...]) -> str:
    value = params.get(key, default)
    if value not in allowed:
        raise JobError(f"params[{key!r}] must be one of {allowed}, "
                       f"got {value!r}")
    return value


def _flow_spec(params: Dict[str, Any]):
    """(circuit, die, seed, scale, MethodSpec) from flow-shaped params."""
    from repro.experiments.common import SCALES, MethodSpec

    circuit = str(_require(params, "circuit"))
    die = int(_require(params, "die"))
    seed = int(params.get("seed", 2019))
    scale_name = _choice(params, "scale", "smoke", tuple(SCALES))
    method = _choice(params, "method", "ours", ("ours", "agrawal"))
    scenario = _choice(params, "scenario", "tight", ("tight", "area"))
    spec = MethodSpec(method=method, scenario=scenario,
                      no_overlap=bool(params.get("no_overlap", False)))
    return circuit, die, seed, SCALES[scale_name], spec


def _flow_manifest_fp(label: str, result_fp: str) -> str:
    """Deterministic manifest fingerprint of one served solve — the
    same derivation the eco differential check uses, so a cold oracle
    can recompute it without the service in the loop."""
    from repro.runtime.trace import manifest_fingerprint

    return manifest_fingerprint({
        "schema": "serve", "label": label, "config": None,
        "seed": None, "scale": None, "metrics": {},
        "result_fingerprint": result_fp,
    })


# ---------------------------------------------------------------------------
# Kind handlers (module-level: workers pickle a reference to execute_job)
# ---------------------------------------------------------------------------
def run_noop(params: Dict[str, Any]) -> Dict[str, Any]:
    sleep_s = float(params.get("sleep_s", 0.0))
    if sleep_s < 0:
        raise JobError(f"params['sleep_s'] must be >= 0, got {sleep_s}")
    if sleep_s:
        time.sleep(min(sleep_s, 600.0))
    if params.get("fail"):
        raise JobError(str(params.get("fail")))
    return {"value": params.get("value")}


def run_flow(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.common import run_cell
    from repro.util.fingerprint import fingerprint

    circuit, die, seed, scale, spec = _flow_spec(params)
    summary, _ = run_cell(circuit, die, seed, scale, spec)
    payload = summary.to_payload()
    result_fp = fingerprint(payload)
    return {
        "summary": payload,
        "result_fingerprint": result_fp,
        "manifest_fingerprint": _flow_manifest_fp(
            f"flow:{circuit}_d{die}", result_fp),
    }


def run_atpg(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.common import run_cell
    from repro.runtime.cache import atpg_result_to_payload
    from repro.util.fingerprint import fingerprint

    circuit, die, seed, scale, spec = _flow_spec(params)
    include_transition = bool(params.get("include_transition", False))
    summary, report = run_cell(circuit, die, seed, scale, spec,
                               with_atpg=True,
                               include_transition=include_transition)
    models = {"stuck_at": atpg_result_to_payload(report.stuck_at)}
    if report.transition is not None:
        models["transition"] = atpg_result_to_payload(report.transition)
    payload = {"summary": summary.to_payload(), "atpg": models}
    result_fp = fingerprint(payload)
    payload["result_fingerprint"] = result_fp
    payload["manifest_fingerprint"] = _flow_manifest_fp(
        f"atpg:{circuit}_d{die}", result_fp)
    return payload


def run_experiment(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.cli import _DRIVERS
    from repro.experiments.common import (SCALES, result_fingerprint)

    table = str(_require(params, "table"))
    if table not in _DRIVERS:
        raise JobError(f"unknown experiment table {table!r}; expected "
                       f"one of {sorted(_DRIVERS)}")
    scale_name = _choice(params, "scale", "smoke", tuple(SCALES))
    seed = int(params.get("seed", 2019))
    result = _DRIVERS[table](SCALES[scale_name], seed=seed)
    failures = getattr(result, "failures", ())
    return {
        "table": table,
        "render": result.render(),
        "result_fingerprint": result_fingerprint(result),
        "failures": len(failures),
    }


# -- eco --------------------------------------------------------------------
#: edit ops accepted in an eco job's ``edits`` list
_ECO_OPS = ("move-ff", "move-tsv", "add-tsv", "remove-tsv", "set")


def _edit_from_dict(raw: Dict[str, Any]):
    from repro.core.session import (AddTsv, MoveFf, MoveTsv, RemoveTsv,
                                    SetThreshold)
    from repro.netlist.core import PortKind

    op = _choice(raw, "op", "", _ECO_OPS)
    try:
        if op == "move-ff":
            return MoveFf(str(raw["name"]), float(raw["x"]),
                          float(raw["y"]))
        if op == "move-tsv":
            return MoveTsv(str(raw["name"]), float(raw["x"]),
                           float(raw["y"]))
        if op == "add-tsv":
            kind = (PortKind.TSV_INBOUND if raw.get("dir", "in") == "in"
                    else PortKind.TSV_OUTBOUND)
            return AddTsv(str(raw["name"]), kind, float(raw["x"]),
                          float(raw["y"]),
                          net=raw.get("net"))
        if op == "remove-tsv":
            return RemoveTsv(str(raw["name"]))
        thresholds = {}
        if "d_th_um" in raw:
            thresholds["d_th_um"] = float(raw["d_th_um"])
        if "cov_th" in raw:
            thresholds["cov_th"] = float(raw["cov_th"])
        if not thresholds:
            raise JobError("'set' edit needs d_th_um and/or cov_th")
        return SetThreshold(**thresholds)
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"malformed {op!r} edit {raw!r}: {exc}") from None


class EcoHost:
    """One server-resident warm session plus its applied edit prefix.

    Keeps eco results a pure function of the job params: a job whose
    edit stream extends the applied prefix replays only the suffix on
    the warm session; any other stream rebuilds the session from the
    baseline die. Either path is byte-identical by the session
    contract (DESIGN.md §12)."""

    def __init__(self, params: Dict[str, Any]) -> None:
        self.die_key = eco_die_key(params)
        self.session = None
        self.applied: List[Dict[str, Any]] = []

    def _build(self, params: Dict[str, Any]):
        from repro.bench import die_profile, generate_die
        from repro.core import Scenario, WcmConfig, build_problem
        from repro.core.problem import tight_clock_for
        from repro.core.session import WcmSession

        circuit, die, seed, _, spec = _flow_spec(params)
        profile = die_profile(circuit, die)
        netlist = generate_die(profile, seed=seed)
        problem = build_problem(netlist)
        clock = tight_clock_for(problem)
        scenario = (Scenario.area_optimized() if spec.scenario == "area"
                    else Scenario.performance_optimized(clock.period_ps))
        config = (WcmConfig.agrawal(scenario)
                  if spec.method == "agrawal"
                  else WcmConfig.ours(scenario))
        self.session = WcmSession(problem.netlist, config,
                                  already_prepared=True)
        self.applied = []

    def solve(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.core.session import result_fingerprint

        edits = params.get("edits", [])
        if not isinstance(edits, list):
            raise JobError("params['edits'] must be a list of edit "
                           "objects")
        warm = (self.session is not None
                and edits[:len(self.applied)] == self.applied)
        if not warm:
            self._build(params)
        for raw in edits[len(self.applied):]:
            self.session.apply(_edit_from_dict(raw))
            self.applied.append(raw)
        result = self.session.solve()
        result_fp = result_fingerprint(result)
        return {
            "reused": result.reused_scan_ffs,
            "additional": result.additional_wrapper_cells,
            "violation": result.timing_violation,
            "result_fingerprint": result_fp,
            "manifest_fingerprint": _flow_manifest_fp(
                f"eco:{self.die_key}", result_fp),
            "warm": warm,
            "dirty_frac": self.session.last_dirty_frac,
            "fallback": self.session.last_fallback,
        }


def eco_die_key(params: Dict[str, Any]) -> str:
    """Identity of the die/config an eco job targets (resident-session
    routing key; also the circuit-breaker key for eco jobs)."""
    circuit, die, seed, _, spec = _flow_spec(params)
    return f"{circuit}_d{die}_s{seed}_{spec.method}_{spec.scenario}"


def run_eco(params: Dict[str, Any],
            host: Optional[EcoHost] = None) -> Dict[str, Any]:
    """Solve one eco job; cold unless a resident *host* is provided."""
    if host is None:
        host = EcoHost(params)
    return host.solve(params)


# ---------------------------------------------------------------------------
# Registry + dispatch
# ---------------------------------------------------------------------------
#: kind -> (handler, cacheable, runs on a worker process)
JOB_KINDS: Dict[str, Tuple[Callable[[Dict[str, Any]], Dict[str, Any]],
                           bool, bool]] = {
    "noop": (run_noop, False, True),
    "flow": (run_flow, True, True),
    "atpg": (run_atpg, True, True),
    "experiment": (run_experiment, True, True),
    # eco runs inline in the daemon, on the resident warm session
    "eco": (run_eco, True, False),
}


def validate_job(kind: str, params: Any) -> None:
    """Admission-time shape check (cheap; full validation is the
    handler's job and a handler failure is terminal, not retried)."""
    if kind not in JOB_KINDS:
        raise JobError(f"unknown job kind {kind!r}; expected one of "
                       f"{sorted(JOB_KINDS)}")
    if not isinstance(params, dict):
        raise JobError(f"job params must be an object, "
                       f"got {type(params).__name__}")


def is_cacheable(kind: str) -> bool:
    return kind in JOB_KINDS and JOB_KINDS[kind][1]


def runs_on_worker(kind: str) -> bool:
    return kind not in JOB_KINDS or JOB_KINDS[kind][2]


def breaker_key(kind: str, params: Dict[str, Any]) -> str:
    """Circuit-breaker bucket: jobs that crash for the same underlying
    reason (same die / same table) must trip the same breaker."""
    try:
        if kind in ("flow", "atpg", "eco"):
            circuit = params.get("circuit", "?")
            die = params.get("die", "?")
            return f"{kind}:{circuit}_d{die}"
        if kind == "experiment":
            return f"experiment:{params.get('table', '?')}"
    except AttributeError:
        pass
    return f"{kind}:*"


def execute_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one job dict to its result dict.

    Module-level and importable, so the supervisor's worker processes
    can pickle a reference to it; raises :class:`JobError` (or any
    domain error) on deterministic failure — the server maps raised
    exceptions to a terminal ``failed`` state, never a retry."""
    kind = job.get("kind")
    params = job.get("params", {})
    validate_job(kind, params)
    handler = JOB_KINDS[kind][0]
    try:
        return handler(params)
    except JobError:
        raise
    except ConfigError as exc:
        raise JobError(f"invalid job configuration: {exc}") from exc
    except (KeyError, ValueError, TypeError) as exc:
        raise JobError(
            f"{kind} job failed deterministically: "
            f"{type(exc).__name__}: {exc}") from exc
