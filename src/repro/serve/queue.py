"""Admission control and job lifecycle for the WCM job server.

This module is the server's brain, deliberately socket-free so every
robustness behavior is unit-testable with a fake clock:

* **Bounded priority queues.** Three priority classes (interactive >
  normal > batch), each with its own capacity. Scheduling is strict
  priority, FIFO within a class.
* **Explicit load shedding.** A submit that would overflow its class
  is *rejected now* with a ``retry_after_s`` hint (scaled by queue
  pressure) instead of queueing unboundedly — the client backs off,
  the server's memory stays bounded, and latency for admitted jobs
  stays predictable.
* **Single-flight dedupe.** Submissions are content-fingerprinted;
  a submission identical to a non-terminal job attaches to it
  (``coalesced``) instead of computing twice. Terminal results are
  additionally served out of the shared :class:`ResultCache` by the
  server, so "identical concurrent requests collapse to one
  computation" holds across restarts too.
* **Deterministic capped exponential backoff.** A retryable failure
  (worker crash, per-job timeout) re-queues the job not-before
  ``min(cap, base * 2**(attempt-1))`` seconds from now. No jitter:
  two runs of the same chaos scenario retry at the same offsets,
  which is what makes the chaos suite assertable.
* **Circuit breaker.** Jobs are bucketed by a breaker key (e.g. the
  die they target). ``threshold`` consecutive crash-class failures
  open the breaker: further submissions for that bucket are refused
  terminally (``quarantined``) — except every ``probe_interval``-th
  one, which is admitted as a half-open probe. A probe success closes
  the breaker; a probe failure re-arms it. Counting submissions
  rather than wall-clock keeps the breaker clock-free and
  deterministic under test.
* **Deadlines.** A job carries an absolute deadline; expiring while
  queued sheds it, and the server derives the worker kill budget from
  the remainder, so a deadline is honored end to end.
* **Crash-safe journal.** Every admission and terminal transition is
  appended (line-flushed JSON) to ``queue.journal``; on restart,
  submissions without a terminal record are re-admitted. A torn tail
  (the daemon died mid-write) is skipped, never raised. Exactly-one-
  terminal-state per job id is the invariant the chaos suite pins.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import trace
from repro.serve import jobs as jobs_mod
from repro.serve.protocol import (
    DONE,
    FAILED,
    PRIORITY_RANK,
    QUARANTINED,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
    job_fingerprint,
)

#: journal record schema; bump on incompatible change
JOURNAL_VERSION = 1


def backoff_s(attempt: int, base_s: float, cap_s: float) -> float:
    """Deterministic capped exponential backoff before re-attempt
    *attempt* (the first retry is attempt 2 -> one base delay)."""
    if attempt <= 1:
        return 0.0
    return min(cap_s, base_s * (2.0 ** (attempt - 2)))


@dataclass(frozen=True)
class AdmissionPolicy:
    """How the queue admits, sheds, retries and quarantines."""

    #: queued-job capacity per priority class (interactive, normal, batch)
    queue_caps: Tuple[int, int, int] = (64, 256, 1024)
    #: total attempts per job (1 = never retry)
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 5.0
    #: base retry-after hint handed to shed clients
    shed_retry_after_s: float = 0.5
    #: consecutive crash-class failures that open a breaker bucket
    breaker_threshold: int = 3
    #: every Nth refused submission is admitted as a half-open probe
    breaker_probe_interval: int = 4
    #: deadline applied when the client sends none (None = unbounded)
    default_deadline_s: Optional[float] = None

    def cap_for(self, rank: int) -> int:
        return self.queue_caps[min(rank, len(self.queue_caps) - 1)]


@dataclass
class JobRecord:
    """One submitted job, from admission to its single terminal state."""

    job_id: str
    kind: str
    params: Dict[str, Any]
    fingerprint: str
    priority: int
    state: str = QUEUED
    attempts: int = 0
    #: admission sequence number (chaos plans target it; FIFO tiebreak)
    seq: int = 0
    #: monotonic instant before which a backing-off retry must not run
    not_before: float = 0.0
    #: absolute monotonic deadline (None = unbounded)
    deadline: Optional[float] = None
    #: how many submissions coalesced onto this record
    coalesced: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: result came from the cache, not a fresh computation
    cached: bool = False
    #: admitted as a circuit-breaker half-open probe
    probe: bool = False
    terminal_event: threading.Event = field(
        default_factory=threading.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def remaining_s(self, now: float) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - now

    def snapshot(self, now: float) -> Dict[str, Any]:
        """JSON-safe status view (the ``jobs`` op payload)."""
        view = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "coalesced": self.coalesced,
            "cached": self.cached,
            "fingerprint": self.fingerprint[:16],
        }
        if self.deadline is not None:
            view["deadline_in_s"] = round(self.deadline - now, 3)
        if self.error is not None:
            view["error"] = self.error
        return view


class _Breaker:
    """Per-bucket consecutive-crash counter with half-open probes."""

    __slots__ = ("failures", "open", "refused")

    def __init__(self) -> None:
        self.failures = 0
        self.open = False
        self.refused = 0

    def record_crash(self, threshold: int) -> bool:
        """Count a crash-class failure; returns True if this opened
        the breaker."""
        self.failures += 1
        if not self.open and self.failures >= threshold:
            self.open = True
            self.refused = 0
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        if self.open:
            self.open = False
            self.refused = 0

    def admit_probe(self, probe_interval: int) -> bool:
        """While open: refuse, except every Nth submission probes."""
        self.refused += 1
        return self.refused % max(2, probe_interval) == 0


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------
class JobJournal:
    """Append-only, line-flushed record of admissions and terminals.

    One JSON object per line; a torn last line is ignored on replay.
    ``replay`` returns the submissions that never reached a terminal
    state — exactly the jobs a restarted daemon must re-admit."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        try:
            self._handle.write(
                json.dumps(record, separators=(",", ":"),
                           sort_keys=True) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            # a full disk must degrade recovery coverage, not the service
            trace.inc("serve.journal_write_failures")

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    @classmethod
    def replay(cls, path: os.PathLike) -> List[Dict[str, Any]]:
        """Pending submissions (submit record, no terminal record)."""
        pending: Dict[str, Dict[str, Any]] = {}
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError:
            return []
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail (or mid-file corruption): skip
                if not isinstance(record, dict):
                    continue
                kind = record.get("t")
                job_id = record.get("job_id")
                if not isinstance(job_id, str):
                    continue
                if kind == "submit":
                    pending[job_id] = record
                elif kind == "terminal":
                    pending.pop(job_id, None)
        return list(pending.values())


# ---------------------------------------------------------------------------
# The queue
# ---------------------------------------------------------------------------
class JobQueue:
    """Thread-safe job table + priority scheduling + failure policy.

    All mutation happens under one lock; ``changed`` is notified on
    every transition so the scheduler can sleep on it. Time is always
    passed in (monotonic seconds) — the queue never reads a clock,
    which is what lets the unit suite drive every timing path
    synthetically.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 journal: Optional[JobJournal] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.journal = journal
        self.lock = threading.Lock()
        self.changed = threading.Condition(self.lock)
        self.jobs: Dict[str, JobRecord] = {}
        #: fingerprint -> live (non-terminal) record, for single-flight
        self.inflight: Dict[str, JobRecord] = {}
        self.breakers: Dict[str, _Breaker] = {}
        self.draining = False
        self._seq = 0
        self.counters: Dict[str, int] = {
            "submitted": 0, "coalesced": 0, "shed": 0, "quarantined": 0,
            "done": 0, "failed": 0, "retries": 0, "cache_hits": 0,
            "breaker_opened": 0, "breaker_closed": 0, "recovered": 0,
        }

    # -- admission -------------------------------------------------------
    def submit(self, kind: str, params: Dict[str, Any], *,
               priority: str = "normal",
               deadline_s: Optional[float] = None,
               now: float = 0.0,
               recovered: bool = False) -> Tuple[JobRecord, str]:
        """Admit (or refuse) one submission.

        Returns ``(record, verdict)`` where verdict is one of
        ``queued`` / ``coalesced`` / ``shed`` / ``quarantined``.
        Refusals still return a (terminal) record so the caller can
        report a job id and a consistent state.
        """
        jobs_mod.validate_job(kind, params)
        rank = PRIORITY_RANK[priority]
        fp = job_fingerprint(kind, params)
        with self.lock:
            live = self.inflight.get(fp)
            if live is not None:
                live.coalesced += 1
                self.counters["coalesced"] += 1
                trace.inc("serve.coalesced")
                return live, "coalesced"

            record = self._new_record(kind, params, fp, rank)
            if deadline_s is None:
                deadline_s = self.policy.default_deadline_s
            if deadline_s is not None:
                record.deadline = now + float(deadline_s)

            if self.draining:
                self.counters["shed"] += 1
                trace.inc("serve.shed")
                return self._refuse(record, SHED,
                                    "draining: not accepting work",
                                    self.policy.shed_retry_after_s)

            breaker = self.breakers.get(
                jobs_mod.breaker_key(kind, params))
            if breaker is not None and breaker.open:
                if breaker.admit_probe(self.policy.breaker_probe_interval):
                    record.probe = True
                else:
                    self.counters["quarantined"] += 1
                    trace.inc("serve.quarantined")
                    return self._refuse(
                        record, QUARANTINED,
                        "circuit breaker open for this die",
                        self.policy.shed_retry_after_s * 4)

            depth = self._queued_depth(rank)
            cap = self.policy.cap_for(rank)
            if depth >= cap:
                self.counters["shed"] += 1
                trace.inc("serve.shed")
                retry_after = (self.policy.shed_retry_after_s
                               * (1.0 + depth / max(1, cap)))
                return self._refuse(record, SHED,
                                    f"queue full ({depth}/{cap})",
                                    retry_after)

            record.state = QUEUED
            record.attempts = 0
            self.jobs[record.job_id] = record
            self.inflight[fp] = record
            self.counters["submitted"] += 1
            if recovered:
                self.counters["recovered"] += 1
            trace.inc("serve.submitted")
            self._journal_submit(record)
            self.changed.notify_all()
            return record, "queued"

    def _new_record(self, kind: str, params: Dict[str, Any], fp: str,
                    rank: int) -> JobRecord:
        self._seq += 1
        return JobRecord(job_id=f"j{self._seq:06d}", kind=kind,
                         params=params, fingerprint=fp, priority=rank,
                         seq=self._seq)

    def _refuse(self, record: JobRecord, state: str, reason: str,
                retry_after_s: float) -> Tuple[JobRecord, str]:
        """Terminal refusal (shed/quarantined): recorded for the jobs
        view but never queued or journaled as pending work."""
        record.state = state
        record.error = reason
        record.result = {"retry_after_s": round(retry_after_s, 3)}
        record.terminal_event.set()
        self.jobs[record.job_id] = record
        return record, state

    def _queued_depth(self, rank: int) -> int:
        return sum(1 for job in self.inflight.values()
                   if job.state == QUEUED and job.priority == rank)

    # -- scheduling ------------------------------------------------------
    def next_ready(self, now: float
                   ) -> Tuple[Optional[JobRecord], Optional[float]]:
        """Highest-priority FIFO job whose backoff has elapsed.

        Returns ``(job, None)`` and marks it RUNNING, or ``(None,
        wake_at)`` where *wake_at* is the earliest instant a backing-
        off job becomes ready (``None`` when nothing is queued)."""
        with self.lock:
            self._shed_expired_locked(now)
            best: Optional[JobRecord] = None
            wake_at: Optional[float] = None
            for job in self.inflight.values():
                if job.state != QUEUED:
                    continue
                if job.not_before > now:
                    if wake_at is None or job.not_before < wake_at:
                        wake_at = job.not_before
                    continue
                if best is None or (job.priority, job.seq) < (
                        best.priority, best.seq):
                    best = job
            if best is None:
                return None, wake_at
            best.state = RUNNING
            best.attempts += 1
            return best, None

    def requeue(self, job: JobRecord) -> None:
        """Return a RUNNING job to QUEUED uncharged (e.g. the worker
        died before the job was handed over)."""
        with self.lock:
            if job.terminal:
                return
            job.state = QUEUED
            job.attempts = max(0, job.attempts - 1)
            self.changed.notify_all()

    # -- terminal transitions -------------------------------------------
    def complete(self, job: JobRecord, result: Dict[str, Any], *,
                 cached: bool = False) -> None:
        with self.lock:
            if job.terminal:
                return  # exactly one terminal state per job id
            job.state = DONE
            job.result = result
            job.cached = cached
            self.counters["done"] += 1
            if cached:
                self.counters["cache_hits"] += 1
            breaker = self.breakers.get(
                jobs_mod.breaker_key(job.kind, job.params))
            if breaker is not None and (breaker.open or breaker.failures):
                breaker.record_success()
                self.counters["breaker_closed"] += 1
                trace.event("serve.breaker_closed", job_id=job.job_id)
            self._finish_locked(job)

    def fail(self, job: JobRecord, error: str, *, retryable: bool,
             now: float = 0.0, crash: bool = False,
             final_state: str = FAILED) -> str:
        """Terminal failure, retry with backoff, or breaker trip.

        Returns the resulting state (``queued`` when re-attempting).
        *crash* marks crash-class failures (worker died / hung) — the
        only class the circuit breaker counts, since a deterministic
        exception is the job's own fault, not the die's.
        """
        with self.lock:
            if job.terminal:
                return job.state
            if crash:
                key = jobs_mod.breaker_key(job.kind, job.params)
                breaker = self.breakers.setdefault(key, _Breaker())
                if breaker.record_crash(self.policy.breaker_threshold):
                    self.counters["breaker_opened"] += 1
                    trace.event("serve.breaker_opened", key=key,
                                failures=breaker.failures)
                if job.probe:
                    breaker.open = True  # failed probe re-arms
            if (retryable and not job.probe
                    and job.attempts < self.policy.max_attempts):
                delay = backoff_s(job.attempts + 1,
                                  self.policy.backoff_base_s,
                                  self.policy.backoff_cap_s)
                job.state = QUEUED
                job.not_before = now + delay
                job.error = error
                self.counters["retries"] += 1
                trace.inc("serve.retries")
                trace.event("serve.retry", job_id=job.job_id,
                            attempt=job.attempts, backoff_s=delay,
                            error=error)
                self.changed.notify_all()
                return QUEUED
            job.state = final_state
            job.error = error
            self.counters["failed" if final_state == FAILED
                          else final_state] = self.counters.get(
                "failed" if final_state == FAILED else final_state,
                0) + 1
            self._finish_locked(job)
            return job.state

    def shed_running(self, job: JobRecord, reason: str) -> None:
        """Terminal shed of a running job (deadline exceeded)."""
        self.fail(job, reason, retryable=False, final_state=SHED)

    def _shed_expired_locked(self, now: float) -> None:
        for job in list(self.inflight.values()):
            if (job.state == QUEUED and job.deadline is not None
                    and now >= job.deadline):
                job.state = SHED
                job.error = "deadline expired while queued"
                self.counters["shed"] += 1
                trace.inc("serve.deadline_shed")
                self._finish_locked(job)

    def _finish_locked(self, job: JobRecord) -> None:
        self.inflight.pop(job.fingerprint, None)
        job.terminal_event.set()
        self._journal_terminal(job)
        trace.event("serve.terminal", job_id=job.job_id,
                    state=job.state, attempts=job.attempts,
                    cached=job.cached)
        self.changed.notify_all()

    # -- journal ---------------------------------------------------------
    def _journal_submit(self, job: JobRecord) -> None:
        if self.journal is None:
            return
        self.journal.append({
            "t": "submit", "v": JOURNAL_VERSION, "job_id": job.job_id,
            "kind": job.kind, "params": job.params,
            "priority": job.priority,
        })

    def _journal_terminal(self, job: JobRecord) -> None:
        if self.journal is None:
            return
        self.journal.append({"t": "terminal", "job_id": job.job_id,
                             "state": job.state})

    def recover_records(self, records: List[Dict[str, Any]],
                        now: float = 0.0) -> int:
        """Re-admit replayed journal submissions (see
        :meth:`JobJournal.replay`) that never went terminal.

        Recovered jobs keep their original priority and params but get
        fresh ids and unbounded deadlines (the original deadline was
        relative to a dead process's clock; honoring a stale one would
        shed work the client is still waiting on)."""
        from repro.serve.protocol import PRIORITIES

        count = 0
        for record in records:
            try:
                priority = PRIORITIES[int(record.get("priority", 1))]
                _, verdict = self.submit(
                    record["kind"], record["params"],
                    priority=priority, now=now, recovered=True)
            except Exception:
                trace.inc("serve.recover_failures")
                continue
            if verdict in ("queued", "coalesced"):
                count += 1
        if count:
            trace.event("serve.recovered", jobs=count)
        return count

    # -- drain / introspection ------------------------------------------
    def start_drain(self) -> None:
        with self.lock:
            self.draining = True
            self.changed.notify_all()

    def pending(self) -> List[JobRecord]:
        with self.lock:
            return [job for job in self.inflight.values()
                    if not job.terminal]

    def running(self) -> List[JobRecord]:
        with self.lock:
            return [job for job in self.inflight.values()
                    if job.state == RUNNING]

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self.lock:
            return self.jobs.get(job_id)

    def snapshot(self, now: float) -> List[Dict[str, Any]]:
        with self.lock:
            return [job.snapshot(now) for job in
                    sorted(self.jobs.values(), key=lambda j: j.seq)]

    def stats(self) -> Dict[str, Any]:
        with self.lock:
            states: Dict[str, int] = {}
            for job in self.jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "counters": dict(self.counters),
                "states": states,
                "draining": self.draining,
                "breakers": {key: {"open": breaker.open,
                                   "failures": breaker.failures}
                             for key, breaker in self.breakers.items()
                             if breaker.open or breaker.failures},
            }
