"""WCM-as-a-service: a fault-tolerant local job server.

The batch CLI pays the interpreter + die-preparation cold start on
every invocation and has no defense against overload. This package
turns the runtime (supervised worker pool, content-addressed result
cache, trace/metrics, warm :class:`~repro.core.session.WcmSession`)
into a long-running daemon:

* :mod:`repro.serve.protocol` — JSON-line request/response framing
  over a Unix domain socket, job states and priority classes,
* :mod:`repro.serve.jobs` — the workload registry (``flow``, ``atpg``,
  ``experiment``, ``eco``, ``noop``) executed in supervised workers,
* :mod:`repro.serve.queue` — admission control: bounded priority
  queues, load shedding with retry-after, deterministic capped
  exponential backoff, a per-die circuit breaker, single-flight
  dedupe, deadlines, and a crash-safe submission journal,
* :mod:`repro.serve.server` — the daemon: warm worker pool, resident
  ECO sessions, result-cache serving, graceful drain on SIGTERM,
* :mod:`repro.serve.client` — the client library behind
  ``repro submit`` / ``repro jobs``.

See DESIGN.md §13 for the failure matrix (what is retried, shed,
quarantined) and the chaos suite that pins it down.
"""

from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.protocol import (
    DONE,
    FAILED,
    PRIORITIES,
    QUARANTINED,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
    job_fingerprint,
)
from repro.serve.queue import AdmissionPolicy, JobQueue, backoff_s
from repro.serve.server import WcmServer

__all__ = [
    "AdmissionPolicy",
    "DONE",
    "FAILED",
    "JobQueue",
    "PRIORITIES",
    "QUARANTINED",
    "QUEUED",
    "RUNNING",
    "SHED",
    "ServeClient",
    "ServeUnavailable",
    "TERMINAL_STATES",
    "WcmServer",
    "backoff_s",
    "job_fingerprint",
]
