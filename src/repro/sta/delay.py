"""Delay models: linear cell delay and Elmore wire delay.

Units: ps for time, fF for capacitance, um for distance, ohm/um and
fF/um for wire parasitics (45 nm intermediate-metal flavour). The
conversion constant is 1 ohm*fF = 0.001 ps.
"""

from __future__ import annotations

from dataclasses import dataclass

_OHM_FF_TO_PS = 0.001


@dataclass(frozen=True)
class WireModel:
    """First-order RC wire model.

    ``enabled=False`` zeroes all wire delay and wire capacitance — the
    load-only timing model of Agrawal et al. [4]. The default numbers
    give a 100 um wire roughly one gate delay of latency, matching the
    regime where ignoring wire delay on a reused scan flip-flop
    plausibly breaks a tight timing budget (the paper's Table III).
    """

    r_ohm_per_um: float = 4.0
    c_ff_per_um: float = 0.25
    enabled: bool = True

    def wire_cap_ff(self, length_um: float) -> float:
        """Capacitance the driver sees from the wire itself."""
        if not self.enabled:
            return 0.0
        return self.c_ff_per_um * max(length_um, 0.0)

    def wire_delay_ps(self, length_um: float, load_ff: float) -> float:
        """Elmore delay of a wire of *length_um* into *load_ff*."""
        if not self.enabled:
            return 0.0
        length = max(length_um, 0.0)
        resistance = self.r_ohm_per_um * length
        distributed = 0.5 * resistance * self.c_ff_per_um * length
        lumped = resistance * max(load_ff, 0.0)
        return (distributed + lumped) * _OHM_FF_TO_PS


#: Wire model matching [4]: capacity load only, no wire parasitics.
LOAD_ONLY_WIRE_MODEL = WireModel(enabled=False)
