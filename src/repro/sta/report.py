"""Human-readable timing reports."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.sta.timer import TimingResult
from repro.util.tables import AsciiTable


@dataclass
class TimingReport:
    """Condensed view of a :class:`TimingResult` for logs and examples."""

    netlist_name: str
    period_ps: float
    critical_path_ps: float
    worst_slack_ps: float
    violation_count: int
    endpoint_count: int

    @classmethod
    def from_result(cls, result: TimingResult) -> "TimingReport":
        period = (result.constraint.period_ps
                  if result.constraint.is_constrained else math.inf)
        return cls(
            netlist_name=result.netlist_name,
            period_ps=period,
            critical_path_ps=result.critical_path_ps,
            worst_slack_ps=result.worst_slack_ps,
            violation_count=len(result.violations),
            endpoint_count=len(result.endpoints),
        )


def render_timing_report(result: TimingResult, worst_n: int = 10) -> str:
    """Render a PrimeTime-flavoured summary plus the worst endpoints."""
    report = TimingReport.from_result(result)
    lines: List[str] = [
        f"Timing report for {report.netlist_name}",
        f"  clock period     : "
        + ("unconstrained" if math.isinf(report.period_ps)
           else f"{report.period_ps:.1f} ps"),
        f"  critical path    : {report.critical_path_ps:.1f} ps",
        f"  worst slack      : "
        + ("+inf" if math.isinf(report.worst_slack_ps)
           else f"{report.worst_slack_ps:.1f} ps"),
        f"  endpoints        : {report.endpoint_count}"
        f" ({report.violation_count} violated)",
    ]
    worst = sorted(result.endpoints, key=lambda e: e.slack_ps)[:worst_n]
    if worst and not math.isinf(worst[0].slack_ps):
        table = AsciiTable(["endpoint", "kind", "arrival (ps)",
                            "required (ps)", "slack (ps)"])
        for endpoint in worst:
            table.add_row([
                endpoint.name,
                endpoint.kind,
                f"{endpoint.arrival_ps:.1f}",
                "inf" if math.isinf(endpoint.required_ps)
                else f"{endpoint.required_ps:.1f}",
                "inf" if math.isinf(endpoint.slack_ps)
                else f"{endpoint.slack_ps:.1f}",
            ])
        lines.append(table.render())
    return "\n".join(lines)
