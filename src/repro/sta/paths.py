"""Critical-path extraction: stage-by-stage timing reports.

``worst_paths`` reconstructs the N worst capture paths of a
:class:`~repro.sta.timer.TimingResult` by walking each endpoint's
worst-arrival chain backwards — the report a designer reads to find
*why* an endpoint violates (and exactly what the sign-off repair loop
in :mod:`repro.core.flow` walks when attributing a violation to a
wrapper group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.netlist.core import Netlist
from repro.sta.timer import TimingResult
from repro.util.tables import AsciiTable


@dataclass
class PathStage:
    """One net along a timing path."""

    net: str
    driver: str          # instance or port name ("" for sources)
    cell: str            # cell type name ("-" for ports)
    arrival_ps: float
    #: delay contributed by this stage (arrival - previous arrival)
    stage_delay_ps: float


@dataclass
class TimingPath:
    """One endpoint's worst path, source first."""

    endpoint: str
    endpoint_kind: str
    slack_ps: float
    stages: List[PathStage] = field(default_factory=list)

    @property
    def depth(self) -> int:
        return len(self.stages)

    def render(self) -> str:
        table = AsciiTable(
            ["net", "driver", "cell", "arrival (ps)", "+delay (ps)"],
            title=(f"Path to {self.endpoint} ({self.endpoint_kind}), "
                   f"slack {self.slack_ps:+.1f} ps"),
        )
        for stage in self.stages:
            table.add_row([
                stage.net, stage.driver or "(source)", stage.cell,
                f"{stage.arrival_ps:.1f}", f"{stage.stage_delay_ps:+.1f}",
            ])
        return table.render()


def _trace_endpoint(netlist: Netlist, result: TimingResult,
                    endpoint_name: str, max_depth: int = 256
                    ) -> List[PathStage]:
    """Walk the worst-arrival chain from an endpoint back to a source."""
    if endpoint_name in netlist.instances:
        current = netlist.instances[endpoint_name].connections.get("D")
    elif endpoint_name in netlist.ports:
        current = netlist.ports[endpoint_name].net
    else:
        return []

    reversed_stages: List[PathStage] = []
    for _ in range(max_depth):
        if current is None:
            break
        arrival = result.arrival_ps.get(current, 0.0)
        net = netlist.nets.get(current)
        if net is None or net.driver is None:
            reversed_stages.append(PathStage(current, "", "-", arrival, 0.0))
            break
        if net.driver.is_port:
            reversed_stages.append(PathStage(
                current, net.driver.owner_name, "-", arrival, 0.0))
            break
        inst = netlist.instances[net.driver.owner_name]
        candidates = [(pin, innet) for pin, innet in inst.input_nets()
                      if pin not in ("CK", "SE", "SI")
                      and innet in result.arrival_ps]
        if not candidates:
            reversed_stages.append(PathStage(
                current, inst.name, inst.cell.name, arrival, arrival))
            break
        worst_net = max(candidates,
                        key=lambda pn: result.arrival_ps.get(pn[1], 0.0))[1]
        previous = result.arrival_ps.get(worst_net, 0.0)
        reversed_stages.append(PathStage(
            current, inst.name, inst.cell.name, arrival,
            arrival - previous))
        if inst.is_sequential:
            break
        current = worst_net

    reversed_stages.reverse()
    return reversed_stages


def worst_paths(netlist: Netlist, result: TimingResult, count: int = 5,
                violating_only: bool = False) -> List[TimingPath]:
    """The *count* worst endpoint paths (most negative slack first)."""
    endpoints = sorted(result.endpoints, key=lambda e: e.slack_ps)
    paths: List[TimingPath] = []
    for endpoint in endpoints:
        if violating_only and not endpoint.violated:
            break
        paths.append(TimingPath(
            endpoint=endpoint.name,
            endpoint_kind=endpoint.kind,
            slack_ps=endpoint.slack_ps,
            stages=_trace_endpoint(netlist, result, endpoint.name),
        ))
        if len(paths) >= count:
            break
    return paths


def render_worst_paths(netlist: Netlist, result: TimingResult,
                       count: int = 3) -> str:
    """A multi-path report (the `report_timing`-style dump)."""
    sections = [path.render()
                for path in worst_paths(netlist, result, count)]
    return "\n\n".join(sections) if sections else "(no timed endpoints)"
