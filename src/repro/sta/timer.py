"""Levelized static timing analysis.

Forward pass computes arrival times at every net (at its driver output
pin), backward pass computes required times; slack follows. Wire delay
between a net's driver and each sink uses the placement distance and
the Elmore model; disabling the wire model reproduces [4]'s load-only
timing.

The constraint-independent part of the work — positions, per-net
loads, topological order, per-(net, sink) wire delays, per-gate cell
delays — lives in a :class:`TimingContext` bound to one netlist and is
computed once; repeated :meth:`TimingContext.analyze` calls (dual-mode
sign-off, ECO rounds, path reports) redo only the arrival/required
sweeps. :meth:`TimingContext.invalidate_nets` refreshes the cached
state for nets a caller mutated in place (placement moves, load
changes); structural edits (new instances/nets) need
:meth:`TimingContext.invalidate`.

Conventions:

* paths launch at input-direction ports (arrival = ``input_delay_ps``)
  and at flip-flop outputs (arrival = FF cell delay under its load),
* paths capture at FF ``D``/``SI`` pins (required = period - setup) and
  at output-direction ports (required = period - output margin),
* nets driven by clock / scan-enable / test-mode ports carry no timing,
* an unconstrained clock (``period_ps=None``) yields +inf required
  times, so slacks are +inf and nothing violates — the paper's
  area-optimized scenario.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netlist.core import (
    Instance,
    Net,
    Netlist,
    Pin,
    Port,
    PortDirection,
    PortKind,
)
from repro.netlist.topology import topological_instances
from repro.runtime import instrument, trace
from repro.runtime.backend import use_numpy
from repro.sta.constraints import ClockConstraint, UNCONSTRAINED
from repro.sta.delay import WireModel
from repro.util.errors import TimingError

INF = math.inf

#: Port kinds excluded from the timing graph.
_UNTIMED_PORT_KINDS = {PortKind.CLOCK, PortKind.SCAN_ENABLE, PortKind.TEST_MODE}

#: TSV landing pad + via capacitance seen by an outbound TSV driver (fF).
DEFAULT_TSV_CAP_FF = 15.0

#: 3-valued unknown used by case analysis
_X = 2


def default_case(netlist: Netlist, test_mode: int = 0) -> Dict[str, int]:
    """The usual sign-off case analysis: scan_enable = 0 and test_mode
    as given. Functional sign-off uses ``test_mode=0`` (wrapper mux B
    paths excluded), the at-speed capture check ``test_mode=1``."""
    case: Dict[str, int] = {}
    for port in netlist.ports.values():
        if port.net is None:
            continue
        if port.kind is PortKind.TEST_MODE:
            case[port.net] = test_mode
        elif port.kind is PortKind.SCAN_ENABLE:
            case[port.net] = 0
    return case


@dataclass
class EndpointSlack:
    """Slack at one capture endpoint."""

    kind: str  # "ff_d", "ff_si", "port"
    name: str  # instance or port name
    arrival_ps: float
    required_ps: float

    @property
    def slack_ps(self) -> float:
        return self.required_ps - self.arrival_ps

    @property
    def violated(self) -> bool:
        return self.slack_ps < 0.0


@dataclass
class TimingResult:
    """Full STA result for one die under one constraint set."""

    netlist_name: str
    constraint: ClockConstraint
    arrival_ps: Dict[str, float]
    required_ps: Dict[str, float]
    net_load_ff: Dict[str, float]
    endpoints: List[EndpointSlack]
    port_slack_ps: Dict[str, float]
    critical_path_ps: float

    @property
    def worst_slack_ps(self) -> float:
        if not self.endpoints:
            return INF
        return min(e.slack_ps for e in self.endpoints)

    @property
    def violations(self) -> List[EndpointSlack]:
        return [e for e in self.endpoints if e.violated]

    @property
    def has_violation(self) -> bool:
        return any(e.violated for e in self.endpoints)

    def slack_of_net(self, net_name: str) -> float:
        req = self.required_ps.get(net_name, INF)
        arr = self.arrival_ps.get(net_name, 0.0)
        return req - arr

    def slack_of_port(self, port_name: str) -> float:
        try:
            return self.port_slack_ps[port_name]
        except KeyError:
            raise TimingError(
                f"{self.netlist_name}: no timed endpoint for port {port_name!r}"
            ) from None

    def load_of_net(self, net_name: str) -> float:
        return self.net_load_ff.get(net_name, 0.0)


class _VectorPlan:
    """Levelized arrays for the numpy arrival/required sweeps.

    Built from a prepared :class:`TimingContext` for the no-case
    analysis (empty constant set); instances are grouped into levels so
    each level's pin arrivals are one gather + add, and the per-gate
    worst-input reduction is a single ``maximum.reduceat``. The sweeps
    are byte-identical to the scalar loops: every float comes from the
    same binary add/subtract of the same cached values, and max/min
    reductions are order-insensitive.
    """

    def __init__(self, context: "TimingContext") -> None:
        import numpy as np

        self.np = np
        netlist = context.netlist
        names = list(netlist.nets.keys())
        self.net_names = names
        index = {name: i for i, name in enumerate(names)}
        self.n_nets = len(names)

        untimed = context._untimed_base
        wire_delays = context._wire_delays

        # Forward seeds.
        port_seed_ids: List[int] = []
        for port in netlist.ports.values():
            if port.direction is PortDirection.INPUT and port.net is not None \
                    and port.kind not in _UNTIMED_PORT_KINDS:
                port_seed_ids.append(index[port.net])
        ff_out_ids: List[int] = []
        ff_out_delay: List[float] = []
        for inst in context._ffs:
            out = inst.output_net()
            if out is not None:
                ff_out_ids.append(index[out])
                ff_out_delay.append(context._gate_delay[inst.name])
        self.port_seed_ids = np.array(port_seed_ids, dtype=np.intp)
        self.ff_out_ids = np.array(ff_out_ids, dtype=np.intp)
        self.ff_out_delay = np.array(ff_out_delay, dtype=np.float64)

        # Levelized combinational gates with their timed input pairs.
        net_level = [0] * self.n_nets
        records: Dict[int, List[Tuple[int, float, List[int], List[float]]]]
        records = {}
        arrival_keys: List[int] = port_seed_ids + ff_out_ids
        for name in context._topo:
            inst = netlist.instance(name)
            out = inst.output_net()
            if out is None:
                continue
            pairs = context._inst_pairs[name]
            level = 1 + max((net_level[index[net]] for _pin, net in pairs),
                            default=0)
            out_id = index[out]
            net_level[out_id] = level
            src_ids: List[int] = []
            wire: List[float] = []
            for pin, net in pairs:
                if net in untimed:
                    continue
                src_ids.append(index[net])
                wire.append(wire_delays.get((net, name, pin), 0.0))
            records.setdefault(level, []).append(
                (out_id, context._gate_delay[name], src_ids, wire))
            arrival_keys.append(out_id)
        self.arrival_keys = arrival_keys

        #: per level: (out ids, gate delays, pin srcs, pin wires,
        #: segment starts, segment counts, pin->gate map)
        self.levels = []
        for level in sorted(records):
            gates = records[level]
            outs = np.array([g[0] for g in gates], dtype=np.intp)
            delays = np.array([g[1] for g in gates], dtype=np.float64)
            counts = np.array([len(g[2]) for g in gates], dtype=np.intp)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            src = np.array([s for g in gates for s in g[2]], dtype=np.intp)
            wires = np.array([w for g in gates for w in g[3]],
                             dtype=np.float64)
            pin_gate = np.repeat(np.arange(len(gates), dtype=np.intp),
                                 counts)
            self.levels.append((outs, delays, src, wires, starts, counts,
                                pin_gate))

        # Backward seeds: FF D pins and output ports.
        ffd_ids: List[int] = []
        ffd_wire: List[float] = []
        for inst in context._ffs:
            net = inst.connections.get("D")
            if net is None or net in untimed:
                continue
            ffd_ids.append(index[net])
            ffd_wire.append(wire_delays.get((net, inst.name, "D"), 0.0))
        oport_ids: List[int] = []
        oport_wire: List[float] = []
        for port in netlist.ports.values():
            if port.direction is PortDirection.OUTPUT and port.net is not None:
                oport_ids.append(index[port.net])
                oport_wire.append(
                    wire_delays.get((port.net, port.name, ""), 0.0))
        self.ffd_ids = np.array(ffd_ids, dtype=np.intp)
        self.ffd_wire = np.array(ffd_wire, dtype=np.float64)
        self.oport_ids = np.array(oport_ids, dtype=np.intp)
        self.oport_wire = np.array(oport_wire, dtype=np.float64)

    def forward(self, input_delay_ps: float) -> Dict[str, float]:
        """Arrival sweep; same key set and values as the scalar loop."""
        np = self.np
        arrival = np.zeros(self.n_nets, dtype=np.float64)
        arrival[self.port_seed_ids] = input_delay_ps
        arrival[self.ff_out_ids] = self.ff_out_delay
        for outs, delays, src, wires, starts, counts, _pg in self.levels:
            if src.size:
                pin_arrival = arrival[src] + wires
                worst = np.maximum.reduceat(
                    pin_arrival, np.minimum(starts, pin_arrival.size - 1))
                worst[counts == 0] = 0.0
                np.maximum(worst, 0.0, out=worst)
            else:
                worst = np.zeros(outs.size, dtype=np.float64)
            arrival[outs] = worst + delays
        names = self.net_names
        return {names[i]: float(arrival[i]) for i in self.arrival_keys}

    def backward(self, ff_required: float, port_required: float
                 ) -> Dict[str, float]:
        """Required sweep; same key set and values as the scalar loop."""
        np = self.np
        required = np.full(self.n_nets, INF, dtype=np.float64)
        if self.ffd_ids.size:
            np.minimum.at(required, self.ffd_ids,
                          ff_required - self.ffd_wire)
        if self.oport_ids.size:
            np.minimum.at(required, self.oport_ids,
                          port_required - self.oport_wire)
        for outs, delays, src, wires, _starts, _counts, pin_gate in \
                reversed(self.levels):
            if not src.size:
                continue
            budget = required[outs] - delays
            np.minimum.at(required, src, budget[pin_gate] - wires)
        names = self.net_names
        return {names[i]: float(required[i])
                for i in range(self.n_nets) if required[i] < INF}


class TimingContext:
    """Constraint-independent STA state bound to one netlist.

    Builds positions, per-net loads, the topological instance order,
    per-(net, sink) wire delays and per-gate cell delays once; every
    :meth:`analyze` call then runs only the arrival/required sweeps.
    Byte-identical to a from-scratch analysis — the cached values are
    the same floats the sweeps would recompute.
    """

    def __init__(self, netlist: Netlist, wire_model: Optional[WireModel] = None,
                 tsv_cap_ff: float = DEFAULT_TSV_CAP_FF) -> None:
        self.netlist = netlist
        self.wire = wire_model or WireModel()
        self.tsv_cap_ff = tsv_cap_ff
        self._prepared = False
        self._vplan: Optional[_VectorPlan] = None

    # ------------------------------------------------------------------
    # Preparation (once per netlist, or after invalidation)
    # ------------------------------------------------------------------
    def _sink_cap(self, sink: Pin) -> float:
        # Position-independent (port kind / library cap), so cached per
        # pin across invalidate_nets refreshes.
        key = (sink.owner_name, sink.pin_name)
        cached = self._sink_cap_cache.get(key)
        if cached is not None:
            return cached
        if sink.is_port:
            port = self.netlist.port(sink.owner_name)
            value = (self.tsv_cap_ff
                     if port.kind is PortKind.TSV_OUTBOUND else 2.0)
        elif sink.pin_name == "SI":
            # Scan-shift paths are timed at the (slow) shift clock and
            # chain routing rides dedicated resources; excluding SI
            # keeps functional/test sign-off independent of chain order.
            value = 0.0
        else:
            inst = self.netlist.instance(sink.owner_name)
            value = inst.cell.input_cap(sink.pin_name)
        self._sink_cap_cache[key] = value
        return value

    def _compute_positions(self) -> Dict[str, Tuple[float, float]]:
        pos: Dict[str, Tuple[float, float]] = {}
        for inst in self.netlist.instances.values():
            pos[inst.name] = (inst.x, inst.y)
        for port in self.netlist.ports.values():
            pos[port.name] = (port.x, port.y)
        return pos

    def _net_load(self, net: Net) -> float:
        """Per-net capacitive load: sink pin caps + star wire cap.

        This is the quantity Algorithm 1 compares against ``cap_th``
        for inbound TSVs.
        """
        pos = self._pos
        total = 0.0
        driver_pos = (pos[net.driver.owner_name]
                      if net.driver is not None else None)
        for sink in net.sinks:
            if not sink.is_port and sink.pin_name == "SI":
                continue  # scan chain: shift-clock domain
            total += self._sink_cap(sink)
            if driver_pos is not None:
                sink_pos = pos[sink.owner_name]
                length = (abs(driver_pos[0] - sink_pos[0])
                          + abs(driver_pos[1] - sink_pos[1]))
                total += self.wire.wire_cap_ff(length)
        return total

    def _net_wire_delays(self, net: Net) -> None:
        """(Re)compute the driver-to-sink wire delay of every sink."""
        if net.driver is None:
            return
        pos = self._pos
        delays = self._wire_delays
        dpos = pos[net.driver.owner_name]
        for sink in net.sinks:
            spos = pos[sink.owner_name]
            length = abs(dpos[0] - spos[0]) + abs(dpos[1] - spos[1])
            delays[(net.name, sink.owner_name, sink.pin_name)] = \
                self.wire.wire_delay_ps(length, self._sink_cap(sink))

    def _prepare(self) -> None:
        netlist = self.netlist
        self._sink_cap_cache: Dict[Tuple[str, str], float] = {}
        self._pos = self._compute_positions()
        self._topo: List[str] = list(topological_instances(netlist))
        self._ffs: List[Instance] = netlist.flip_flops()

        self._loads: Dict[str, float] = {}
        self._wire_delays: Dict[Tuple[str, str, str], float] = {}
        for net in netlist.nets.values():
            self._loads[net.name] = self._net_load(net)
            self._net_wire_delays(net)

        # Per-gate cell delay under the net's (constraint-independent)
        # load — the same value both sweep directions ask for.
        self._gate_delay: Dict[str, float] = {}
        for inst in netlist.instances.values():
            out = inst.output_net()
            if out is not None:
                self._gate_delay[inst.name] = inst.cell.delay_ps(
                    self._loads.get(out, 0.0))

        # Timeable (pin, net) pairs per instance, in cell pin order.
        self._inst_pairs: Dict[str, List[Tuple[str, str]]] = {}
        for name in self._topo:
            inst = netlist.instance(name)
            self._inst_pairs[name] = [
                (p, n) for p, n in inst.input_nets()
                if p not in ("CK", "SE", "SI")
            ]

        self._untimed_base = {
            port.net for port in netlist.ports.values()
            if port.kind in _UNTIMED_PORT_KINDS and port.net is not None
        }

        # Reverse maps for the delta sweeps. Structure-only, so they
        # survive invalidate_nets and are rebuilt only here.
        self._topo_index: Dict[str, int] = {
            name: i for i, name in enumerate(self._topo)}
        self._consumers: Dict[str, List[str]] = {}
        for name in self._topo:
            for _pin, net in self._inst_pairs[name]:
                entry = self._consumers.setdefault(net, [])
                if not entry or entry[-1] != name:
                    entry.append(name)
        self._ffd_sinks: Dict[str, List[Instance]] = {}
        for inst in self._ffs:
            net = inst.connections.get("D")
            if net is not None:
                self._ffd_sinks.setdefault(net, []).append(inst)
        self._oport_sinks: Dict[str, List[Port]] = {}
        for port in netlist.ports.values():
            if port.direction is PortDirection.OUTPUT \
                    and port.net is not None:
                self._oport_sinks.setdefault(port.net, []).append(port)
        #: case -> propagated constants; pure in (structure, case)
        self._const_cache: Dict[Tuple, Dict[str, int]] = {}
        #: case -> (ff endpoint plan, port endpoint plan) for
        #: analyze_delta; pure in (structure, case)
        self._endpoint_plans: Dict[Tuple, Tuple[list, list]] = {}
        #: case -> instance -> timeable (pin, net) pairs after case
        #: pruning; pure in (structure, case) like the plans above
        self._active_pairs: Dict[Tuple, Dict[str, List[Tuple[str, str]]]] = {}

        self._prepared = True
        self._vplan = None
        instrument.count("sta.context_builds")

    # ------------------------------------------------------------------
    # Invalidation hooks
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached state (needed after structural edits)."""
        self._prepared = False
        self._vplan = None

    def invalidate_nets(self, net_names) -> None:
        """Refresh loads / wire delays / driver delays for nets whose
        endpoints moved or whose pin loads changed in place.

        Callers must pass *every* net incident to a moved object (the
        positions of the named nets' pin owners are re-read first, then
        the per-net quantities recomputed — an unlisted net keeps its
        cached geometry). Output-port sinks may also have been rewired
        in place on the listed nets (a scan restitch moves the scan-out
        port with the chain tail): the reverse endpoint map is
        refreshed per net. Adding or removing instances or gate
        connections changes the topological order — use
        :meth:`invalidate` for that.
        """
        if not self._prepared:
            return
        netlist = self.netlist
        pos = self._pos
        nets = []
        for name in net_names:
            net = netlist.nets.get(name)
            if net is None:
                # The net is gone: that is a structural edit.
                self.invalidate()
                return
            nets.append(net)
            pins = net.sinks if net.driver is None \
                else [net.driver] + net.sinks
            for pin in pins:
                owner = pin.owner_name
                obj = (netlist.ports.get(owner) if pin.is_port
                       else netlist.instances.get(owner))
                if obj is not None:
                    pos[owner] = (obj.x, obj.y)
        plans_stale = False
        for net in nets:
            self._loads[net.name] = self._net_load(net)
            self._net_wire_delays(net)
            if net.driver is not None and not net.driver.is_port:
                inst = netlist.instance(net.driver.owner_name)
                self._gate_delay[inst.name] = inst.cell.delay_ps(
                    self._loads.get(net.name, 0.0))
            oports = [port for port in
                      (netlist.ports.get(s.owner_name)
                       for s in net.sinks if s.is_port)
                      if port is not None
                      and port.direction is PortDirection.OUTPUT]
            old = self._oport_sinks.get(net.name, [])
            if [p.name for p in oports] != [p.name for p in old]:
                plans_stale = True
            if oports:
                self._oport_sinks[net.name] = oports
            else:
                self._oport_sinks.pop(net.name, None)
        if plans_stale:
            # a port endpoint moved between nets: the per-case endpoint
            # plans snapshot the port->net map, so drop them
            self._endpoint_plans.clear()
        self._vplan = None  # baked wire/gate delay arrays are stale
        instrument.count("sta.context_invalidations")

    # ------------------------------------------------------------------
    def loads(self) -> Dict[str, float]:
        """Per-net capacitive load map (a private snapshot)."""
        if not self._prepared:
            self._prepare()
        return dict(self._loads)

    def _propagate_constants(self, case: Dict[str, int]) -> Dict[str, int]:
        """3-valued constant propagation of the case-analysis values."""
        from repro.atpg.podem import _eval3  # shared 3-valued evaluator

        consts: Dict[str, int] = dict(case)
        for name in self._topo:
            inst = self.netlist.instance(name)
            ins = [consts.get(net, _X) for _pin, net in inst.input_nets()
                   if _pin not in ("CK", "SE", "SI")]
            out = inst.output_net()
            if out is None:
                continue
            value = _eval3(inst.cell.function, ins) if ins else _X
            if value != _X:
                consts[out] = value
        return consts

    def _consts_for(self, case: Dict[str, int]) -> Dict[str, int]:
        """Cached constant propagation: pure in (structure, case), so
        repeated sign-off analyses of the same case share one sweep."""
        key = tuple(sorted(case.items()))
        cached = self._const_cache.get(key)
        if cached is None:
            cached = self._propagate_constants(case)
            self._const_cache[key] = cached
        return cached

    def _active_inputs_fn(self, consts: Dict[str, int], untimed_nets,
                          case_key: Optional[Tuple] = None):
        """The (pin, net) pairs of an instance that can propagate a
        transition — shared by :meth:`analyze` and
        :meth:`analyze_delta` so both prune identically.

        Pure in (structure, case): ``_inst_pairs`` already excludes the
        scan/clock pins, and *consts*/*untimed_nets* derive from the
        case alone. With *case_key* the per-instance results are cached
        on the context (dropped on ``_prepare``), so delta analyses
        skip the pruning comprehensions. Callers only iterate the
        returned lists.
        """
        inst_pairs = self._inst_pairs
        cache = (self._active_pairs.setdefault(case_key, {})
                 if case_key is not None else None)

        def active_input_nets(inst: Instance) -> List[tuple]:
            if cache is not None:
                hit = cache.get(inst.name)
                if hit is not None:
                    return hit
            out_net = inst.output_net()
            if out_net is not None and out_net in consts:
                pairs: List[tuple] = []
            else:
                pairs = [(p, n) for p, n in inst_pairs[inst.name]
                         if n not in untimed_nets]
                if inst.cell.function == "mux2":
                    s_net = inst.connections.get("S")
                    s_val = consts.get(s_net, _X) if s_net else _X
                    if s_val == 0:
                        pairs = [(p, n) for p, n in pairs if p != "B"]
                    elif s_val == 1:
                        pairs = [(p, n) for p, n in pairs if p != "A"]
            if cache is not None:
                cache[inst.name] = pairs
            return pairs

        return active_input_nets

    def analyze(self, constraint: ClockConstraint = UNCONSTRAINED,
                case: Optional[Dict[str, int]] = None) -> TimingResult:
        """STA under *constraint*, optionally with case analysis.

        *case* maps net names to constant 0/1 (see :func:`default_case`).
        Constant nets carry no transitions: they are neither timing
        startpoints nor endpoints, and a mux whose select is constant
        passes arrival only from the selected data input.
        """
        if not self._prepared:
            self._prepare()
        instrument.count("sta.analyze_calls")
        netlist = self.netlist
        loads = self._loads
        gate_delay = self._gate_delay
        wire_delays = self._wire_delays
        consts = self._consts_for(case) if case else {}

        untimed_nets = self._untimed_base | set(consts)

        # Numpy backend: the levelized sweeps cover exactly the no-case
        # analysis; case analysis reshapes the active graph per call and
        # stays on the scalar path (both are byte-identical anyway).
        vplan: Optional[_VectorPlan] = None
        if not consts and use_numpy():
            if self._vplan is None:
                self._vplan = _VectorPlan(self)
            vplan = self._vplan

        case_key = tuple(sorted(case.items())) if case else ()
        active_input_nets = self._active_inputs_fn(consts, untimed_nets,
                                                   case_key)

        # ---- forward: arrival at net driver outputs --------------------
        if vplan is not None:
            arrival: Dict[str, float] = vplan.forward(
                constraint.input_delay_ps)
        else:
            arrival = {}
            for port in netlist.ports.values():
                if port.direction is PortDirection.INPUT \
                        and port.net is not None \
                        and port.kind not in _UNTIMED_PORT_KINDS:
                    arrival[port.net] = constraint.input_delay_ps
            for inst in self._ffs:
                out = inst.output_net()
                if out is not None:
                    arrival[out] = gate_delay[inst.name]

            for name in self._topo:
                inst = netlist.instance(name)
                active = active_input_nets(inst)
                out = inst.output_net()
                if out is None or out in consts:
                    continue
                worst_in = 0.0
                for pin_name, net_name in active:
                    pin_arrival = (arrival.get(net_name, 0.0)
                                   + wire_delays.get(
                                       (net_name, name, pin_name), 0.0))
                    worst_in = max(worst_in, pin_arrival)
                arrival[out] = worst_in + gate_delay[name]

        # ---- endpoints ---------------------------------------------------
        period = constraint.period_ps if constraint.is_constrained else INF
        ff_required = period - constraint.setup_ps if period is not INF else INF
        port_required = (period - constraint.output_margin_ps
                         if period is not INF else INF)

        endpoints: List[EndpointSlack] = []
        port_slack: Dict[str, float] = {}
        critical = 0.0

        for inst in self._ffs:
            net_name = inst.connections.get("D")
            if net_name is None or net_name in untimed_nets:
                continue
            pin_arrival = (arrival.get(net_name, 0.0)
                           + wire_delays.get((net_name, inst.name, "D"), 0.0))
            critical = max(critical, pin_arrival + constraint.setup_ps)
            endpoints.append(EndpointSlack(
                kind="ff_d",
                name=inst.name,
                arrival_ps=pin_arrival,
                required_ps=ff_required,
            ))

        for port in netlist.ports.values():
            if port.direction is not PortDirection.OUTPUT or port.net is None \
                    or port.net in consts:
                continue
            pin_arrival = (arrival.get(port.net, 0.0)
                           + wire_delays.get((port.net, port.name, ""), 0.0))
            critical = max(critical, pin_arrival + constraint.output_margin_ps)
            endpoint = EndpointSlack(
                kind="port", name=port.name,
                arrival_ps=pin_arrival, required_ps=port_required,
            )
            endpoints.append(endpoint)
            port_slack[port.name] = endpoint.slack_ps

        # ---- backward: required time at each net ------------------------
        if vplan is not None:
            required: Dict[str, float] = vplan.backward(ff_required,
                                                        port_required)
        else:
            required = {}

            def relax(net_name: str, value: float) -> None:
                current = required.get(net_name, INF)
                if value < current:
                    required[net_name] = value

            for inst in self._ffs:
                net_name = inst.connections.get("D")
                if net_name is None or net_name in untimed_nets:
                    continue
                relax(net_name,
                      ff_required - wire_delays.get(
                          (net_name, inst.name, "D"), 0.0))
            for port in netlist.ports.values():
                if port.direction is PortDirection.OUTPUT \
                        and port.net is not None:
                    relax(port.net,
                          port_required - wire_delays.get(
                              (port.net, port.name, ""), 0.0))

            for name in reversed(self._topo):
                inst = netlist.instance(name)
                out = inst.output_net()
                if out is None or out in consts:
                    continue
                out_required = required.get(out, INF)
                if out_required is INF:
                    continue
                budget = out_required - gate_delay[name]
                for pin_name, net_name in active_input_nets(inst):
                    relax(net_name,
                          budget - wire_delays.get(
                              (net_name, name, pin_name), 0.0))

        result = TimingResult(
            netlist_name=netlist.name,
            constraint=constraint,
            arrival_ps=arrival,
            required_ps=required,
            net_load_ff=dict(loads),
            endpoints=endpoints,
            port_slack_ps=port_slack,
            critical_path_ps=critical,
        )
        if trace.active() is not None:
            worst = result.worst_slack_ps
            if worst is not INF:
                trace.observe("sta.worst_slack_ps", worst)
        return result

    def analyze_delta(self, constraint: ClockConstraint = UNCONSTRAINED,
                      case: Optional[Dict[str, int]] = None, *,
                      previous: TimingResult,
                      dirty_nets) -> TimingResult:
        """Incremental STA: patch *previous* instead of full sweeps.

        Contract: *previous* came from :meth:`analyze` (or an earlier
        :meth:`analyze_delta`) on THIS context under the same
        *constraint* and *case*, and :meth:`invalidate_nets` has since
        been called with a superset of *dirty_nets* — every net whose
        load, wire delays or driver gate delay may have changed (i.e.
        all nets incident to a moved instance or port). The result is
        byte-identical to a fresh :meth:`analyze`: untouched arrival/
        required entries are reused, touched ones are recomputed with
        the exact full-sweep formulas, and changes propagate through
        the same topological orders. Endpoints on untouched capture
        nets are reused from *previous*; the critical path is re-folded
        over every endpoint. Always scalar — the numpy ``_VectorPlan`` sweeps are
        byte-identical to the scalar loops, so the delta matches both
        backends.
        """
        if not self._prepared:
            return self.analyze(constraint, case)
        if previous.constraint != constraint:
            raise TimingError(
                f"{self.netlist.name}: analyze_delta constraint differs "
                f"from the previous result's")
        instrument.count("sta.analyze_calls")
        instrument.count("sta.delta_analyze_calls")
        netlist = self.netlist
        gate_delay = self._gate_delay
        wire_delays = self._wire_delays
        consts = self._consts_for(case) if case else {}
        untimed_nets = self._untimed_base | set(consts)
        case_key = tuple(sorted(case.items())) if case else ()
        active_input_nets = self._active_inputs_fn(consts, untimed_nets,
                                                   case_key)
        dirty = set(dirty_nets)

        # ---- forward: recompute dirty / downstream-of-changed ----------
        # Worklist in topological order (a heap over topo indices): the
        # exact instance set a full scan would recompute — drivers and
        # consumers of dirty nets, plus consumers of any net whose
        # arrival changed — without touching the clean remainder.
        arrival = dict(previous.arrival_ps)
        changed = set()
        for inst in self._ffs:
            out = inst.output_net()
            if out is not None and out in dirty:
                value = gate_delay[inst.name]
                if arrival.get(out) != value:
                    arrival[out] = value
                    changed.add(out)

        topo_index = self._topo_index
        consumers = self._consumers
        pending: List[int] = []
        scheduled = set()

        def schedule_consumers(net_name: str) -> None:
            for cname in consumers.get(net_name, ()):
                idx = topo_index[cname]
                if idx not in scheduled:
                    scheduled.add(idx)
                    heapq.heappush(pending, idx)

        for net_name in dirty:
            schedule_consumers(net_name)
            net = netlist.nets.get(net_name)
            if net is not None and net.driver is not None \
                    and not net.driver.is_port:
                idx = topo_index.get(net.driver.owner_name)
                if idx is not None and idx not in scheduled:
                    scheduled.add(idx)
                    heapq.heappush(pending, idx)
        for net_name in changed:
            schedule_consumers(net_name)

        while pending:
            name = self._topo[heapq.heappop(pending)]
            inst = netlist.instance(name)
            out = inst.output_net()
            if out is None or out in consts:
                continue
            worst_in = 0.0
            for pin_name, net_name in active_input_nets(inst):
                pin_arrival = (arrival.get(net_name, 0.0)
                               + wire_delays.get(
                                   (net_name, name, pin_name), 0.0))
                worst_in = max(worst_in, pin_arrival)
            value = worst_in + gate_delay[name]
            if arrival.get(out) != value:
                arrival[out] = value
                changed.add(out)
                schedule_consumers(out)

        # ---- endpoints: patch where the capture net was touched ---------
        # An endpoint's arrival is arrival[net] + a wire delay of that
        # net; required depends only on the (unchanged) constraint. So
        # endpoints whose capture net is neither dirty nor downstream of
        # a change are reused from *previous* — only the critical-path
        # max is re-folded over everything (cheap float reads).
        period = constraint.period_ps if constraint.is_constrained else INF
        ff_required = period - constraint.setup_ps if period is not INF else INF
        port_required = (period - constraint.output_margin_ps
                         if period is not INF else INF)

        touched = changed | dirty
        # Per-case endpoint plan: the (name, capture net) pairs the full
        # sweep would visit, in its exact order. Structure- and
        # case-dependent only (both route through _prepare on change),
        # so *previous.endpoints* — produced in the same order — can be
        # reused index-aligned instead of via an O(n) dict build per
        # call. Any misalignment just recomputes the endpoint from the
        # arrival map, which is always correct.
        plans = self._endpoint_plans.get(case_key)
        if plans is None:
            ff_plan = []
            for inst in self._ffs:
                net_name = inst.connections.get("D")
                if net_name is not None and net_name not in untimed_nets:
                    ff_plan.append((inst.name, net_name))
            port_plan = []
            for port in netlist.ports.values():
                if port.direction is PortDirection.OUTPUT \
                        and port.net is not None and port.net not in consts:
                    port_plan.append((port.name, port.net))
            plans = (ff_plan, port_plan)
            self._endpoint_plans[case_key] = plans
        ff_plan, port_plan = plans
        prev_list = previous.endpoints
        aligned = len(prev_list) == len(ff_plan) + len(port_plan)

        endpoints: List[EndpointSlack] = []
        port_slack: Dict[str, float] = {}
        critical = 0.0

        for i, (name, net_name) in enumerate(ff_plan):
            endpoint = prev_list[i] if aligned else None
            if endpoint is not None and (net_name in touched
                                         or endpoint.kind != "ff_d"
                                         or endpoint.name != name
                                         or endpoint.required_ps
                                         != ff_required):
                endpoint = None
            if endpoint is None:
                pin_arrival = (arrival.get(net_name, 0.0)
                               + wire_delays.get(
                                   (net_name, name, "D"), 0.0))
                endpoint = EndpointSlack(
                    kind="ff_d",
                    name=name,
                    arrival_ps=pin_arrival,
                    required_ps=ff_required,
                )
            critical = max(critical,
                           endpoint.arrival_ps + constraint.setup_ps)
            endpoints.append(endpoint)

        base = len(ff_plan)
        for i, (name, net_name) in enumerate(port_plan):
            endpoint = prev_list[base + i] if aligned else None
            if endpoint is not None and (net_name in touched
                                         or endpoint.kind != "port"
                                         or endpoint.name != name
                                         or endpoint.required_ps
                                         != port_required):
                endpoint = None
            if endpoint is None:
                pin_arrival = (arrival.get(net_name, 0.0)
                               + wire_delays.get(
                                   (net_name, name, ""), 0.0))
                endpoint = EndpointSlack(
                    kind="port", name=name,
                    arrival_ps=pin_arrival, required_ps=port_required,
                )
            critical = max(critical,
                           endpoint.arrival_ps + constraint.output_margin_ps)
            endpoints.append(endpoint)
            port_slack[name] = endpoint.slack_ps

        # ---- backward: recompute required where inputs changed ----------
        required = dict(previous.required_ps)
        prev_required = previous.required_ps

        def recompute_required(n: str) -> float:
            """Exactly the full sweep's min over all contributions to
            net *n*, read off the reverse maps. Every consumer's own
            required is final by the time *n*'s driver is visited in
            the reversed topological order."""
            vals: List[float] = []
            if n not in untimed_nets:
                for ff in self._ffd_sinks.get(n, ()):
                    vals.append(ff_required - wire_delays.get(
                        (n, ff.name, "D"), 0.0))
            for oport in self._oport_sinks.get(n, ()):
                vals.append(port_required - wire_delays.get(
                    (n, oport.name, ""), 0.0))
            for cname in self._consumers.get(n, ()):
                cinst = netlist.instance(cname)
                cout = cinst.output_net()
                if cout is None or cout in consts:
                    continue
                out_required = required.get(cout, INF)
                if out_required == INF:
                    continue
                budget = out_required - gate_delay[cname]
                for pin_name, net_name in active_input_nets(cinst):
                    if net_name == n:
                        vals.append(budget - wire_delays.get(
                            (n, cname, pin_name), 0.0))
            return min(vals) if vals else INF

        # Worklist in reverse topological order (max-heap over topo
        # indices): visits exactly the instances whose output net needs
        # a fresh required time, growing the set through active inputs
        # as the full reversed scan would.
        needs = set(dirty)
        req_changed = set()
        recomputed = set()
        rev_pending: List[int] = []
        rev_scheduled = set()

        def schedule_driver(net_name: str) -> None:
            net = netlist.nets.get(net_name)
            if net is None or net.driver is None or net.driver.is_port:
                return
            idx = self._topo_index.get(net.driver.owner_name)
            if idx is not None and idx not in rev_scheduled:
                rev_scheduled.add(idx)
                heapq.heappush(rev_pending, -idx)

        for net_name in dirty:
            schedule_driver(net_name)

        while rev_pending:
            name = self._topo[-heapq.heappop(rev_pending)]
            inst = netlist.instance(name)
            out = inst.output_net()
            if out is None or out in consts:
                continue
            if out in needs:
                recomputed.add(out)
                new = recompute_required(out)
                if new == INF:
                    required.pop(out, None)
                else:
                    required[out] = new
                if new != prev_required.get(out, INF):
                    req_changed.add(out)
            if out in req_changed or (out in dirty
                                      and required.get(out, INF) < INF):
                for _pin, net_name in active_input_nets(inst):
                    needs.add(net_name)
                    schedule_driver(net_name)
        # Nets not driven by an active combinational gate (FF outputs,
        # port-driven, undriven, constant-out drivers) never pass the
        # loop; their consumers are all finalized now.
        for n in needs - recomputed:
            new = recompute_required(n)
            if new == INF:
                required.pop(n, None)
            else:
                required[n] = new

        result = TimingResult(
            netlist_name=netlist.name,
            constraint=constraint,
            arrival_ps=arrival,
            required_ps=required,
            net_load_ff=dict(self._loads),
            endpoints=endpoints,
            port_slack_ps=port_slack,
            critical_path_ps=critical,
        )
        if trace.active() is not None:
            worst = result.worst_slack_ps
            if worst is not INF:
                trace.observe("sta.worst_slack_ps", worst)
        return result


class TimingAnalyzer:
    """STA engine bound to one netlist, wire model and TSV cap.

    A thin veneer over :class:`TimingContext`: the context is built on
    the first :meth:`analyze` and reused for every later call, so
    dual-mode sign-off and constraint sweeps pay the graph preparation
    once. Callers that mutate the netlist in place must call
    :meth:`invalidate` (or :meth:`TimingContext.invalidate_nets` on
    :attr:`context`) before re-analyzing.
    """

    def __init__(self, netlist: Netlist, wire_model: Optional[WireModel] = None,
                 tsv_cap_ff: float = DEFAULT_TSV_CAP_FF) -> None:
        self.netlist = netlist
        self.wire = wire_model or WireModel()
        self.tsv_cap_ff = tsv_cap_ff
        self._context: Optional[TimingContext] = None

    @property
    def context(self) -> TimingContext:
        if self._context is None:
            self._context = TimingContext(self.netlist, self.wire,
                                          self.tsv_cap_ff)
        return self._context

    def invalidate(self) -> None:
        """Drop cached context state after netlist edits."""
        if self._context is not None:
            self._context.invalidate()

    def compute_loads(self) -> Dict[str, float]:
        """Per-net capacitive load: sink pin caps + star wire cap."""
        return self.context.loads()

    def analyze(self, constraint: ClockConstraint = UNCONSTRAINED,
                case: Optional[Dict[str, int]] = None) -> TimingResult:
        """STA under *constraint*, optionally with case analysis."""
        return self.context.analyze(constraint, case)
