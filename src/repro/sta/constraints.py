"""Clock and I/O timing constraints for STA."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.util.errors import TimingError


@dataclass(frozen=True)
class ClockConstraint:
    """A single-clock constraint set.

    ``period_ps=None`` means unconstrained (the paper's "no timing"
    area-optimized scenario): slacks are reported against an infinite
    period and nothing can violate.
    """

    period_ps: Optional[float] = None
    setup_ps: float = 20.0
    #: launch latency of a flip-flop (clock-to-Q), added at path start
    clk_to_q_ps: float = 60.0
    #: external arrival margin for primary/TSV inputs
    input_delay_ps: float = 0.0
    #: external setup margin demanded at primary/TSV outputs
    output_margin_ps: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ps is not None and self.period_ps <= 0:
            raise TimingError(f"clock period must be positive, got {self.period_ps}")

    @property
    def is_constrained(self) -> bool:
        return self.period_ps is not None

    def with_period(self, period_ps: float) -> "ClockConstraint":
        return replace(self, period_ps=period_ps)


#: The paper's area-optimized scenario: no timing constraint at all.
UNCONSTRAINED = ClockConstraint(period_ps=None)


def tight_period_for(critical_path_ps: float, margin: float = 0.03) -> float:
    """Pick a performance-optimized clock period.

    The paper tunes the tight scenario "to a very tight value": just a
    small margin above the pre-insertion critical path, so any wrapper
    cell inserted on a near-critical path without accounting for wire
    delay produces a violation.
    """
    if critical_path_ps <= 0:
        raise TimingError(
            f"critical path must be positive, got {critical_path_ps}"
        )
    return critical_path_ps * (1.0 + margin)
