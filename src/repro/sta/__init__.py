"""Static timing analysis substrate (PrimeTime stand-in).

A levelized timer over the die netlist with a linear cell-delay model
(``intrinsic + R * C_load``) and an Elmore wire-delay model driven by
placement distance. The wire model can be disabled, which reproduces
the capacity-load-only timing model of Agrawal et al. [4]; enabling it
gives this paper's "accurate timing model". The timer provides exactly
what the WCM flow consumes: per-outbound-TSV slack for Algorithm 1's
``s_th`` node filter, per-net capacitive load for ``cap_th``, and the
post-insertion violation check behind Table III.
"""

from repro.sta.delay import WireModel
from repro.sta.constraints import ClockConstraint, tight_period_for
from repro.sta.timer import TimingAnalyzer, TimingResult
from repro.sta.report import TimingReport, render_timing_report
from repro.sta.paths import TimingPath, render_worst_paths, worst_paths

__all__ = [
    "WireModel",
    "ClockConstraint",
    "tight_period_for",
    "TimingAnalyzer",
    "TimingResult",
    "TimingReport",
    "render_timing_report",
    "TimingPath",
    "render_worst_paths",
    "worst_paths",
]
