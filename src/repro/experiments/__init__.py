"""Experiment drivers: one module per table/figure of the paper.

Each driver regenerates its table/figure from scratch (circuits,
placement, STA, WCM methods, ATPG) and renders it in the paper's
layout, alongside the paper's reported values
(:mod:`repro.experiments.paper_data`) so the shapes can be compared
directly. See DESIGN.md §5 for the experiment index and
EXPERIMENTS.md for recorded paper-vs-measured results.
"""

from repro.experiments.common import (
    ExperimentScale,
    PreparedDie,
    prepare_die,
    resolve_scale,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.figure7 import run_figure7
from repro.experiments.overhead import run_overhead

__all__ = [
    "ExperimentScale",
    "PreparedDie",
    "prepare_die",
    "resolve_scale",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_figure7",
    "run_overhead",
]
