"""Table V — the effect of allowing overlapped fan-in/fan-out cones.

Runs the proposed method twice on the b20/b21/b22 dies under tight
timing: once with overlapped-cone FF reuse forbidden, once allowed
(``cov_th = 0.5 %``, ``p_th = 10``). Shapes to preserve: allowing
overlap reuses slightly more FFs and inserts fewer additional cells,
at a sub-``cov_th`` coverage cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.experiments.paper_data import TABLE5_PAPER_AVERAGE
from repro.util.tables import AsciiTable, format_pair

#: the paper restricts Table V to the three largest circuit families
TABLE5_CIRCUITS = ("b20", "b21", "b22")


@dataclass
class Table5Cell:
    reused: int
    additional: int
    stuck_at: Tuple[float, int]
    transition: Tuple[float, int]


@dataclass
class Table5Result:
    scale_name: str
    #: (circuit, die) -> {"no_overlap"/"overlap": cell}
    cells: Dict[Tuple[str, int], Dict[str, Table5Cell]] = field(
        default_factory=dict)
    #: (circuit, die) -> failure description, for cells that didn't survive
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def average(self, key: str, attr: str):
        values = [getattr(row[key], attr) for row in self.cells.values()]
        count = max(1, len(values))
        if attr in ("stuck_at", "transition"):
            return (sum(v[0] for v in values) / count,
                    sum(v[1] for v in values) / count)
        return sum(values) / count

    def render(self) -> str:
        table = AsciiTable(
            ["die",
             "no-ov r", "no-ov a", "no-ov SA", "no-ov TF",
             "ov r", "ov a", "ov SA", "ov TF"],
            title=("Table V — without / with overlapped-cone FF reuse "
                   "(tight timing)"),
        )
        for (circuit, die), row in sorted(self.cells.items()):
            no = row["no_overlap"]
            ov = row["overlap"]
            table.add_row([
                f"{circuit}_d{die}",
                no.reused, no.additional,
                format_pair(*no.stuck_at), format_pair(*no.transition),
                ov.reused, ov.additional,
                format_pair(*ov.stuck_at), format_pair(*ov.transition),
            ])
        table.add_separator()
        summary = ["Average"]
        for key in ("no_overlap", "overlap"):
            summary.append(f"{self.average(key, 'reused'):.2f}")
            summary.append(f"{self.average(key, 'additional'):.2f}")
            cov, pat = self.average(key, "stuck_at")
            summary.append(format_pair(cov, round(pat, 1)))
            cov, pat = self.average(key, "transition")
            summary.append(format_pair(cov, round(pat, 1)))
        table.add_row(summary)
        lines = [table.render(), ""]
        paper = TABLE5_PAPER_AVERAGE
        lines.append(
            "Paper averages: no-overlap "
            f"{paper['no_overlap']['reused']}/"
            f"{paper['no_overlap']['additional']}, overlap "
            f"{paper['overlap']['reused']}/{paper['overlap']['additional']} "
            f"(cells {100 * paper['overlap']['additional'] / paper['no_overlap']['additional']:.1f}% of no-overlap)"
        )
        if self.failures:
            lines += ["", render_failures(self.failures)]
        return "\n".join(lines)


def _die_cell(args: Tuple[str, int, int, ExperimentScale]
              ) -> Dict[str, Table5Cell]:
    """Overlap on/off ATPG measurements for one die (worker process)."""
    circuit, die_index, seed, scale = args
    row: Dict[str, Table5Cell] = {}
    for key in ("no_overlap", "overlap"):
        spec = MethodSpec("ours", "tight", no_overlap=(key == "no_overlap"))
        summary, report = run_cell(circuit, die_index, seed, scale, spec,
                                   with_atpg=True)
        row[key] = Table5Cell(
            reused=summary.reused,
            additional=summary.additional,
            stuck_at=(report.stuck_at.coverage,
                      report.stuck_at.pattern_count),
            transition=(report.transition.coverage,
                        report.transition.pattern_count),
        )
    return row


@traced_experiment("table5")
def run_table5(scale: Optional[ExperimentScale] = None,
               seed: int = DEFAULT_SEED, verbose: bool = False,
               jobs: Optional[int] = None) -> Table5Result:
    scale = scale or resolve_scale()
    result = Table5Result(scale_name=scale.name)
    dies = dies_for_scale(scale, circuits=TABLE5_CIRCUITS)
    if not dies:
        # Smoke scale has no b20-22; fall back to whatever is in scope
        # so the machinery still runs end to end.
        dies = dies_for_scale(scale)
    rows, result.failures = sweep_cells(
        _die_cell, dies,
        [(circuit, die, seed, scale) for circuit, die in dies],
        jobs=jobs, seed=seed, label="table5")
    for (circuit, die_index), row in rows.items():
        result.cells[(circuit, die_index)] = row
        if verbose:
            print(f"  {circuit}_die{die_index}: "
                  f"no-ov {row['no_overlap'].reused}/{row['no_overlap'].additional} "
                  f"ov {row['overlap'].reused}/{row['overlap'].additional}")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
