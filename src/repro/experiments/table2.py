"""Table II — benchmark characteristics.

The generator is calibrated to these numbers, so the table reproduces
the paper *by construction* (the honest framing — see DESIGN.md §2);
the driver verifies the counts really hold on the generated netlists
and adds measured structural columns (nets, combinational depth) the
paper does not report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.generator import generate_die
from repro.bench.itc99 import DieProfile, all_die_profiles
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    render_failures,
    resolve_scale,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.netlist.topology import combinational_levels
from repro.util.errors import ReproError
from repro.util.tables import AsciiTable


@dataclass
class Table2Row:
    circuit: str
    die: int
    scan_ffs: int
    gates: int
    tsvs: int
    inbound: int
    outbound: int
    nets: int
    depth: int


@dataclass
class Table2Result:
    scale_name: str
    rows: List[Table2Row] = field(default_factory=list)
    #: (circuit, die) -> failure description, for dies that failed to
    #: generate or diverged from their published characteristics
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def averages(self) -> Table2Row:
        count = max(1, len(self.rows))

        def mean(attr: str) -> float:
            return sum(getattr(r, attr) for r in self.rows) / count

        return Table2Row(
            circuit="avg", die=-1,
            scan_ffs=round(mean("scan_ffs"), 2),
            gates=round(mean("gates"), 2),
            tsvs=round(mean("tsvs"), 2),
            inbound=round(mean("inbound"), 2),
            outbound=round(mean("outbound"), 2),
            nets=round(mean("nets"), 2),
            depth=round(mean("depth"), 2),
        )

    def render(self) -> str:
        table = AsciiTable(
            ["circuit", "die", "#scan FFs", "#gates", "#TSVs",
             "#inbound", "#outbound", "#nets", "depth"],
            title="Table II — benchmark characteristics (generated)",
        )
        for row in self.rows:
            table.add_row([row.circuit, f"Die{row.die}", row.scan_ffs,
                           row.gates, row.tsvs, row.inbound, row.outbound,
                           row.nets, row.depth])
        table.add_separator()
        avg = self.averages()
        table.add_row(["Average", "", avg.scan_ffs, avg.gates, avg.tsvs,
                       avg.inbound, avg.outbound, avg.nets, avg.depth])
        rendered = table.render()
        if self.failures:
            rendered += "\n\n" + render_failures(self.failures)
        return rendered


def _die_row(args: Tuple[DieProfile, int]) -> Table2Row:
    """Generate and verify one die's characteristics (worker process)."""
    profile, seed = args
    netlist = generate_die(profile, seed=seed)
    stats = netlist.stats()
    if (stats["scan_flip_flops"] != profile.scan_flip_flops
            or stats["gates"] != profile.gates
            or stats["inbound_tsvs"] != profile.inbound_tsvs
            or stats["outbound_tsvs"] != profile.outbound_tsvs):
        raise ReproError(
            f"{profile.name}: generated counts diverge from Table II: "
            f"{stats}"
        )
    levels = combinational_levels(netlist)
    return Table2Row(
        circuit=profile.circuit,
        die=profile.die_index,
        scan_ffs=stats["scan_flip_flops"],
        gates=stats["gates"],
        tsvs=stats["inbound_tsvs"] + stats["outbound_tsvs"],
        inbound=stats["inbound_tsvs"],
        outbound=stats["outbound_tsvs"],
        nets=stats["nets"],
        depth=max(levels.values()) if levels else 0,
    )


@traced_experiment("table2")
def run_table2(scale: Optional[ExperimentScale] = None,
               seed: int = DEFAULT_SEED, verbose: bool = False,
               jobs: Optional[int] = None) -> Table2Result:
    """Generate every in-scale die and verify its Table II counts."""
    scale = scale or resolve_scale()
    result = Table2Result(scale_name=scale.name)
    profiles = [p for p in all_die_profiles()
                if p.circuit in scale.circuits]
    rows, result.failures = sweep_cells(
        _die_row, [(p.circuit, p.die_index) for p in profiles],
        [(profile, seed) for profile in profiles],
        jobs=jobs, seed=seed, label="table2")
    result.rows = [rows[key] for key in
                   ((p.circuit, p.die_index) for p in profiles)
                   if key in rows]
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
