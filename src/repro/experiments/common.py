"""Shared experiment infrastructure: die preparation cache and scaling.

Scale levels (environment variable ``REPRO_SCALE``):

* ``smoke``   — b11 + b12 only, small ATPG budgets (seconds; used by
  the test suite and quick bench runs),
* ``default`` — every circuit except b18, ATPG fault-sampled on the
  larger dies (the benchmark harness default; tens of minutes for the
  full set of tables),
* ``full``    — all six circuits with the largest budgets
  (``REPRO_SCALE=full``; hours).

Whatever the scale, the *same* code paths run — scaling only trims the
die list and the ATPG effort, and every driver prints which scale
produced its numbers. See DESIGN.md §6.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.atpg.engine import AtpgConfig
from repro.bench.generator import generate_die
from repro.bench.itc99 import DieProfile, all_die_profiles, die_profile
from repro.core.config import Scenario, WcmConfig
from repro.core.problem import WcmProblem, build_problem, tight_clock_for
from repro.runtime import trace
from repro.sta.constraints import ClockConstraint
from repro.util.errors import ConfigError
from repro.util.fingerprint import fingerprint

DEFAULT_SEED = 2019


@dataclass(frozen=True)
class ExperimentScale:
    """One reproducibility/effort level."""

    name: str
    circuits: Tuple[str, ...]
    #: ATPG fault-sample cap by die gate count: (small, large) where
    #: "large" applies above `large_gate_threshold` gates.
    atpg_sample_small: Optional[int]
    atpg_sample_large: Optional[int]
    large_gate_threshold: int
    atpg_block_width: int
    atpg_max_blocks: int
    atpg_podem_limit: Optional[int]
    estimator_budget: int

    def atpg_config(self, gate_count: int, seed: int = DEFAULT_SEED
                    ) -> AtpgConfig:
        sample = (self.atpg_sample_large
                  if gate_count >= self.large_gate_threshold
                  else self.atpg_sample_small)
        return AtpgConfig(
            seed=seed,
            block_width=self.atpg_block_width,
            max_random_blocks=self.atpg_max_blocks,
            podem_fault_limit=self.atpg_podem_limit,
            fault_sample=sample,
        )


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", circuits=("b11", "b12"),
        atpg_sample_small=2500, atpg_sample_large=2500,
        large_gate_threshold=2000,
        atpg_block_width=128, atpg_max_blocks=8, atpg_podem_limit=300,
        estimator_budget=1500,
    ),
    "default": ExperimentScale(
        name="default", circuits=("b11", "b12", "b20", "b21", "b22"),
        atpg_sample_small=None, atpg_sample_large=5000,
        large_gate_threshold=3000,
        atpg_block_width=128, atpg_max_blocks=12, atpg_podem_limit=800,
        estimator_budget=4000,
    ),
    "full": ExperimentScale(
        name="full", circuits=("b11", "b12", "b18", "b20", "b21", "b22"),
        atpg_sample_small=None, atpg_sample_large=12000,
        large_gate_threshold=12000,
        atpg_block_width=192, atpg_max_blocks=20, atpg_podem_limit=2000,
        estimator_budget=6000,
    ),
}


def resolve_scale(name: Optional[str] = None) -> ExperimentScale:
    """Pick the scale: explicit name > $REPRO_SCALE > 'default'."""
    chosen = name or os.environ.get("REPRO_SCALE", "default")
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        chosen = "full"
    try:
        return SCALES[chosen]
    except KeyError:
        raise ConfigError(
            f"unknown scale {chosen!r}; expected one of {sorted(SCALES)}"
        ) from None


@dataclass
class PreparedDie:
    """One die, fully prepared and timed, shared across experiments."""

    profile: DieProfile
    #: problem under the unconstrained clock (area scenario)
    problem_area: WcmProblem
    #: problem re-timed under the tight clock
    problem_tight: WcmProblem
    tight_clock: ClockConstraint

    @property
    def name(self) -> str:
        return self.profile.name

    def problem_for(self, scenario: Scenario) -> WcmProblem:
        return self.problem_tight if scenario.is_timed else self.problem_area

    def scenarios(self) -> Tuple[Scenario, Scenario]:
        """(area, tight) scenario pair for this die."""
        return (Scenario.area_optimized(),
                Scenario.performance_optimized(self.tight_clock.period_ps))


_PREPARED: Dict[Tuple[str, int, int], PreparedDie] = {}


def prepare_die(circuit: str, die_index: int, seed: int = DEFAULT_SEED
                ) -> PreparedDie:
    """Generate, stitch, place and time one die (cached per process)."""
    key = (circuit, die_index, seed)
    cached = _PREPARED.get(key)
    if cached is not None:
        return cached
    profile = die_profile(circuit, die_index)
    netlist = generate_die(profile, seed=seed)
    problem_area = build_problem(netlist)
    clock = tight_clock_for(problem_area)
    prepared = PreparedDie(
        profile=profile,
        problem_area=problem_area,
        problem_tight=problem_area.retime(clock),
        tight_clock=clock,
    )
    _PREPARED[key] = prepared
    return prepared


def dies_for_scale(scale: ExperimentScale,
                   circuits: Optional[Tuple[str, ...]] = None
                   ) -> List[Tuple[str, int]]:
    """(circuit, die) pairs covered at this scale."""
    wanted = circuits or scale.circuits
    return [(p.circuit, p.die_index) for p in all_die_profiles()
            if p.circuit in wanted and p.circuit in scale.circuits]


def scale_banner(scale: ExperimentScale, extra: str = "") -> str:
    note = (f"[scale={scale.name}: circuits {', '.join(scale.circuits)}"
            f"{'; ' + extra if extra else ''}]")
    if scale.name != "full":
        note += " — set REPRO_SCALE=full for the complete sweep"
    return note


# ---------------------------------------------------------------------------
# Method-run cache (per process) so tables III/IV/V share flow results.
# ---------------------------------------------------------------------------
from repro.core.flow import (  # noqa: E402
    TestabilityReport,
    WcmRunResult,
    measure_testability,
    run_wcm_flow,
)
from repro.netlist.core import PortKind  # noqa: E402
from repro.runtime.cache import (  # noqa: E402
    WcmSummary,
    active_cache,
    atpg_cache_key,
    atpg_result_from_payload,
    atpg_result_to_payload,
    wcm_cache_key,
)

_RUNS: Dict[tuple, "WcmRunResult"] = {}


def method_config(method: str, scenario: Scenario,
                  scale: ExperimentScale, **overrides) -> WcmConfig:
    """Build the WcmConfig for 'ours' or 'agrawal' at this scale."""
    if method == "ours":
        return WcmConfig.ours(scenario,
                              estimator_budget=scale.estimator_budget,
                              **overrides)
    if method == "agrawal":
        return WcmConfig.agrawal(scenario, **overrides)
    raise ConfigError(f"unknown method {method!r}")


def run_method(prepared: PreparedDie, config: WcmConfig,
               order_override: Optional[tuple] = None) -> "WcmRunResult":
    """Run (and cache) one method/scenario on one prepared die."""
    key = (prepared.name, config.method, config.scenario.name,
           config.allow_overlap, config.order_by_set_size, order_override)
    cached = _RUNS.get(key)
    if cached is not None:
        return cached
    problem = prepared.problem_for(config.scenario)
    result = run_wcm_flow(problem, config, order_override=order_override)
    _RUNS[key] = result
    return result


#: explicit orders for the Table I study
ORDER_INBOUND_FIRST = (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND)
ORDER_OUTBOUND_FIRST = (PortKind.TSV_OUTBOUND, PortKind.TSV_INBOUND)


# ---------------------------------------------------------------------------
# Cacheable experiment cells (repro.runtime integration)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MethodSpec:
    """One experiment cell's method/scenario coordinates.

    This is the *cache identity* of a WCM run: everything that selects
    the computation without requiring the die to be prepared first
    (the realized :class:`WcmConfig` embeds the tight-clock period,
    which costs a full die preparation to discover — but the period is
    itself a pure function of (profile, seed), already in the key).
    """

    method: str                  # "ours" | "agrawal"
    scenario: str                # "area" | "tight"
    no_overlap: bool = False     # Table V / Figure 7 ablation
    #: TSV-set processing order override (Table I), as PortKind values
    order: Optional[Tuple[str, ...]] = None

    def realize(self, prepared: PreparedDie, scale: ExperimentScale
                ) -> WcmConfig:
        """Build the concrete config for this spec on a prepared die."""
        area, tight = prepared.scenarios()
        scenario = area if self.scenario == "area" else tight
        config = method_config(self.method, scenario, scale)
        if self.no_overlap:
            config = config.without_overlap()
        return config

    @property
    def order_override(self) -> Optional[Tuple[PortKind, ...]]:
        if self.order is None:
            return None
        return tuple(PortKind(value) for value in self.order)


def _load_cached(cache, key: str, decode):
    """Decode one cache payload; quarantine entries whose JSON parses
    but whose shape no longer matches (truncated rewrite, stale schema
    survivor) instead of raising out of the sweep."""
    payload = cache.get(key)
    if payload is None:
        return None
    try:
        return decode(payload)
    except (KeyError, ValueError, TypeError):
        cache.quarantine(key)
        return None


def run_cell(circuit: str, die_index: int, seed: int,
             scale: ExperimentScale, spec: MethodSpec,
             with_atpg: bool = False, include_transition: bool = True
             ) -> Tuple[WcmSummary, Optional[TestabilityReport]]:
    """Run (or fetch from cache) one experiment cell.

    Returns the WCM flow summary and, when *with_atpg* is set, the
    testability report of the wrapped die. On a warm cache every
    product is served from disk and neither the die preparation nor
    the flow nor ATPG runs at all.
    """
    with trace.span("die", circuit=circuit, die=die_index,
                    method=spec.method, scenario=spec.scenario,
                    atpg=bool(with_atpg)):
        return _run_cell_inner(circuit, die_index, seed, scale, spec,
                               with_atpg, include_transition)


def _run_cell_inner(circuit: str, die_index: int, seed: int,
                    scale: ExperimentScale, spec: MethodSpec,
                    with_atpg: bool, include_transition: bool
                    ) -> Tuple[WcmSummary, Optional[TestabilityReport]]:
    profile = die_profile(circuit, die_index)
    cache = active_cache()

    summary: Optional[WcmSummary] = None
    report: Optional[TestabilityReport] = None
    atpg_config = (scale.atpg_config(profile.gates, seed=seed)
                   if with_atpg else None)
    models = (("stuck_at", "transition") if include_transition
              else ("stuck_at",)) if with_atpg else ()

    if cache is not None:
        key = wcm_cache_key(profile, seed, spec, scale.estimator_budget)
        summary = _load_cached(cache, key, WcmSummary.from_payload)
        if with_atpg:
            results = {}
            for model in models:
                atpg_key = atpg_cache_key(profile, seed, spec,
                                          scale.estimator_budget,
                                          atpg_config, model)
                result = _load_cached(cache, atpg_key,
                                      atpg_result_from_payload)
                if result is None:
                    results = None
                    break
                results[model] = result
            if results is not None:
                report = TestabilityReport(
                    stuck_at=results["stuck_at"],
                    transition=results.get("transition"))

    if summary is not None and (not with_atpg or report is not None):
        return summary, report

    # ---- cache miss: compute (run_method memoizes per process) -------
    prepared = prepare_die(circuit, die_index, seed=seed)
    config = spec.realize(prepared, scale)
    run = run_method(prepared, config, order_override=spec.order_override)
    summary = WcmSummary.from_run(run)
    if cache is not None:
        cache.put(wcm_cache_key(profile, seed, spec,
                                scale.estimator_budget),
                  summary.to_payload())
    if with_atpg and report is None:
        report = measure_testability(run, atpg_config,
                                     include_transition=include_transition)
        if cache is not None:
            produced = {"stuck_at": report.stuck_at,
                        "transition": report.transition}
            for model in models:
                result = produced[model]
                if result is None:
                    continue
                cache.put(atpg_cache_key(profile, seed, spec,
                                         scale.estimator_budget,
                                         atpg_config, model),
                          atpg_result_to_payload(result))
    return summary, report


# ---------------------------------------------------------------------------
# Supervised sweeps (failure threading shared by every table driver)
# ---------------------------------------------------------------------------
from repro.runtime.supervisor import supervised_map  # noqa: E402


def sweep_cells(fn, keys, cells, jobs: Optional[int], seed: int,
                label: str) -> Tuple[Dict, Dict[object, str]]:
    """Run one driver's cells under supervision, keyed by *keys*.

    Returns ``(ok, failed)``: per-key results for cells that survived,
    and per-key failure descriptions for cells that crashed, raised or
    timed out (retry, strictness, timeout and checkpointing follow the
    runtime config unless the caller passes an explicit policy through
    ``supervised_map`` itself).
    """
    sweep = supervised_map(fn, cells, jobs=jobs, seed=seed, label=label)
    ok: Dict = {}
    failed: Dict[object, str] = {}
    for key, outcome in zip(keys, sweep.outcomes):
        if outcome.ok:
            ok[key] = outcome.result
        else:
            failed[key] = outcome.describe()
    return ok, failed


def traced_experiment(table: str) -> Callable:
    """Wrap a ``run_*`` driver in an ``experiment`` span.

    Under an active tracer the driver's whole execution becomes one
    span (child spans: sweeps, dies, phases), so ``repro trace show``
    can attribute every event to the table that produced it. With
    tracing off this costs a single global read per driver call.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace.span("experiment", kind="experiment", table=table):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def result_fingerprint(result) -> str:
    """Content fingerprint of a driver result via its rendered table —
    the render is the reproduction artifact, so two runs that agree on
    it agree on everything the paper comparison cares about."""
    return fingerprint(result.render())


def driver_manifest(name: str, result, scale: ExperimentScale,
                    seed: int) -> Dict[str, object]:
    """Manifest payload for one finished driver run (tracer must be
    active — metrics and span timings come from it)."""
    tracer = trace.active()
    return trace.build_manifest(
        name,
        config={"label": name, "scale": scale.name, "seed": seed},
        seed=seed,
        scale=scale.name,
        result_fingerprint=result_fingerprint(result),
        metrics=tracer.metrics if tracer is not None else None,
        timings=tracer.bench_timings() if tracer is not None else None,
    )


def die_label(key) -> str:
    """Human name of a sweep key: ('b11', 2) -> 'b11_d2'."""
    if isinstance(key, tuple) and len(key) == 2:
        return f"{key[0]}_d{key[1]}"
    return str(key)


def render_failures(failures: Dict[object, str],
                    label=die_label) -> str:
    """The failure footer every table renders when cells were lost."""
    if not failures:
        return ""
    lines = [f"!! {len(failures)} cell(s) FAILED — excluded from the "
             f"table and its averages; rerun (or resume from the "
             f"checkpoint) to recompute:"]
    for key in sorted(failures, key=str):
        lines.append(f"!!   {label(key)}: {failures[key]}")
    return "\n".join(lines)
