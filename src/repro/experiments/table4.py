"""Table IV — fault coverage and pattern counts (tight timing).

Runs stuck-at and transition ATPG on the wrapped die produced by each
method under the performance-optimized scenario. The paper's takeaway
to preserve: the proposed method's testability is *competitive* —
essentially equal coverage, no systematic pattern inflation — despite
reusing FFs with overlapped cones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.experiments.paper_data import TABLE4_PAPER_AVERAGE
from repro.util.tables import AsciiTable, format_pair


@dataclass
class Table4Cell:
    stuck_at: Tuple[float, int]  # (coverage, #patterns)
    transition: Tuple[float, int]


@dataclass
class Table4Result:
    scale_name: str
    #: (circuit, die) -> method -> cell
    cells: Dict[Tuple[str, int], Dict[str, Table4Cell]] = field(
        default_factory=dict)
    #: (circuit, die) -> failure description, for cells that didn't survive
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def average(self, method: str, model: str) -> Tuple[float, float]:
        pairs = [getattr(row[method], model) for row in self.cells.values()]
        count = max(1, len(pairs))
        return (sum(p[0] for p in pairs) / count,
                sum(p[1] for p in pairs) / count)

    def render(self) -> str:
        table = AsciiTable(
            ["die", "Agrawal stuck-at", "Agrawal transition",
             "Ours stuck-at", "Ours transition"],
            title=("Table IV — (fault coverage, #patterns), "
                   "tight timing"),
        )
        for (circuit, die), row in sorted(self.cells.items()):
            table.add_row([
                f"{circuit}_d{die}",
                format_pair(*row["agrawal"].stuck_at),
                format_pair(*row["agrawal"].transition),
                format_pair(*row["ours"].stuck_at),
                format_pair(*row["ours"].transition),
            ])
        table.add_separator()
        cells = []
        for method in ("agrawal", "ours"):
            for model in ("stuck_at", "transition"):
                cov, pat = self.average(method, model)
                cells.append(format_pair(cov, round(pat, 1)))
        table.add_row(["Average"] + cells)
        lines = [table.render(), ""]
        paper = TABLE4_PAPER_AVERAGE
        lines.append(
            "Paper averages: Agrawal SA "
            f"({paper['agrawal']['stuck_at'][0]}%, "
            f"{paper['agrawal']['stuck_at'][1]}), TF "
            f"({paper['agrawal']['transition'][0]}%, "
            f"{paper['agrawal']['transition'][1]}); Ours SA "
            f"({paper['ours']['stuck_at'][0]}%, "
            f"{paper['ours']['stuck_at'][1]}), TF "
            f"({paper['ours']['transition'][0]}%, "
            f"{paper['ours']['transition'][1]})"
        )
        if self.failures:
            lines += ["", render_failures(self.failures)]
        return "\n".join(lines)


def _die_cell(args: Tuple[str, int, int, ExperimentScale]
              ) -> Dict[str, Table4Cell]:
    """Both methods' ATPG measurements for one die (worker process)."""
    circuit, die_index, seed, scale = args
    row: Dict[str, Table4Cell] = {}
    for method in ("agrawal", "ours"):
        _summary, report = run_cell(circuit, die_index, seed, scale,
                                    MethodSpec(method, "tight"),
                                    with_atpg=True)
        row[method] = Table4Cell(
            stuck_at=(report.stuck_at.coverage,
                      report.stuck_at.pattern_count),
            transition=(report.transition.coverage,
                        report.transition.pattern_count),
        )
    return row


@traced_experiment("table4")
def run_table4(scale: Optional[ExperimentScale] = None,
               seed: int = DEFAULT_SEED, verbose: bool = False,
               jobs: Optional[int] = None) -> Table4Result:
    scale = scale or resolve_scale()
    result = Table4Result(scale_name=scale.name)
    dies = dies_for_scale(scale)
    rows, result.failures = sweep_cells(
        _die_cell, dies,
        [(circuit, die, seed, scale) for circuit, die in dies],
        jobs=jobs, seed=seed, label="table4")
    for (circuit, die_index), row in rows.items():
        result.cells[(circuit, die_index)] = row
        if verbose:
            print(f"  {circuit}_die{die_index}: "
                  f"agrawal SA {row['agrawal'].stuck_at[0]:.3f}, "
                  f"ours SA {row['ours'].stuck_at[0]:.3f}")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
