"""Table III — reused scan FFs / additional wrapper cells, both methods
under both scenarios, with the timing-violation verdicts.

The headline reproduction targets (paper values in
:data:`repro.experiments.paper_data.TABLE3_PAPER_SUMMARY`):

* ours inserts fewer additional wrapper cells than [4] in the area
  scenario,
* under tight timing [4] violates on most dies while ours violates on
  none, at a modest extra-cell cost relative to its own area run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.experiments.paper_data import TABLE3_PAPER_SUMMARY
from repro.util.tables import AsciiTable

_CONFIG_KEYS = ("agrawal_area", "ours_area", "agrawal_tight", "ours_tight")


@dataclass
class Table3Cell:
    reused: int
    additional: int
    violation: bool


@dataclass
class Table3Result:
    scale_name: str
    #: (circuit, die) -> config key -> cell
    cells: Dict[Tuple[str, int], Dict[str, Table3Cell]] = field(
        default_factory=dict)
    #: (circuit, die) -> failure description, for cells that didn't survive
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    # -- aggregates ------------------------------------------------------
    def average(self, key: str, attr: str) -> float:
        values = [getattr(c[key], attr) for c in self.cells.values()]
        return sum(values) / max(1, len(values))

    def violation_tally(self, key: str) -> Tuple[int, int]:
        flags = [c[key].violation for c in self.cells.values()]
        return sum(flags), len(flags)

    def relative_to_baseline(self, key: str, attr: str) -> float:
        """Percentage vs. the Agrawal area baseline (the paper's 100%)."""
        base = self.average("agrawal_area", attr)
        return 100.0 * self.average(key, attr) / base if base else 0.0

    def render(self) -> str:
        table = AsciiTable(
            ["die",
             "A/area r", "A/area a",
             "O/area r", "O/area a",
             "A/tight r", "A/tight a", "A viol",
             "O/tight r", "O/tight a", "O viol"],
            title=("Table III — #reused scan FFs (r) / #additional "
                   "wrapper cells (a)"),
        )
        for (circuit, die), row in sorted(self.cells.items()):
            table.add_row([
                f"{circuit}_d{die}",
                row["agrawal_area"].reused, row["agrawal_area"].additional,
                row["ours_area"].reused, row["ours_area"].additional,
                row["agrawal_tight"].reused, row["agrawal_tight"].additional,
                "X" if row["agrawal_tight"].violation else "",
                row["ours_tight"].reused, row["ours_tight"].additional,
                "X" if row["ours_tight"].violation else "",
            ])
        table.add_separator()
        a_viol = self.violation_tally("agrawal_tight")
        o_viol = self.violation_tally("ours_tight")
        table.add_row([
            "Average",
            f"{self.average('agrawal_area', 'reused'):.2f}",
            f"{self.average('agrawal_area', 'additional'):.2f}",
            f"{self.average('ours_area', 'reused'):.2f}",
            f"{self.average('ours_area', 'additional'):.2f}",
            f"{self.average('agrawal_tight', 'reused'):.2f}",
            f"{self.average('agrawal_tight', 'additional'):.2f}",
            f"{a_viol[0]}/{a_viol[1]}",
            f"{self.average('ours_tight', 'reused'):.2f}",
            f"{self.average('ours_tight', 'additional'):.2f}",
            f"{o_viol[0]}/{o_viol[1]}",
        ])
        lines = [table.render(), ""]
        lines.append("Relative to Agrawal/area = 100%:")
        for key in _CONFIG_KEYS:
            lines.append(
                f"  {key:14s} reused {self.relative_to_baseline(key, 'reused'):6.2f}%"
                f"  additional {self.relative_to_baseline(key, 'additional'):6.2f}%"
            )
        lines.append("")
        lines.append("Paper averages (all 24 dies): "
                     + "; ".join(
                         f"{k}: reused {v['reused']}, additional "
                         f"{v['additional']}"
                         + (f", violations {v['violations']}"
                            if v["violations"] else "")
                         for k, v in TABLE3_PAPER_SUMMARY.items()))
        if self.failures:
            lines += ["", render_failures(self.failures)]
        return "\n".join(lines)


#: the four configurations of one Table III row
_SPECS: Tuple[Tuple[str, MethodSpec], ...] = (
    ("agrawal_area", MethodSpec("agrawal", "area")),
    ("ours_area", MethodSpec("ours", "area")),
    ("agrawal_tight", MethodSpec("agrawal", "tight")),
    ("ours_tight", MethodSpec("ours", "tight")),
)


def _die_cell(args: Tuple[str, int, int, ExperimentScale]
              ) -> Dict[str, Table3Cell]:
    """One die's four-configuration row (runs in a worker process)."""
    circuit, die_index, seed, scale = args
    row: Dict[str, Table3Cell] = {}
    for key, spec in _SPECS:
        summary, _report = run_cell(circuit, die_index, seed, scale, spec)
        row[key] = Table3Cell(
            reused=summary.reused,
            additional=summary.additional,
            violation=summary.violation and spec.scenario == "tight",
        )
    return row


@traced_experiment("table3")
def run_table3(scale: Optional[ExperimentScale] = None,
               seed: int = DEFAULT_SEED, verbose: bool = False,
               jobs: Optional[int] = None) -> Table3Result:
    """Run both methods under both scenarios on every in-scale die."""
    scale = scale or resolve_scale()
    result = Table3Result(scale_name=scale.name)
    dies = dies_for_scale(scale)
    rows, result.failures = sweep_cells(
        _die_cell, dies,
        [(circuit, die, seed, scale) for circuit, die in dies],
        jobs=jobs, seed=seed, label="table3")
    for (circuit, die_index), row in rows.items():
        result.cells[(circuit, die_index)] = row
        if verbose:
            cell = row["ours_tight"]
            print(f"  {circuit}_die{die_index}: ours/tight "
                  f"{cell.reused}/{cell.additional}"
                  f"{' VIOLATION' if cell.violation else ''}")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
