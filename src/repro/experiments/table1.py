"""Table I — does the TSV-set processing order matter?

Runs Agrawal's method on the four b12 dies twice: starting from the
inbound set and from the outbound set. Reports the stuck-at fault
coverage of the wrapped die and the number of additional wrapper
cells, as the paper does. The claim to preserve: starting from the
*larger* set is no worse (it motivated Section IV-A).

The study runs under the tight-timing scenario: ordering matters only
when the per-FF reuse budgets bind (in the unconstrained area scenario
both orders produce identical plans by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    ORDER_INBOUND_FIRST,
    ORDER_OUTBOUND_FIRST,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.experiments.paper_data import TABLE1_PAPER
from repro.util.tables import AsciiTable, format_percent


@dataclass
class Table1Cell:
    coverage: float
    wrapper_cells: int


@dataclass
class Table1Result:
    scale_name: str
    #: die index -> {"inbound"/"outbound": cell}
    rows: Dict[int, Dict[str, Table1Cell]] = field(default_factory=dict)
    #: die index -> failure description, for cells that didn't survive
    failures: Dict[int, str] = field(default_factory=dict)

    def render(self) -> str:
        table = AsciiTable(
            ["die", "#inbound", "#outbound",
             "start inbound: coverage", "#cells",
             "start outbound: coverage", "#cells",
             "paper (in)", "paper (out)"],
            title="Table I — starting TSV set, Agrawal's method on b12",
        )
        from repro.bench.itc99 import die_profile
        for die_index, row in sorted(self.rows.items()):
            profile = die_profile("b12", die_index)
            paper = TABLE1_PAPER[die_index]
            table.add_row([
                f"Die{die_index}", profile.inbound_tsvs,
                profile.outbound_tsvs,
                format_percent(row["inbound"].coverage),
                row["inbound"].wrapper_cells,
                format_percent(row["outbound"].coverage),
                row["outbound"].wrapper_cells,
                f"{paper['inbound'][0]}%/{paper['inbound'][1]}",
                f"{paper['outbound'][0]}%/{paper['outbound'][1]}",
            ])
        rendered = table.render()
        if self.failures:
            rendered += "\n\n" + render_failures(
                self.failures, label=lambda die: f"b12_d{die}")
        return rendered

    def larger_set_no_worse(self) -> bool:
        """The paper's takeaway: start from the larger set."""
        from repro.bench.itc99 import die_profile
        verdicts = []
        for die_index, row in self.rows.items():
            profile = die_profile("b12", die_index)
            larger = ("outbound" if profile.outbound_tsvs
                      >= profile.inbound_tsvs else "inbound")
            smaller = "inbound" if larger == "outbound" else "outbound"
            verdicts.append(
                row[larger].wrapper_cells <= row[smaller].wrapper_cells
                or row[larger].coverage >= row[smaller].coverage
            )
        return sum(verdicts) >= (len(verdicts) + 1) // 2


def _die_cell(args: Tuple[int, int, ExperimentScale]
              ) -> Dict[str, Table1Cell]:
    """Both processing orders on one b12 die (worker process)."""
    die_index, seed, scale = args
    row: Dict[str, Table1Cell] = {}
    for label, order in (("inbound", ORDER_INBOUND_FIRST),
                         ("outbound", ORDER_OUTBOUND_FIRST)):
        spec = MethodSpec("agrawal", "tight",
                          order=tuple(kind.value for kind in order))
        summary, report = run_cell("b12", die_index, seed, scale, spec,
                                   with_atpg=True,
                                   include_transition=False)
        row[label] = Table1Cell(
            coverage=report.stuck_at.coverage,
            wrapper_cells=summary.additional,
        )
    return row


@traced_experiment("table1")
def run_table1(scale: Optional[ExperimentScale] = None,
               seed: int = DEFAULT_SEED, verbose: bool = False,
               jobs: Optional[int] = None) -> Table1Result:
    scale = scale or resolve_scale()
    result = Table1Result(scale_name=scale.name)
    rows, result.failures = sweep_cells(
        _die_cell, range(4),
        [(die_index, seed, scale) for die_index in range(4)],
        jobs=jobs, seed=seed, label="table1")
    for die_index, row in rows.items():
        result.rows[die_index] = row
        if verbose:
            print(f"  b12_die{die_index}: inbound-first "
                  f"{row['inbound'].wrapper_cells} cells, outbound-first "
                  f"{row['outbound'].wrapper_cells} cells")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
