"""The paper's reported numbers, transcribed for comparison.

Only the values a reproduction compares against are kept: the Table III
reuse/additional counts and violation tallies, the Table IV averages,
Table V averages, Table I (the b12 ordering study), and Fig. 7's mean
edge increase. Everything here is *data from the paper*, never used by
the algorithms.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Table I — ordering study on b12 (Agrawal's method, area scenario):
# (fault coverage %, #wrapper cells) per die, per starting set.
TABLE1_PAPER: Dict[int, Dict[str, Tuple[float, int]]] = {
    0: {"inbound": (99.14, 26), "outbound": (99.34, 23)},
    1: {"inbound": (98.80, 23), "outbound": (98.90, 23)},
    2: {"inbound": (99.11, 0), "outbound": (99.43, 0)},
    3: {"inbound": (99.93, 7), "outbound": (99.89, 9)},
}

# ---------------------------------------------------------------------------
# Table III — (reused scan FFs, additional wrapper cells) per method.
# Key: (circuit, die) -> {method_scenario: (reused, additional)}.
TABLE3_PAPER: Dict[Tuple[str, int], Dict[str, Tuple[int, int]]] = {
    ("b11", 0): {"agrawal_area": (7, 2), "ours_area": (8, 1),
                 "agrawal_tight": (6, 3), "ours_tight": (8, 2)},
    ("b11", 1): {"agrawal_area": (16, 1), "ours_area": (17, 0),
                 "agrawal_tight": (16, 2), "ours_tight": (17, 0)},
    ("b11", 2): {"agrawal_area": (14, 0), "ours_area": (14, 0),
                 "agrawal_tight": (13, 1), "ours_tight": (14, 0)},
    ("b11", 3): {"agrawal_area": (11, 0), "ours_area": (11, 0),
                 "agrawal_tight": (10, 2), "ours_tight": (10, 1)},
    ("b12", 0): {"agrawal_area": (16, 3), "ours_area": (17, 2),
                 "agrawal_tight": (15, 4), "ours_tight": (16, 3)},
    ("b12", 1): {"agrawal_area": (31, 0), "ours_area": (31, 0),
                 "agrawal_tight": (30, 0), "ours_tight": (31, 0)},
    ("b12", 2): {"agrawal_area": (24, 4), "ours_area": (26, 1),
                 "agrawal_tight": (24, 5), "ours_tight": (24, 2)},
    ("b12", 3): {"agrawal_area": (4, 1), "ours_area": (4, 1),
                 "agrawal_tight": (3, 2), "ours_tight": (3, 2)},
    ("b18", 0): {"agrawal_area": (275, 125), "ours_area": (275, 125),
                 "agrawal_tight": (265, 140), "ours_tight": (262, 142)},
    ("b18", 1): {"agrawal_area": (801, 146), "ours_area": (835, 119),
                 "agrawal_tight": (782, 159), "ours_tight": (825, 125)},
    ("b18", 2): {"agrawal_area": (709, 4), "ours_area": (712, 0),
                 "agrawal_tight": (702, 8), "ours_tight": (708, 5)},
    ("b18", 3): {"agrawal_area": (328, 64), "ours_area": (330, 61),
                 "agrawal_tight": (320, 77), "ours_tight": (326, 70)},
    ("b20", 0): {"agrawal_area": (115, 130), "ours_area": (128, 110),
                 "agrawal_tight": (110, 139), "ours_tight": (122, 112)},
    ("b20", 1): {"agrawal_area": (82, 139), "ours_area": (92, 135),
                 "agrawal_tight": (75, 141), "ours_tight": (90, 131)},
    ("b20", 2): {"agrawal_area": (115, 131), "ours_area": (120, 135),
                 "agrawal_tight": (100, 156), "ours_tight": (118, 142)},
    ("b20", 3): {"agrawal_area": (110, 5), "ours_area": (110, 5),
                 "agrawal_tight": (108, 7), "ours_tight": (106, 9)},
    ("b21", 0): {"agrawal_area": (159, 75), "ours_area": (165, 69),
                 "agrawal_tight": (151, 83), "ours_tight": (160, 75)},
    ("b21", 1): {"agrawal_area": (144, 196), "ours_area": (142, 200),
                 "agrawal_tight": (138, 210), "ours_tight": (140, 203)},
    ("b21", 2): {"agrawal_area": (104, 160), "ours_area": (105, 158),
                 "agrawal_tight": (104, 160), "ours_tight": (85, 180)},
    ("b21", 3): {"agrawal_area": (97, 60), "ours_area": (97, 60),
                 "agrawal_tight": (96, 61), "ours_tight": (96, 61)},
    ("b22", 0): {"agrawal_area": (168, 170), "ours_area": (166, 175),
                 "agrawal_tight": (166, 172), "ours_tight": (164, 179)},
    ("b22", 1): {"agrawal_area": (159, 231), "ours_area": (205, 190),
                 "agrawal_tight": (14, 252), "ours_tight": (200, 194)},
    ("b22", 2): {"agrawal_area": (172, 175), "ours_area": (182, 158),
                 "agrawal_tight": (164, 184), "ours_tight": (175, 161)},
    ("b22", 3): {"agrawal_area": (100, 125), "ours_area": (100, 125),
                 "agrawal_tight": (98, 131), "ours_tight": (98, 130)},
}

#: Table III summary rows: average counts and violation tallies.
TABLE3_PAPER_SUMMARY = {
    "agrawal_area": {"reused": 156.71, "additional": 81.13,
                     "violations": None},
    "ours_area": {"reused": 162.17, "additional": 76.25, "violations": None},
    "agrawal_tight": {"reused": 146.25, "additional": 87.46,
                      "violations": "20/24"},
    "ours_tight": {"reused": 158.25, "additional": 80.38,
                   "violations": "0/24"},
}

# ---------------------------------------------------------------------------
# Table IV — averages of (stuck-at coverage %, patterns) and
# (transition coverage %, patterns) under tight timing.
TABLE4_PAPER_AVERAGE = {
    "agrawal": {"stuck_at": (99.64, 844.21), "transition": (99.29, 1640.54)},
    "ours": {"stuck_at": (99.64, 839.50), "transition": (99.29, 1638.04)},
}

# ---------------------------------------------------------------------------
# Table V — with/without overlapped cones (b20-b22, tight timing).
TABLE5_PAPER_AVERAGE = {
    "no_overlap": {"reused": 129.50, "additional": 132.08,
                   "stuck_at": (99.74, 1052.42), "transition": (99.15, 1941.67)},
    "overlap": {"reused": 130.67, "additional": 129.42,
                "stuck_at": (99.51, 1043.50), "transition": (99.00, 1931.67)},
}

# ---------------------------------------------------------------------------
# Fig. 7 — average edge-count increase from allowing overlapped cones.
FIGURE7_PAPER_MEAN_EDGE_INCREASE_PCT = 2.83
