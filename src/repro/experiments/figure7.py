"""Figure 7 — sharing-graph edge growth from allowing overlapped cones.

For each die (tight timing, as in the paper's Section V-C), builds the
proposed method's graph with and without the overlapped-cone FF-reuse
relaxation and reports the edge-count increase. The paper's average is
+2.83 %; the reproduction target is a positive, single-digit-percent
expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.experiments.paper_data import FIGURE7_PAPER_MEAN_EDGE_INCREASE_PCT
from repro.util.tables import AsciiTable


@dataclass
class Figure7Row:
    edges_without: int
    edges_with: int
    overlap_edges: int

    @property
    def increase_pct(self) -> float:
        if self.edges_without == 0:
            return 0.0
        return 100.0 * (self.edges_with - self.edges_without) \
            / self.edges_without


@dataclass
class Figure7Result:
    scale_name: str
    rows: Dict[Tuple[str, int], Figure7Row] = field(default_factory=dict)
    #: (circuit, die) -> failure description, for cells that didn't survive
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    @property
    def mean_increase_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.increase_pct for r in self.rows.values()) \
            / len(self.rows)

    def render(self) -> str:
        table = AsciiTable(
            ["die", "edges (no overlap)", "edges (overlap)",
             "overlap edges", "increase"],
            title="Figure 7 — solution-space expansion",
        )
        for (circuit, die), row in sorted(self.rows.items()):
            table.add_row([
                f"{circuit}_d{die}", row.edges_without, row.edges_with,
                row.overlap_edges, f"{row.increase_pct:+.2f}%",
            ])
        table.add_separator()
        table.add_row(["Average", "", "", "",
                       f"{self.mean_increase_pct:+.2f}%"])
        rendered = (table.render()
                    + f"\nPaper mean increase: "
                      f"+{FIGURE7_PAPER_MEAN_EDGE_INCREASE_PCT}%")
        if self.failures:
            rendered += "\n\n" + render_failures(self.failures)
        return rendered


def _die_cell(args: Tuple[str, int, int, ExperimentScale]) -> Figure7Row:
    """Edge counts with/without overlap for one die (worker process)."""
    circuit, die_index, seed, scale = args
    with_overlap, _ = run_cell(circuit, die_index, seed, scale,
                               MethodSpec("ours", "tight"))
    without, _ = run_cell(circuit, die_index, seed, scale,
                          MethodSpec("ours", "tight", no_overlap=True))
    return Figure7Row(
        edges_without=without.total_graph_edges,
        edges_with=with_overlap.total_graph_edges,
        overlap_edges=with_overlap.overlap_edges,
    )


@traced_experiment("figure7")
def run_figure7(scale: Optional[ExperimentScale] = None,
                seed: int = DEFAULT_SEED, verbose: bool = False,
                jobs: Optional[int] = None) -> Figure7Result:
    scale = scale or resolve_scale()
    result = Figure7Result(scale_name=scale.name)
    dies = dies_for_scale(scale)
    rows, result.failures = sweep_cells(
        _die_cell, dies,
        [(circuit, die, seed, scale) for circuit, die in dies],
        jobs=jobs, seed=seed, label="figure7")
    for (circuit, die_index), row in rows.items():
        result.rows[(circuit, die_index)] = row
        if verbose:
            print(f"  {circuit}_die{die_index}: {row.edges_without} -> "
                  f"{row.edges_with} ({row.increase_pct:+.2f}%)")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
