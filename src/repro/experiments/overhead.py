"""Area-overhead analysis (beyond the paper's cell counts).

The paper argues in cells; silicon argues in um². This driver prices
every method/scenario plan with the cell library's areas
(:mod:`repro.dft.area`) and reports DFT area overhead per die — the
quantity a floorplanner actually pays — alongside the dedicated-cell
baseline [13] the introduction motivates against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dft.area import plan_area_estimate
from repro.dft.wrapper import dedicated_plan
from repro.experiments.common import (
    DEFAULT_SEED,
    ExperimentScale,
    MethodSpec,
    dies_for_scale,
    prepare_die,
    render_failures,
    resolve_scale,
    run_cell,
    scale_banner,
    sweep_cells,
    traced_experiment,
)
from repro.util.tables import AsciiTable, format_percent


@dataclass
class OverheadRow:
    dedicated_overhead: float
    agrawal_overhead: float
    ours_overhead: float

    @property
    def savings_vs_dedicated(self) -> float:
        if self.dedicated_overhead == 0:
            return 0.0
        return 1.0 - self.ours_overhead / self.dedicated_overhead


@dataclass
class OverheadResult:
    scale_name: str
    scenario_name: str
    rows: Dict[Tuple[str, int], OverheadRow] = field(default_factory=dict)
    #: (circuit, die) -> failure description, for cells that didn't survive
    failures: Dict[Tuple[str, int], str] = field(default_factory=dict)

    def average(self, attr: str) -> float:
        values = [getattr(r, attr) for r in self.rows.values()]
        return sum(values) / max(1, len(values))

    def render(self) -> str:
        table = AsciiTable(
            ["die", "dedicated [13]", "Agrawal [4]", "ours",
             "ours vs dedicated"],
            title=(f"DFT area overhead (um² of DFT / um² of logic), "
                   f"{self.scenario_name} scenario"),
        )
        for (circuit, die), row in sorted(self.rows.items()):
            table.add_row([
                f"{circuit}_d{die}",
                format_percent(row.dedicated_overhead),
                format_percent(row.agrawal_overhead),
                format_percent(row.ours_overhead),
                f"-{format_percent(row.savings_vs_dedicated)}",
            ])
        table.add_separator()
        table.add_row([
            "Average",
            format_percent(self.average("dedicated_overhead")),
            format_percent(self.average("agrawal_overhead")),
            format_percent(self.average("ours_overhead")),
            f"-{format_percent(self.average('savings_vs_dedicated'))}",
        ])
        rendered = table.render()
        if self.failures:
            rendered += "\n\n" + render_failures(self.failures)
        return rendered


def _die_cell(args: Tuple[str, int, int, ExperimentScale, str]
              ) -> OverheadRow:
    """Area pricing of all three plans for one die (worker process).

    The um² pricing needs the generated netlist even on a warm cache
    (plans are cached; silicon areas are recomputed from the library),
    so this cell always pays die preparation — it is cheap relative to
    the flows.
    """
    circuit, die_index, seed, scale, scenario_name = args
    agrawal, _ = run_cell(circuit, die_index, seed, scale,
                          MethodSpec("agrawal", scenario_name))
    ours, _ = run_cell(circuit, die_index, seed, scale,
                       MethodSpec("ours", scenario_name))
    prepared = prepare_die(circuit, die_index, seed=seed)
    netlist = prepared.problem_area.netlist
    dedicated = plan_area_estimate(netlist, dedicated_plan(netlist))
    return OverheadRow(
        dedicated_overhead=dedicated.overhead_fraction,
        agrawal_overhead=plan_area_estimate(
            netlist, agrawal.plan).overhead_fraction,
        ours_overhead=plan_area_estimate(
            netlist, ours.plan).overhead_fraction,
    )


@traced_experiment("overhead")
def run_overhead(scale: Optional[ExperimentScale] = None,
                 seed: int = DEFAULT_SEED, scenario_name: str = "area",
                 verbose: bool = False,
                 jobs: Optional[int] = None) -> OverheadResult:
    """Price every in-scale die's plans in um²."""
    scale = scale or resolve_scale()
    result = OverheadResult(scale_name=scale.name,
                            scenario_name=scenario_name)
    dies = dies_for_scale(scale)
    rows, result.failures = sweep_cells(
        _die_cell, dies,
        [(circuit, die, seed, scale, scenario_name)
         for circuit, die in dies],
        jobs=jobs, seed=seed, label="overhead")
    for (circuit, die_index), row in rows.items():
        result.rows[(circuit, die_index)] = row
        if verbose:
            print(f"  {circuit}_die{die_index}: ours "
                  f"{row.ours_overhead:.1%} vs dedicated "
                  f"{row.dedicated_overhead:.1%}")
    if verbose:
        print(scale_banner(scale))
        print(result.render())
    return result
