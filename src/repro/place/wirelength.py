"""Wirelength and distance metrics over a placed netlist."""

from __future__ import annotations

from typing import Tuple

from repro.netlist.core import Netlist


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan distance in um — routing distance on a gridded fabric."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def wire_length_um(netlist: Netlist, name_a: str, name_b: str) -> float:
    """Estimated routed length between two placed objects (um)."""
    return manhattan(netlist.location_of(name_a), netlist.location_of(name_b))


def hpwl_of_net(netlist: Netlist, net_name: str) -> float:
    """Half-perimeter wirelength of one net (um)."""
    net = netlist.net(net_name)
    xs = []
    ys = []
    endpoints = list(net.sinks)
    if net.driver is not None:
        endpoints.append(net.driver)
    for pin in endpoints:
        x, y = netlist.location_of(pin.owner_name)
        xs.append(x)
        ys.append(y)
    if len(xs) < 2:
        return 0.0
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(netlist: Netlist) -> float:
    """Total HPWL over all nets (um) — the placer's quality metric."""
    return sum(hpwl_of_net(netlist, name) for name in netlist.nets)
