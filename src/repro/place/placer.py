"""Force-directed placement with grid legalization and TSV arrays.

Algorithm
---------
1. Die floorplan: side length from total cell area over a target
   utilization; standard cells occupy a uniform site grid.
2. Peripheral ports (primary I/O, clock, scan) are spread along the die
   edges; TSV ports get a dedicated uniform array of TSV sites across
   the die interior, as 3D-IC via-first/middle flows do.
3. Iterative force-directed refinement: each movable object moves to
   the weighted centroid of its net neighbours (ports heavier), damped.
4. Legalization: cells are snapped to distinct grid sites preserving
   spatial order; TSVs snap to distinct TSV-array sites greedily.

The result writes ``x``/``y`` on every instance and port, which is all
downstream consumers (STA wire delay, `distance(n1,n2)` in Algorithm 1)
need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlist.core import Netlist, Port, PortKind
from repro.util.rng import DeterministicRng


@dataclass
class PlacementConfig:
    utilization: float = 0.70
    iterations: int = 12
    #: damping of each force step (0 = frozen, 1 = jump to centroid)
    damping: float = 0.80
    #: weight of port anchors relative to cell neighbours
    port_weight: float = 2.0
    seed: int = 2019


@dataclass
class PlacementResult:
    """Summary of one die placement."""

    die_width_um: float
    die_height_um: float
    sites: int
    tsv_sites: int
    iterations: int


def _peripheral_positions(count: int, width: float, height: float
                          ) -> List[Tuple[float, float]]:
    """Evenly spread *count* points along the die boundary."""
    if count <= 0:
        return []
    perimeter = 2.0 * (width + height)
    positions: List[Tuple[float, float]] = []
    for i in range(count):
        t = (i + 0.5) / count * perimeter
        if t < width:
            positions.append((t, 0.0))
        elif t < width + height:
            positions.append((width, t - width))
        elif t < 2 * width + height:
            positions.append((2 * width + height - t, height))
        else:
            positions.append((0.0, perimeter - t))
    return positions


def _tsv_array(count: int, width: float, height: float
               ) -> List[Tuple[float, float]]:
    """A uniform interior array with at least *count* TSV sites."""
    if count <= 0:
        return []
    cols = max(1, int(math.ceil(math.sqrt(count * width / max(height, 1e-9)))))
    rows = max(1, int(math.ceil(count / cols)))
    sites: List[Tuple[float, float]] = []
    for r in range(rows):
        for c in range(cols):
            x = (c + 0.5) / cols * width
            y = (r + 0.5) / rows * height
            sites.append((x, y))
    return sites


def place_die(netlist: Netlist, config: Optional[PlacementConfig] = None
              ) -> PlacementResult:
    """Place *netlist* in-place; returns a :class:`PlacementResult`."""
    config = config or PlacementConfig()
    rng = DeterministicRng(config.seed).child("place", netlist.name)

    instances = list(netlist.instances.values())
    total_area = sum(inst.cell.area_um2 for inst in instances) or 1.0
    die_area = total_area / config.utilization
    width = height = math.sqrt(die_area)

    # ---- fixed port sites ------------------------------------------------
    peripheral = [p for p in netlist.ports.values() if not p.is_tsv]
    tsvs = [p for p in netlist.ports.values() if p.is_tsv]
    for port, (x, y) in zip(peripheral,
                            _peripheral_positions(len(peripheral), width, height)):
        port.x, port.y = x, y

    tsv_sites = _tsv_array(len(tsvs), width, height)
    # Temporary positions; refined with the force loop, snapped at the end.
    for port, (x, y) in zip(tsvs, tsv_sites):
        port.x, port.y = x, y

    # ---- initial cell positions -------------------------------------------
    for inst in instances:
        inst.x = rng.uniform(0.0, width)
        inst.y = rng.uniform(0.0, height)

    # ---- adjacency (object name -> [(neighbour name, weight)]) -------------
    neighbours: Dict[str, List[Tuple[str, float]]] = {}

    def add_edge(a: str, b: str, weight: float) -> None:
        neighbours.setdefault(a, []).append((b, weight))
        neighbours.setdefault(b, []).append((a, weight))

    for net in netlist.nets.values():
        endpoints: List[Tuple[str, bool]] = []
        if net.driver is not None:
            endpoints.append((net.driver.owner_name, net.driver.is_port))
        for sink in net.sinks:
            endpoints.append((sink.owner_name, sink.is_port))
        if len(endpoints) < 2:
            continue
        # Star model around the driver keeps the graph sparse.
        hub_name, hub_is_port = endpoints[0]
        for name, is_port in endpoints[1:]:
            weight = config.port_weight if (is_port or hub_is_port) else 1.0
            add_edge(hub_name, name, weight)

    positions: Dict[str, Tuple[float, float]] = {}
    movable: Dict[str, bool] = {}
    for inst in instances:
        positions[inst.name] = (inst.x, inst.y)
        movable[inst.name] = True
    for port in netlist.ports.values():
        positions[port.name] = (port.x, port.y)
        movable[port.name] = port.is_tsv  # TSVs float until snapped

    # ---- force-directed refinement -----------------------------------------
    for _iteration in range(config.iterations):
        updates: Dict[str, Tuple[float, float]] = {}
        for name, is_movable in movable.items():
            if not is_movable:
                continue
            edges = neighbours.get(name)
            if not edges:
                continue
            sx = sy = sw = 0.0
            for other, weight in edges:
                ox, oy = positions[other]
                sx += weight * ox
                sy += weight * oy
                sw += weight
            cx, cy = sx / sw, sy / sw
            x, y = positions[name]
            nx = x + config.damping * (cx - x)
            ny = y + config.damping * (cy - y)
            updates[name] = (min(max(nx, 0.0), width), min(max(ny, 0.0), height))
        positions.update(updates)

    # ---- legalize cells onto a uniform site grid -----------------------------
    count = len(instances)
    if count:
        cols = max(1, int(math.ceil(math.sqrt(count))))
        rows = int(math.ceil(count / cols))
        # Order cells by placement position (y-major), assign sites in the
        # same order: preserves spatial order, enforces uniform density.
        ordered = sorted(instances,
                         key=lambda i: (positions[i.name][1], positions[i.name][0]))
        for index, inst in enumerate(ordered):
            r, c = divmod(index, cols)
            inst.x = (c + 0.5) / cols * width
            inst.y = (r + 0.5) / rows * height

    # ---- snap TSVs to distinct array sites -----------------------------------
    if len(tsvs) <= 500:
        # Exact greedy nearest-site assignment.
        free_sites = list(tsv_sites)
        for port in tsvs:
            x, y = positions[port.name]
            best_index = min(range(len(free_sites)),
                             key=lambda i: abs(free_sites[i][0] - x)
                             + abs(free_sites[i][1] - y))
            port.x, port.y = free_sites.pop(best_index)
    else:
        # Large arrays: order-preserving assignment (sort both by (y, x)
        # and zip) — O(n log n) and spatially consistent.
        ordered_ports = sorted(tsvs, key=lambda p: (positions[p.name][1],
                                                    positions[p.name][0]))
        ordered_sites = sorted(tsv_sites[:len(tsvs)], key=lambda s: (s[1], s[0]))
        for port, (x, y) in zip(ordered_ports, ordered_sites):
            port.x, port.y = x, y

    return PlacementResult(
        die_width_um=width,
        die_height_um=height,
        sites=count,
        tsv_sites=len(tsv_sites),
        iterations=config.iterations,
    )
