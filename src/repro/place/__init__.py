"""Physical placement substrate.

The WCM timing model needs (x, y) coordinates for scan flip-flops and
TSVs to evaluate ``distance(n1, n2)`` and wire delay. This package
provides a force-directed placer with grid legalization, a TSV-array
placement (3D-ICs distribute TSVs across the die area, not on the
periphery), and wirelength/distance queries — standing in for the
paper's 3D-Craft physical design step.
"""

from repro.place.placer import PlacementConfig, place_die
from repro.place.wirelength import (
    hpwl_of_net,
    manhattan,
    total_hpwl,
    wire_length_um,
)

__all__ = [
    "PlacementConfig",
    "place_die",
    "hpwl_of_net",
    "manhattan",
    "total_hpwl",
    "wire_length_um",
]
