"""Differential and metamorphic checks: kernel vs oracle on one instance.

Each check takes a built :class:`Subject` and returns a list of
human-readable divergence strings (empty = clean). Checks are pure
observers — they never mutate the subject's problem — so one subject
can run the whole registry. The fuzzer treats any non-empty list (or
any exception during build/check) as a failure to shrink.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.atpg.engine import _FaultDispatcher
from repro.atpg.faults import build_fault_list
from repro.atpg.sim import CompiledCircuit
from repro.core.clique import CliquePartition, partition_cliques
from repro.core.config import WcmConfig
from repro.core.graph import WcmGraph, build_wcm_graph
from repro.core.problem import WcmProblem
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.dft.testview import TestView, build_prebond_test_view
from repro.netlist.core import PortKind
from repro.sta.constraints import UNCONSTRAINED
from repro.sta.timer import TimingContext, TimingResult, default_case
from repro.util.rng import DeterministicRng
from repro.verify.instances import InstanceSpec
from repro.verify.oracles import (
    exact_min_clique_partition,
    exhaustive_input_words,
    oracle_build_graph,
    oracle_detect_word,
    oracle_simulate,
    oracle_sta,
    partition_violations,
)

_TSV_KINDS = (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND)

#: inputs at or below this simulate every pattern instead of sampling
EXHAUSTIVE_INPUT_LIMIT = 10
_RANDOM_BLOCK_BITS = 64


class Subject:
    """One built verification instance shared by all checks."""

    def __init__(self, spec: InstanceSpec) -> None:
        self.spec = spec
        self.problem: WcmProblem = spec.build_problem()
        self.config: WcmConfig = spec.build_config(self.problem)
        self.view: TestView = build_prebond_test_view(self.problem.netlist)
        self.circuit = CompiledCircuit(self.view)

    # Fresh collaborators per call: the model memoizes lookups and the
    # estimator is budgeted/stateful, so kernel and oracle sides must
    # each start cold to see identical call sequences.
    def fresh_model(self) -> ReuseTimingModel:
        return ReuseTimingModel(self.problem, self.config)

    def fresh_estimator(self, config: Optional[WcmConfig] = None
                        ) -> Optional[OverlapTestabilityEstimator]:
        config = config or self.config
        if not config.allow_overlap:
            return None
        return OverlapTestabilityEstimator(self.problem, config)

    def kernel_graph(self, kind: PortKind) -> WcmGraph:
        return build_wcm_graph(self.problem, kind,
                               list(self.problem.scan_ffs), self.config,
                               timing_model=self.fresh_model(),
                               estimator=self.fresh_estimator())

    def input_blocks(self) -> tuple:
        """(input_words, mask): exhaustive when small, random otherwise."""
        count = self.circuit.input_count
        if count <= EXHAUSTIVE_INPUT_LIMIT:
            return exhaustive_input_words(count)
        rng = DeterministicRng(self.spec.seed).child("verify", "patterns")
        mask = (1 << _RANDOM_BLOCK_BITS) - 1
        words = [rng.getrandbits(_RANDOM_BLOCK_BITS) for _ in range(count)]
        return words, mask


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------
def _compare_timing(label: str, kernel: TimingResult, oracle: TimingResult
                    ) -> List[str]:
    out: List[str] = []
    for field in ("netlist_name", "constraint", "arrival_ps", "required_ps",
                  "net_load_ff", "endpoints", "port_slack_ps",
                  "critical_path_ps"):
        k = getattr(kernel, field)
        o = getattr(oracle, field)
        if k != o:
            if isinstance(k, dict) and isinstance(o, dict):
                keys = [key for key in set(k) | set(o)
                        if k.get(key) != o.get(key)]
                out.append(f"{label}: {field} differs on {sorted(keys)[:4]} "
                           f"(+{max(0, len(keys) - 4)} more)")
            else:
                out.append(f"{label}: {field} kernel={k!r} oracle={o!r}")
    return out


def _compare_graph(label: str, kernel: WcmGraph, oracle: WcmGraph
                   ) -> List[str]:
    out: List[str] = []
    if kernel.nodes != oracle.nodes:
        out.append(f"{label}: node lists differ "
                   f"({len(kernel.nodes)} vs {len(oracle.nodes)})")
    if kernel.is_ff != oracle.is_ff:
        out.append(f"{label}: is_ff maps differ")
    if kernel.excluded_tsvs != oracle.excluded_tsvs:
        out.append(f"{label}: excluded TSVs kernel={kernel.excluded_tsvs} "
                   f"oracle={oracle.excluded_tsvs}")
    if kernel.adjacency != oracle.adjacency:
        names = [n for n in set(kernel.adjacency) | set(oracle.adjacency)
                 if kernel.adjacency.get(n) != oracle.adjacency.get(n)]
        out.append(f"{label}: adjacency differs at {sorted(names)[:4]} "
                   f"(+{max(0, len(names) - 4)} more)")
    if kernel.stats != oracle.stats:
        out.append(f"{label}: stats kernel={kernel.stats} "
                   f"oracle={oracle.stats}")
    return out


# ---------------------------------------------------------------------------
# Differential checks
# ---------------------------------------------------------------------------
def check_simulation(subject: Subject) -> List[str]:
    """Op-tape simulation vs per-gate reference vs truth-table oracle,
    including the reusable-buffer entry point."""
    out: List[str] = []
    circuit = subject.circuit
    words, mask = subject.input_blocks()

    tape = circuit.simulate(words, mask)
    reference = circuit.simulate_reference(words, mask)
    if tape != reference:
        out.append("sim: tape != per-gate reference interpreter")
    buffer = circuit.make_buffer()
    circuit.simulate([0] * len(words), mask, out=buffer)  # dirty it
    reused = circuit.simulate(words, mask, out=buffer)
    if reused != tape:
        out.append("sim: buffer-reuse simulate differs from fresh")

    oracle = oracle_simulate(subject.view, words, mask)
    for name, word in oracle.items():
        if tape[circuit.net_ids[name]] != word:
            out.append(f"sim: net {name!r} kernel="
                       f"{tape[circuit.net_ids[name]]:#x} oracle={word:#x}")
            if len(out) > 6:
                break
    return out


def check_fault_detection(subject: Subject) -> List[str]:
    """Event-driven fault propagation vs full forced re-simulation for
    the complete collapsed fault universe."""
    out: List[str] = []
    circuit = subject.circuit
    view = subject.view
    words, mask = subject.input_blocks()
    faults = build_fault_list(view)
    dispatcher = _FaultDispatcher(circuit, faults.faults)
    good = circuit.simulate(words, mask)
    oracle_good = oracle_simulate(view, words, mask)
    for index, fault in enumerate(faults.faults):
        kernel = dispatcher.detect_word(circuit, good, index, mask)
        oracle = oracle_detect_word(view, fault, words, mask,
                                    good=oracle_good)
        if kernel != oracle:
            out.append(f"fault {fault.kind.name} sa{int(fault.polarity)} "
                       f"{fault.net!r} (owner={fault.owner!r}): kernel="
                       f"{kernel:#x} oracle={oracle:#x}")
            if len(out) > 6:
                break
    return out


def check_sta(subject: Subject) -> List[str]:
    """Reusable-context STA vs path-enumeration oracle: the problem's
    own baselines (functional + test mode) and an unconstrained run."""
    out: List[str] = []
    problem = subject.problem
    wrapped = problem.dedicated_netlist
    clock = problem.timing.constraint
    out += _compare_timing(
        "sta[functional]", problem.timing,
        oracle_sta(wrapped, clock, case=default_case(wrapped, test_mode=0)))
    out += _compare_timing(
        "sta[test]", problem.test_timing,
        oracle_sta(wrapped, clock, case=default_case(wrapped, test_mode=1)))
    fresh = TimingContext(wrapped).analyze(UNCONSTRAINED)
    out += _compare_timing("sta[unconstrained]", fresh,
                           oracle_sta(wrapped, UNCONSTRAINED))
    return out


def check_sta_reuse(subject: Subject) -> List[str]:
    """Incremental invalidation vs recomputation: move one instance,
    invalidate its nets, and demand the cached context equals a
    from-scratch oracle on the moved netlist."""
    netlist = subject.problem.dedicated_netlist.clone()
    context = TimingContext(netlist)
    context.analyze(UNCONSTRAINED)  # populate caches
    instances = list(netlist.instances.values())
    if not instances:
        return []
    mover = instances[len(instances) // 2]
    mover.x += 13.0
    mover.y += 7.0
    context.invalidate_nets(set(mover.connections.values()))
    kernel = context.analyze(UNCONSTRAINED)
    oracle = oracle_sta(netlist, UNCONSTRAINED)
    return _compare_timing(f"sta[reuse after moving {mover.name}]",
                           kernel, oracle)


def check_graph(subject: Subject) -> List[str]:
    """Grid-indexed sweep vs brute-force kernel path vs O(n^2) oracle,
    for both TSV directions."""
    out: List[str] = []
    problem = subject.problem
    config = subject.config
    ffs = list(problem.scan_ffs)
    for kind in _TSV_KINDS:
        grid = build_wcm_graph(problem, kind, ffs, config,
                               timing_model=subject.fresh_model(),
                               estimator=subject.fresh_estimator(),
                               use_grid=True)
        brute = build_wcm_graph(problem, kind, ffs, config,
                                timing_model=subject.fresh_model(),
                                estimator=subject.fresh_estimator(),
                                use_grid=False)
        oracle = oracle_build_graph(problem, kind, ffs, config,
                                    timing_model=subject.fresh_model(),
                                    estimator=subject.fresh_estimator())
        out += _compare_graph(f"graph[{kind.name}] grid-vs-brute",
                              grid, brute)
        out += _compare_graph(f"graph[{kind.name}] kernel-vs-oracle",
                              grid, oracle)
    return out


def check_clique(subject: Subject) -> List[str]:
    """Partition validity (disjoint clique cover of the graph) plus the
    branch-and-bound lower bound on small instances."""
    out: List[str] = []
    for kind in _TSV_KINDS:
        graph = subject.kernel_graph(kind)
        partition = partition_cliques(graph, subject.fresh_model())
        for violation in partition_violations(graph, partition,
                                              subject.config.max_group_size):
            out.append(f"clique[{kind.name}]: {violation}")
        exact = exact_min_clique_partition(graph)
        if exact is not None and len(partition.cliques) < exact:
            out.append(f"clique[{kind.name}]: heuristic produced "
                       f"{len(partition.cliques)} cliques, below the "
                       f"exact minimum {exact} — cover must be invalid")
    return out


# ---------------------------------------------------------------------------
# Metamorphic checks
# ---------------------------------------------------------------------------
def _transformed_problem(subject: Subject, transform) -> WcmProblem:
    """The subject's problem with geometry transformed and every
    electrical quantity held fixed.

    Re-running the full pipeline on moved coordinates is NOT an
    isometry invariant — the fuzzer proved it: scan stitching orders
    the chain by position, and the chain's scan-out port is a real
    2 fF load on whichever FF comes last, so rotating the die moves
    that load and legitimately shifts the baseline STA. The honest
    invariant transforms only the geometry Algorithm 1 consumes
    (node locations, grid buckets, ``d_th`` span) over the same
    timing database.
    """
    from repro.dft.cones import ConeAnalysis

    clone = subject.problem.netlist.clone()
    for inst in clone.instances.values():
        inst.x, inst.y = transform(inst.x, inst.y)
    for port in clone.ports.values():
        port.x, port.y = transform(port.x, port.y)
    base = subject.problem
    return WcmProblem(
        netlist=clone,
        timing=base.timing,
        test_timing=base.test_timing,
        tsv_mux_out=base.tsv_mux_out,
        cones=ConeAnalysis(clone),
        dedicated_netlist=base.dedicated_netlist,
        dedicated_critical_path_ps=base.dedicated_critical_path_ps,
    )


def check_metamorphic_isometry(subject: Subject) -> List[str]:
    """Rotating or mirroring the die must leave the sharing graph
    identical: both maps preserve every Manhattan distance *exactly*
    in IEEE arithmetic (the coordinate differences are the same two
    floats, negated and/or added in swapped order), so every distance
    threshold, spatial-hash candidate superset and anchor-span term
    decides identically. (Translation is deliberately NOT used:
    ``(x+t)-(y+t)`` rounds.)
    """
    out: List[str] = []
    ffs = list(subject.problem.scan_ffs)
    for label, transform in (("rotate90", lambda x, y: (-y, x)),
                             ("mirror-x", lambda x, y: (-x, y))):
        problem = _transformed_problem(subject, transform)
        config = subject.spec.build_config(problem)
        for kind in _TSV_KINDS:
            base = subject.kernel_graph(kind)
            moved = build_wcm_graph(
                problem, kind, ffs, config,
                timing_model=ReuseTimingModel(problem, config),
                estimator=(OverlapTestabilityEstimator(problem, config)
                           if config.allow_overlap else None))
            out += _compare_graph(f"meta[{label}][{kind.name}]",
                                  base, moved)
    return out


def check_metamorphic_thresholds(subject: Subject) -> List[str]:
    """Loosening ``cov_th``/``p_th`` must never remove an edge: the
    estimates are threshold-independent, only the acceptance test
    moves."""
    out: List[str] = []
    config = subject.config
    loose = dataclasses.replace(config, cov_th=config.cov_th * 4.0,
                                p_th=config.p_th * 4)
    for kind in _TSV_KINDS:
        strict_graph = subject.kernel_graph(kind)
        loose_graph = build_wcm_graph(
            subject.problem, kind, list(subject.problem.scan_ffs), loose,
            timing_model=ReuseTimingModel(subject.problem, loose),
            estimator=subject.fresh_estimator(loose))
        for name, neighbours in strict_graph.adjacency.items():
            missing = neighbours - loose_graph.adjacency.get(name, set())
            if missing:
                out.append(f"meta[thresholds][{kind.name}]: loosening "
                           f"removed edges {name!r} -> {sorted(missing)}")
        if loose_graph.stats.rejected_testability \
                > strict_graph.stats.rejected_testability:
            out.append(f"meta[thresholds][{kind.name}]: looser thresholds "
                       f"rejected more pairs")
    return out


def check_metamorphic_isolated_ff(subject: Subject) -> List[str]:
    """Adding an isolated (edge-less) FF node must not change the TSV
    side of the partition: it can join nothing, so every merge decision
    is preserved and the partition gains exactly one FF-only clique."""
    ffs = list(subject.problem.scan_ffs)
    if len(ffs) < 2:
        return []
    held = ffs[-1]
    out: List[str] = []
    for kind in _TSV_KINDS:
        base = build_wcm_graph(subject.problem, kind, ffs[:-1],
                               subject.config,
                               timing_model=subject.fresh_model(),
                               estimator=subject.fresh_estimator())
        model = subject.fresh_model()
        # Append the held-out FF *after* the TSVs: every existing node
        # keeps its integer id inside Algorithm 2, so any behaviour
        # change is the isolated node's doing.
        augmented = WcmGraph(
            kind=base.kind,
            nodes=base.nodes + [held],
            is_ff={**base.is_ff, held: True},
            adjacency={**base.adjacency, held: set()},
            excluded_tsvs=base.excluded_tsvs,
            stats=base.stats,
        )
        before = partition_cliques(base, subject.fresh_model())
        after = partition_cliques(augmented, model)
        if after.additional_cells != before.additional_cells:
            out.append(f"meta[isolated-ff][{kind.name}]: additional cells "
                       f"{before.additional_cells} -> "
                       f"{after.additional_cells}")
        def tsv_groups(partition: CliquePartition):
            return sorted(tuple(sorted(c.tsvs))
                          for c in partition.cliques if c.tsvs)
        if tsv_groups(before) != tsv_groups(after):
            out.append(f"meta[isolated-ff][{kind.name}]: TSV grouping "
                       f"changed")
        lone = [c for c in after.cliques if c.ff == held]
        if len(lone) != 1 or lone[0].tsvs:
            out.append(f"meta[isolated-ff][{kind.name}]: held-out FF did "
                       f"not end as its own FF-only clique")
    return out


# ---------------------------------------------------------------------------
# ECO sessions: incremental vs cold, plus inverse-edit metamorphics
# ---------------------------------------------------------------------------
#: counter families that legitimately differ between a warm session
#: solve and a cold one (cache hit counts, delta-STA call counts);
#: everything else — clique merges, flow ECO rounds, grid pair splits —
#: must match exactly
_ECO_VOLATILE_COUNTERS = ("sta.", "session.", "sim.", "atpg.",
                          "graph.cone_bitset_builds")


def _eco_netlist_payload(netlist) -> dict:
    """Canonical structural payload of a netlist (now shared with the
    job server as :func:`repro.core.session.netlist_payload`)."""
    from repro.core.session import netlist_payload

    return netlist_payload(netlist)


def _eco_result_fp(result) -> str:
    """Fingerprint of everything a solve produces (the byte-identity
    oracle surface, shared with ``repro.serve`` as
    :func:`repro.core.session.result_fingerprint`)."""
    from repro.core.session import result_fingerprint

    return result_fingerprint(result)


def _eco_solve(runner) -> tuple:
    """Run one solve under a metrics capture; returns
    (result, stable-counter dict, manifest fingerprint)."""
    from repro.runtime import instrument
    from repro.runtime.trace import manifest_fingerprint

    with instrument.collect() as report:
        result = runner()
    counters = {name: value for name, value in sorted(
                    report.counters.items())
                if not name.startswith(_ECO_VOLATILE_COUNTERS)}
    manifest_fp = manifest_fingerprint({
        "schema": "eco", "label": "eco", "config": None,
        "seed": None, "scale": None, "metrics": counters,
        "result_fingerprint": _eco_result_fp(result),
    })
    return result, counters, manifest_fp


def check_eco(subject: Subject) -> List[str]:
    """Incremental :class:`~repro.core.session.WcmSession` solves vs a
    cold ``run_wcm_flow`` oracle over a deterministic edit stream —
    results, stable per-category counters and manifest fingerprints
    must be byte-identical — plus inverse-edit metamorphics: an edit
    followed by its exact inverse (FF move-back, ``d_th`` restore,
    ``AddTsv``/``RemoveTsv``) must reproduce the pre-edit solve."""
    from repro.core.flow import run_wcm_flow
    from repro.core.problem import build_problem
    from repro.core.session import (AddTsv, MoveFf, MoveTsv, RemoveTsv,
                                    SetThreshold, WcmSession)

    out: List[str] = []
    session = WcmSession(subject.problem.netlist.clone(), subject.config,
                         already_prepared=True)
    rng = DeterministicRng(subject.spec.seed).child("verify", "eco")

    def oracle() -> tuple:
        clone = session.netlist.clone()
        config = session.config
        problem = build_problem(clone, clock=config.scenario.clock,
                                already_prepared=True)
        return _eco_solve(lambda: run_wcm_flow(problem, config))

    def step(tag: str) -> tuple:
        got, got_counters, got_manifest = _eco_solve(session.solve)
        want, want_counters, want_manifest = oracle()
        got_fp = _eco_result_fp(got)
        if got_fp != _eco_result_fp(want):
            out.append(f"eco[{tag}]: session result differs from cold "
                       f"solve (fallback={session.last_fallback}, "
                       f"dirty_frac={session.last_dirty_frac:.3f})")
        if got_counters != want_counters:
            keys = [k for k in set(got_counters) | set(want_counters)
                    if got_counters.get(k) != want_counters.get(k)]
            out.append(f"eco[{tag}]: counters differ on {sorted(keys)}")
        if got_manifest != want_manifest:
            out.append(f"eco[{tag}]: manifest fingerprints differ")
        return got_fp, got_manifest

    netlist = session.netlist
    ffs = [inst.name for inst in netlist.scan_flip_flops()]
    tsvs = [p.name for p in netlist.ports.values() if p.is_tsv]
    span = max(max((p.x for p in netlist.ports.values()), default=100.0),
               100.0)

    base = step("base")
    if ffs:
        name = rng.choice(ffs)
        inst = netlist.instances[name]
        home = (inst.x, inst.y)
        session.apply(MoveFf(name, inst.x + span * 0.01 + 1.0,
                             inst.y + span * 0.005))
        step("move-ff")
        session.apply(MoveFf(name, *home))
        if step("move-ff-inverse") != base:
            out.append("eco[move-ff-inverse]: moving the FF back did "
                       "not reproduce the original solve")
    if tsvs:
        name = rng.choice(tsvs)
        port = netlist.ports[name]
        session.apply(MoveTsv(name, port.x + span * 0.3, port.y))
        step("move-tsv")
    checkpoint = step("checkpoint")  # settles any pending state
    old_d_th = session.config.d_th_um
    session.apply(SetThreshold(d_th_um=span * 0.4))
    step("set-d-th")
    session.apply(SetThreshold(d_th_um=old_d_th))
    if step("set-d-th-inverse") != checkpoint:
        out.append("eco[set-d-th-inverse]: restoring d_th did not "
                   "reproduce the pre-edit solve")
    session.apply(AddTsv("eco_check_tsv", PortKind.TSV_INBOUND,
                         rng.uniform(0.0, span), rng.uniform(0.0, span)))
    step("add-tsv")
    session.apply(RemoveTsv("eco_check_tsv"))
    if step("remove-tsv") != checkpoint:
        out.append("eco[remove-tsv]: removing the added TSV did not "
                   "reproduce the pre-edit solve")
    return out


# ---------------------------------------------------------------------------
# Wrapper/TAM scheduling: designer and packer vs exhaustive oracles
# ---------------------------------------------------------------------------
def check_schedule(subject: Subject) -> List[str]:
    """Wrapper-chain designer and session packer vs their exhaustive
    oracles, on test models derived from the subject's own flow run.

    Per width 1..3: the greedy designer's chains must partition every
    internal chain and wrapper cell exactly once, never beat the
    exhaustive optimum, and stay within Graham's LPT bound
    (``3*kernel <= 4*exact``); the staircase must be monotone
    non-increasing in width; and the reduced wrapper (<= the dedicated
    cell count) must never test slower than the dedicated one at equal
    width — the metamorphic heart of the paper's claim. The best-fit
    packer's schedule must validate, and the branch-and-bound
    ``exact_schedule`` must validate too while never losing to the
    heuristic."""
    from repro.core.flow import run_wcm_flow
    from repro.dft.wrapper import dedicated_plan
    from repro.schedule import (DieTestModel, balanced_chain_lengths,
                                best_fit_schedule, design_wrapper,
                                internal_chain_count, staircase)
    from repro.verify.oracles import (exact_schedule,
                                      exact_wrapper_max_length,
                                      schedule_violations)

    out: List[str] = []
    spec = subject.spec
    patterns = 8 + spec.gates % 24  # deterministic, small
    ffs = len(list(subject.problem.scan_ffs))
    internal = (balanced_chain_lengths(ffs, internal_chain_count(ffs))
                if ffs else (1,))
    run = run_wcm_flow(subject.problem, subject.config)
    reduced_cells = run.plan.additional_wrapper_cells
    dedicated_cells = dedicated_plan(subject.problem.netlist
                                     ).wrapped_tsv_count
    reduced = DieTestModel(f"{spec.slug()}_reduced", internal,
                           reduced_cells, patterns)
    dedicated = DieTestModel(f"{spec.slug()}_dedicated", internal,
                             dedicated_cells, patterns)

    previous = {reduced.name: None, dedicated.name: None}
    for width in (1, 2, 3):
        for model in (reduced, dedicated):
            plan = design_wrapper(model, width)
            placed = sorted(e for chain in plan.chains for e in chain)
            want = sorted([f"ic{i}" for i in
                           range(len(model.internal_chains))]
                          + [f"wc{i}" for i in
                             range(model.wrapper_cells)])
            if placed != want:
                out.append(f"schedule[design][{model.name}][w{width}]: "
                           f"chains do not partition the elements "
                           f"({len(placed)} placed vs {len(want)})")
            exact = exact_wrapper_max_length(model, width)
            if plan.max_length < exact:
                out.append(f"schedule[design][{model.name}][w{width}]: "
                           f"greedy max {plan.max_length} beats the "
                           f"exhaustive optimum {exact}")
            if 3 * plan.max_length > 4 * exact:
                out.append(f"schedule[design][{model.name}][w{width}]: "
                           f"greedy max {plan.max_length} outside the "
                           f"LPT bound of optimum {exact}")
            time = staircase(model, width)[-1].time
            if previous[model.name] is not None \
                    and time > previous[model.name]:
                out.append(f"schedule[staircase][{model.name}]: time "
                           f"rose {previous[model.name]} -> {time} at "
                           f"width {width}")
            previous[model.name] = time
        if staircase(reduced, width)[-1].time \
                > staircase(dedicated, width)[-1].time:
            out.append(f"schedule[meta][w{width}]: reduced wrapper "
                       f"({reduced.wrapper_cells} cells) tests slower "
                       f"than dedicated ({dedicated.wrapper_cells})")

    third = DieTestModel(f"{spec.slug()}_shifted", internal,
                         reduced_cells, patterns + 3)
    models = [reduced, dedicated, third]
    budget = 3
    heuristic = best_fit_schedule(models, budget)
    for problem in schedule_violations(heuristic, models, budget):
        out.append(f"schedule[pack]: {problem}")
    if heuristic.fingerprint() != best_fit_schedule(models,
                                                    budget).fingerprint():
        out.append("schedule[pack]: best-fit schedule is not "
                   "deterministic across two runs")
    exact = exact_schedule(models, budget)
    for problem in schedule_violations(exact, models, budget):
        out.append(f"schedule[oracle]: {problem}")
    if exact.makespan > heuristic.makespan:
        out.append(f"schedule[oracle]: exhaustive makespan "
                   f"{exact.makespan} worse than best-fit "
                   f"{heuristic.makespan}")
    if heuristic.makespan > 3 * exact.makespan:
        out.append(f"schedule[pack]: best-fit makespan "
                   f"{heuristic.makespan} more than 3x the optimum "
                   f"{exact.makespan}")
    return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
CHECKS: Dict[str, Callable[[Subject], List[str]]] = {
    "sim": check_simulation,
    "faults": check_fault_detection,
    "sta": check_sta,
    "sta-reuse": check_sta_reuse,
    "graph": check_graph,
    "clique": check_clique,
    "meta-isometry": check_metamorphic_isometry,
    "meta-thresholds": check_metamorphic_thresholds,
    "meta-isolated-ff": check_metamorphic_isolated_ff,
    "eco": check_eco,
    "schedule": check_schedule,
}


def run_checks(spec: InstanceSpec,
               names: Optional[List[str]] = None) -> List[str]:
    """Build *spec* and run the named checks (default: all). Exceptions
    are folded into divergence strings so the fuzzer can shrink crash
    inputs the same way as mismatch inputs."""
    selected = names or list(CHECKS)
    unknown = [n for n in selected if n not in CHECKS]
    if unknown:
        raise ValueError(f"unknown checks: {unknown} "
                         f"(have {sorted(CHECKS)})")
    try:
        subject = Subject(spec)
    except Exception as error:  # noqa: BLE001 — any crash is a finding
        return [f"build: {type(error).__name__}: {error}"]
    out: List[str] = []
    for name in selected:
        try:
            out += CHECKS[name](subject)
        except Exception as error:  # noqa: BLE001
            out.append(f"{name}: {type(error).__name__}: {error}")
    return out
