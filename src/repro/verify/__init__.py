"""Differential verification subsystem (DESIGN.md §8).

Brute-force oracles for every optimized kernel, a seeded random
instance generator, metamorphic invariants, a shrinking fuzz driver
(``repro fuzz``) and a mutation-kill self-check that proves the
harness can actually fail.
"""

from repro.verify.checks import CHECKS, Subject, run_checks
from repro.verify.fuzz import FuzzReport, run_fuzz, spec_for_iteration
from repro.verify.instances import InstanceSpec
from repro.verify.mutants import MUTANTS, render_results, self_check
from repro.verify.shrink import shrink

__all__ = [
    "CHECKS",
    "FuzzReport",
    "InstanceSpec",
    "MUTANTS",
    "Subject",
    "render_results",
    "run_checks",
    "run_fuzz",
    "self_check",
    "shrink",
    "spec_for_iteration",
]
