"""Independent brute-force oracles for the optimized kernels.

Every oracle recomputes, from the netlist alone, a result one of the
hand-optimized kernels produces incrementally — and must match it
**byte for byte** (identical floats, identical dict contents). The
oracles deliberately share only leaf arithmetic with the kernels (cell
delay/cap lookups, :class:`~repro.sta.delay.WireModel`, the
truth-table source :data:`~repro.netlist.library.LOGIC_FUNCTIONS`);
all *control flow* is independent:

==============================  =====================================
kernel                          oracle strategy
==============================  =====================================
op-tape block simulation        per-pattern truth-table lookup via
(``atpg/sim.py``)               demand-driven recursion (no tape, no
                                topological order, no packing tricks)
event-driven fault propagation  full forced re-simulation of the
                                faulty machine for every fault
levelized STA with reusable     path-enumeration: memoized recursion
context (``sta/timer.py``)      over the netlist, all loads and wire
                                delays recomputed from scratch
grid-indexed sharing-graph      O(n^2) sweep over all pairs with
sweep (``core/graph.py``)       frozenset cone intersection (no
                                spatial hash, no bitsets)
heuristic clique partition      exact minimum clique partition by
(``core/clique.py``)            branch-and-bound (small instances) —
                                a lower bound on any valid partition
==============================  =====================================

Contracts the oracles pin down (and the fuzzer cross-checks):

* float results must be *identical*, not close: sums replicate the
  kernel's operand order (per-net loads accumulate in ``net.sinks``
  order); max/min reductions are order-independent;
* the branch-fault site resolution mirrors the kernel's documented
  choice: when a gate ties one net to several pins, the fault forces
  the first matching pin in cell pin order;
* the STA oracle replicates the kernel's published asymmetries (e.g.
  output-port required times relax without a constant-net check).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.faults import Fault, FaultKind
from repro.core.config import WcmConfig
from repro.core.graph import GraphStats, WcmGraph, effective_d_th
from repro.core.problem import WcmProblem
from repro.core.testability import OverlapTestabilityEstimator
from repro.core.timing_model import ReuseTimingModel
from repro.dft.testview import TestView
from repro.netlist.core import Instance, Netlist, PortDirection, PortKind
from repro.netlist.library import LOGIC_FUNCTIONS
from repro.sta.constraints import ClockConstraint, UNCONSTRAINED
from repro.sta.delay import WireModel
from repro.sta.timer import (
    DEFAULT_TSV_CAP_FF,
    EndpointSlack,
    TimingResult,
    _UNTIMED_PORT_KINDS,
)
from repro.util.errors import TimingError

INF = math.inf
_X = 2

#: pins that never carry combinational data
_NON_DATA_PINS = ("CK", "SE", "SI")


# ---------------------------------------------------------------------------
# Truth-table gate evaluation
# ---------------------------------------------------------------------------
_TRUTH_TABLES: Dict[Tuple[str, int], Tuple[int, ...]] = {}


def _truth_table(function: str, arity: int) -> Tuple[int, ...]:
    """All 2^arity single-bit outputs of a logic function, built once
    from the library's reference implementation and then *looked up*
    (index arithmetic, no big-int expressions) at simulation time."""
    table = _TRUTH_TABLES.get((function, arity))
    if table is None:
        fn = LOGIC_FUNCTIONS[function]
        rows = []
        for combo in range(1 << arity):
            bits = [(combo >> position) & 1 for position in range(arity)]
            rows.append(fn(bits, 1) & 1)
        table = tuple(rows)
        _TRUTH_TABLES[(function, arity)] = table
    return table


def _data_input_nets(inst: Instance) -> List[str]:
    """Connected data-input nets in cell pin order (the same pin
    filtering the compiled circuit applies)."""
    return [inst.connections[pin.name] for pin in inst.cell.input_pins
            if pin.name not in _NON_DATA_PINS
            and pin.name in inst.connections]


class _NetEvaluator:
    """Demand-driven single-word netlist evaluator.

    ``override`` maps net names to forced words (fault effects);
    ``pinned`` optionally forces one input pin of one gate. Values are
    memoized per evaluator instance.
    """

    def __init__(self, netlist: Netlist, sources: Dict[str, int],
                 mask: int,
                 override: Optional[Dict[str, int]] = None,
                 pinned: Optional[Tuple[str, str, int]] = None) -> None:
        self.netlist = netlist
        self.sources = sources
        self.mask = mask
        self.override = override or {}
        #: (gate name, net name, forced word) — first matching pin only
        self.pinned = pinned
        self._memo: Dict[str, int] = {}
        self._visiting: Set[str] = set()

    def value(self, net_name: str) -> int:
        memo = self._memo
        cached = memo.get(net_name)
        if cached is not None:
            return cached
        if net_name in self.override:
            word = self.override[net_name]
        else:
            word = self._evaluate_driver(net_name)
        memo[net_name] = word
        return word

    def _evaluate_driver(self, net_name: str) -> int:
        net = self.netlist.nets.get(net_name)
        driven_by_gate = (net is not None and net.driver is not None
                          and not net.driver.is_port
                          and not self.netlist.instance(
                              net.driver.owner_name).is_sequential)
        if not driven_by_gate:
            # Port- or FF-driven / floating nets take their source word
            # (tied to 0 when the view declares none).
            return self.sources.get(net_name, 0)
        # A comb-gate value wins over any source binding on the same
        # net — the kernel's tape writes after the source columns.
        inst = self.netlist.instance(net.driver.owner_name)
        if net_name in self._visiting:
            raise TimingError(
                f"{self.netlist.name}: combinational cycle at {net_name!r}")
        self._visiting.add(net_name)
        input_nets = _data_input_nets(inst)
        words = [self.value(n) for n in input_nets]
        if self.pinned is not None and self.pinned[0] == inst.name:
            for position, n in enumerate(input_nets):
                if n == self.pinned[1]:
                    words[position] = self.pinned[2]
                    break
        self._visiting.discard(net_name)
        table = _truth_table(inst.cell.function, len(words))
        mask = self.mask
        out = 0
        bit = 1
        while bit <= mask:
            index = 0
            for position, word in enumerate(words):
                if word & bit:
                    index |= (1 << position)
            if table[index]:
                out |= bit
            bit <<= 1
        return out


def _view_sources(view: TestView, input_words: Sequence[int], mask: int
                  ) -> Dict[str, int]:
    """Source words per net: controls by column, constants, X ties."""
    sources: Dict[str, int] = {}
    column = 0
    seen: Set[str] = set()
    for net in view.control_nets:
        if net in seen:
            continue
        seen.add(net)
        sources[net] = input_words[column] & mask
        column += 1
    for net, constant in view.constant_nets.items():
        sources[net] = mask if constant else 0
    for net in view.x_nets:
        sources.setdefault(net, 0)
    return sources


def oracle_simulate(view: TestView, input_words: Sequence[int], mask: int
                    ) -> Dict[str, int]:
    """Good-machine values of *every* net, by name.

    Independent of the compiled tape: truth-table lookups and
    demand-driven recursion instead of opcode dispatch over a
    topological order.
    """
    sources = _view_sources(view, input_words, mask)
    evaluator = _NetEvaluator(view.netlist, sources, mask)
    return {name: evaluator.value(name) for name in view.netlist.nets}


# ---------------------------------------------------------------------------
# Fault detection by full forced re-simulation
# ---------------------------------------------------------------------------
def _observed_nets(view: TestView) -> List[str]:
    observed: List[str] = []
    seen: Set[str] = set()
    for _label, net in view.observe_nets:
        if net not in seen:
            seen.add(net)
            observed.append(net)
    return observed


def oracle_detect_word(view: TestView, fault: Fault,
                       input_words: Sequence[int], mask: int,
                       good: Optional[Dict[str, int]] = None) -> int:
    """Detection word of one stuck-at fault: re-simulate the whole
    faulty machine and OR the observed differences. No event queue, no
    cone limiting, no activation shortcuts."""
    if good is None:
        good = oracle_simulate(view, input_words, mask)
    forced = mask if int(fault.polarity) else 0
    if fault.kind is FaultKind.OBS_BRANCH:
        # The faulty branch feeds the observer directly; the rest of
        # the net is healthy, so activation equals detection.
        return (good[fault.net] ^ forced) & mask

    sources = _view_sources(view, input_words, mask)
    if fault.kind is FaultKind.STEM:
        evaluator = _NetEvaluator(view.netlist, sources, mask,
                                  override={fault.net: forced})
    else:  # BRANCH: force the first matching pin of the owning gate
        evaluator = _NetEvaluator(view.netlist, sources, mask,
                                  pinned=(fault.owner, fault.net, forced))
    detect = 0
    for net in _observed_nets(view):
        detect |= (evaluator.value(net) ^ good[net])
    return detect & mask


def exhaustive_input_words(input_count: int) -> Tuple[List[int], int]:
    """All 2^n patterns as packed per-column words (pattern k's value
    for column j is bit k of word j), plus the block mask."""
    patterns = 1 << input_count
    mask = (1 << patterns) - 1
    words = []
    for column in range(input_count):
        word = 0
        for k in range(patterns):
            if (k >> column) & 1:
                word |= (1 << k)
        words.append(word)
    return words, mask


# ---------------------------------------------------------------------------
# Path-enumeration STA
# ---------------------------------------------------------------------------
def oracle_sta(netlist: Netlist, constraint: ClockConstraint = UNCONSTRAINED,
               case: Optional[Dict[str, int]] = None,
               wire_model: Optional[WireModel] = None,
               tsv_cap_ff: float = DEFAULT_TSV_CAP_FF) -> TimingResult:
    """From-scratch STA with no shared context and no levelized sweep.

    Positions, loads, wire delays and gate delays are recomputed here;
    arrivals come from memoized forward recursion, required times from
    memoized backward recursion over net sinks. Matches
    :meth:`repro.sta.timer.TimingContext.analyze` byte for byte,
    including its conventions: per-net loads accumulate in
    ``net.sinks`` order (float sums are order-sensitive), FF D
    endpoints skip untimed nets while output-port required times relax
    unconditionally, and a constant mux select drops the unselected
    data pin.
    """
    wire = wire_model or WireModel()

    # ---- geometry and electrical state, recomputed wholesale ---------
    pos: Dict[str, Tuple[float, float]] = {}
    for inst in netlist.instances.values():
        pos[inst.name] = (inst.x, inst.y)
    for port in netlist.ports.values():
        pos[port.name] = (port.x, port.y)

    def sink_cap(sink) -> float:
        if sink.is_port:
            port = netlist.port(sink.owner_name)
            return tsv_cap_ff if port.kind is PortKind.TSV_OUTBOUND else 2.0
        if sink.pin_name == "SI":
            return 0.0
        return netlist.instance(sink.owner_name).cell.input_cap(sink.pin_name)

    loads: Dict[str, float] = {}
    wire_delays: Dict[Tuple[str, str, str], float] = {}
    for net in netlist.nets.values():
        total = 0.0
        driver_pos = (pos[net.driver.owner_name]
                      if net.driver is not None else None)
        for sink in net.sinks:
            if not sink.is_port and sink.pin_name == "SI":
                continue
            total += sink_cap(sink)
            if driver_pos is not None:
                sink_pos = pos[sink.owner_name]
                length = (abs(driver_pos[0] - sink_pos[0])
                          + abs(driver_pos[1] - sink_pos[1]))
                total += wire.wire_cap_ff(length)
        loads[net.name] = total
        if net.driver is not None:
            dpos = pos[net.driver.owner_name]
            for sink in net.sinks:
                spos = pos[sink.owner_name]
                length = abs(dpos[0] - spos[0]) + abs(dpos[1] - spos[1])
                wire_delays[(net.name, sink.owner_name, sink.pin_name)] = \
                    wire.wire_delay_ps(length, sink_cap(sink))

    gate_delay: Dict[str, float] = {}
    for inst in netlist.instances.values():
        out = inst.output_net()
        if out is not None:
            gate_delay[inst.name] = inst.cell.delay_ps(loads.get(out, 0.0))

    untimed_base = {port.net for port in netlist.ports.values()
                    if port.kind in _UNTIMED_PORT_KINDS
                    and port.net is not None}

    # ---- 3-valued constant propagation, by recursion -----------------
    from repro.atpg.podem import _eval3

    case = case or {}
    consts: Dict[str, int] = {}

    def timed_pairs(inst: Instance) -> List[Tuple[str, str]]:
        return [(p, n) for p, n in inst.input_nets()
                if p not in _NON_DATA_PINS]

    const_memo: Dict[str, int] = {}
    const_visiting: Set[str] = set()

    def const_of(net_name: str) -> int:
        """Final constant value of a net (or _X), replicating the
        kernel's overwrite rule: a gate's non-X output value takes
        precedence over a case entry on the same net."""
        cached = const_memo.get(net_name)
        if cached is not None:
            return cached
        net = netlist.nets.get(net_name)
        value = _X
        if net is not None and net.driver is not None \
                and not net.driver.is_port:
            inst = netlist.instance(net.driver.owner_name)
            if not inst.is_sequential and inst.output_net() == net_name:
                if net_name in const_visiting:
                    raise TimingError(f"{netlist.name}: combinational "
                                      f"cycle at {net_name!r}")
                const_visiting.add(net_name)
                ins = [const_of(n) for _p, n in timed_pairs(inst)]
                const_visiting.discard(net_name)
                value = _eval3(inst.cell.function, ins) if ins else _X
        if value == _X and net_name in case:
            value = case[net_name]
        const_memo[net_name] = value
        return value

    if case:
        for name in netlist.nets:
            if const_of(name) != _X:
                consts[name] = const_memo[name]
        # Sequential Q nets and port-driven nets keep their case value
        # even when no gate drives them (dict(case) seeding).
        for name, value in case.items():
            consts.setdefault(name, value)

    untimed_nets = untimed_base | set(consts)

    def active_input_nets(inst: Instance) -> List[Tuple[str, str]]:
        out_net = inst.output_net()
        if out_net is not None and out_net in consts:
            return []
        pairs = [(p, n) for p, n in timed_pairs(inst)
                 if n not in untimed_nets]
        if inst.cell.function == "mux2":
            s_net = inst.connections.get("S")
            s_val = consts.get(s_net, _X) if s_net else _X
            if s_val == 0:
                pairs = [(p, n) for p, n in pairs if p != "B"]
            elif s_val == 1:
                pairs = [(p, n) for p, n in pairs if p != "A"]
        return pairs

    # ---- forward: arrival by recursion -------------------------------
    arrival: Dict[str, float] = {}
    for port in netlist.ports.values():
        if port.direction is PortDirection.INPUT and port.net is not None \
                and port.kind not in _UNTIMED_PORT_KINDS:
            arrival[port.net] = constraint.input_delay_ps
    ffs = netlist.flip_flops()
    for inst in ffs:
        out = inst.output_net()
        if out is not None:
            arrival[out] = gate_delay[inst.name]

    arrival_done: Set[str] = set(arrival)
    arrival_visiting: Set[str] = set()

    def ensure_arrival(net_name: str) -> None:
        if net_name in arrival_done:
            return
        arrival_done.add(net_name)
        net = netlist.nets.get(net_name)
        if net is None or net.driver is None or net.driver.is_port:
            return
        inst = netlist.instance(net.driver.owner_name)
        if inst.is_sequential or inst.output_net() != net_name \
                or net_name in consts:
            return
        if net_name in arrival_visiting:
            raise TimingError(
                f"{netlist.name}: combinational cycle at {net_name!r}")
        arrival_visiting.add(net_name)
        worst_in = 0.0
        for pin_name, in_net in active_input_nets(inst):
            ensure_arrival(in_net)
            pin_arrival = (arrival.get(in_net, 0.0)
                           + wire_delays.get((in_net, inst.name, pin_name),
                                             0.0))
            worst_in = max(worst_in, pin_arrival)
        arrival_visiting.discard(net_name)
        arrival[net_name] = worst_in + gate_delay[inst.name]

    for inst in netlist.instances.values():
        if inst.is_sequential:
            continue
        out = inst.output_net()
        if out is not None and out not in consts:
            ensure_arrival(out)

    # ---- endpoints ---------------------------------------------------
    period = constraint.period_ps if constraint.is_constrained else INF
    ff_required = period - constraint.setup_ps if period is not INF else INF
    port_required = (period - constraint.output_margin_ps
                     if period is not INF else INF)

    endpoints: List[EndpointSlack] = []
    port_slack: Dict[str, float] = {}
    critical = 0.0

    for inst in ffs:
        net_name = inst.connections.get("D")
        if net_name is None or net_name in untimed_nets:
            continue
        pin_arrival = (arrival.get(net_name, 0.0)
                       + wire_delays.get((net_name, inst.name, "D"), 0.0))
        critical = max(critical, pin_arrival + constraint.setup_ps)
        endpoints.append(EndpointSlack(kind="ff_d", name=inst.name,
                                       arrival_ps=pin_arrival,
                                       required_ps=ff_required))

    for port in netlist.ports.values():
        if port.direction is not PortDirection.OUTPUT or port.net is None \
                or port.net in consts:
            continue
        pin_arrival = (arrival.get(port.net, 0.0)
                       + wire_delays.get((port.net, port.name, ""), 0.0))
        critical = max(critical, pin_arrival + constraint.output_margin_ps)
        endpoint = EndpointSlack(kind="port", name=port.name,
                                 arrival_ps=pin_arrival,
                                 required_ps=port_required)
        endpoints.append(endpoint)
        port_slack[port.name] = endpoint.slack_ps

    # ---- backward: required by recursion over net sinks --------------
    required_memo: Dict[str, float] = {}
    required_visiting: Set[str] = set()

    def required_of(net_name: str) -> float:
        cached = required_memo.get(net_name)
        if cached is not None:
            return cached
        if net_name in required_visiting:
            raise TimingError(
                f"{netlist.name}: combinational cycle at {net_name!r}")
        required_visiting.add(net_name)
        best = INF
        net = netlist.nets.get(net_name)
        for sink in (net.sinks if net is not None else ()):
            if sink.is_port:
                port = netlist.port(sink.owner_name)
                if port.direction is PortDirection.OUTPUT:
                    # The kernel relaxes output ports without a consts
                    # check — replicated deliberately.
                    best = min(best, port_required - wire_delays.get(
                        (net_name, port.name, ""), 0.0))
                continue
            inst = netlist.instance(sink.owner_name)
            if inst.is_sequential:
                if sink.pin_name == "D" and net_name not in untimed_nets:
                    best = min(best, ff_required - wire_delays.get(
                        (net_name, inst.name, "D"), 0.0))
                continue
            out = inst.output_net()
            if out is None or out in consts:
                continue
            if (sink.pin_name, net_name) not in active_input_nets(inst):
                continue
            out_required = required_of(out)
            if out_required is INF:
                continue
            budget = out_required - gate_delay[inst.name]
            best = min(best, budget - wire_delays.get(
                (net_name, inst.name, sink.pin_name), 0.0))
        required_visiting.discard(net_name)
        required_memo[net_name] = best
        return best

    required: Dict[str, float] = {}
    for name in netlist.nets:
        value = required_of(name)
        if value is not INF:
            required[name] = value

    return TimingResult(
        netlist_name=netlist.name,
        constraint=constraint,
        arrival_ps=arrival,
        required_ps=required,
        net_load_ff=dict(loads),
        endpoints=endpoints,
        port_slack_ps=port_slack,
        critical_path_ps=critical,
    )


# ---------------------------------------------------------------------------
# Brute-force O(n^2) sharing graph
# ---------------------------------------------------------------------------
def oracle_build_graph(problem: WcmProblem, kind: PortKind,
                       available_ffs: Sequence[str], config: WcmConfig,
                       timing_model: Optional[ReuseTimingModel] = None,
                       estimator: Optional[OverlapTestabilityEstimator] = None
                       ) -> WcmGraph:
    """Algorithm 1 without the kernels: every pair visited explicitly
    (no spatial hash), cone overlap via frozenset intersection (no
    bitsets), distances straight from coordinates (no memo).

    Shares the :class:`ReuseTimingModel` feasibility leaf with the
    kernel — pass a *fresh* model/estimator so their internal caches
    start empty; the pair visit order matches the kernel's, so two
    fresh estimators see identical call sequences.
    """
    model = timing_model or ReuseTimingModel(problem, config)
    stats = GraphStats()

    tsvs: List[str] = []
    excluded: List[str] = []
    for tsv in problem.tsvs_of_kind(kind):
        if kind is PortKind.TSV_INBOUND:
            eligible = model.inbound_node_eligible(tsv)
        else:
            eligible = model.outbound_node_eligible(tsv)
        (tsvs if eligible else excluded).append(tsv)

    ffs = list(available_ffs)
    nodes = ffs + tsvs
    is_ff = {name: True for name in ffs}
    is_ff.update({name: False for name in tsvs})
    adjacency: Dict[str, Set[str]] = {name: set() for name in nodes}

    stats.ff_nodes = len(ffs)
    stats.tsv_nodes = len(tsvs)
    stats.nodes = len(nodes)
    stats.excluded_tsvs = len(excluded)

    cones = {name: problem.cones.gate_cone(name, kind) for name in nodes}
    location = {name: problem.location_of(name) for name in nodes}
    d_th = effective_d_th(problem, config)
    check_distance = math.isfinite(d_th) and config.scenario.is_timed

    def consider(name_a: str, name_b: str, a_is_ff: bool) -> None:
        if check_distance:
            ax, ay = location[name_a]
            bx, by = location[name_b]
            if abs(ax - bx) + abs(ay - by) >= d_th:
                stats.rejected_distance += 1
                return
        if not model.pair_feasible(name_a, name_b, kind, a_is_ff, False):
            stats.rejected_timing += 1
            return
        if not (cones[name_a] & cones[name_b]):
            adjacency[name_a].add(name_b)
            adjacency[name_b].add(name_a)
            stats.edges += 1
            return
        if not a_is_ff or not config.allow_overlap or estimator is None:
            stats.rejected_overlap += 1
            return
        overlap = problem.cones.overlap(name_a, name_b, kind)
        estimate = estimator.estimate(name_a, name_b, kind, overlap)
        if estimate.within(config.cov_th, config.p_th):
            adjacency[name_a].add(name_b)
            adjacency[name_b].add(name_a)
            stats.edges += 1
            stats.overlap_edges += 1
        else:
            stats.rejected_testability += 1

    for i, tsv_a in enumerate(tsvs):
        for tsv_b in tsvs[i + 1:]:
            consider(tsv_a, tsv_b, a_is_ff=False)
    for ff in ffs:
        for tsv in tsvs:
            consider(ff, tsv, a_is_ff=True)

    return WcmGraph(kind=kind, nodes=nodes, is_ff=is_ff,
                    adjacency=adjacency, excluded_tsvs=excluded,
                    stats=stats)


# ---------------------------------------------------------------------------
# Exact minimum clique partition (branch-and-bound)
# ---------------------------------------------------------------------------
def exact_min_clique_partition(graph: WcmGraph, node_limit: int = 16,
                               step_limit: int = 250_000) -> Optional[int]:
    """Minimum number of cliques covering every graph node, or ``None``
    when the instance exceeds *node_limit* nodes or the search exceeds
    *step_limit* recursion steps.

    Purely graph-theoretic (no capacity/slack constraints), so the
    result is a **lower bound** on the clique count of any valid
    partition — Algorithm 2's heuristic output can never be smaller.
    """
    names = graph.nodes
    n = len(names)
    if n > node_limit:
        return None
    index = {name: position for position, name in enumerate(names)}
    adjacency_bits = [0] * n
    for name, neighbours in graph.adjacency.items():
        i = index[name]
        for other in neighbours:
            adjacency_bits[i] |= (1 << index[other])

    # High-degree nodes first: their clique choices constrain the most.
    order = sorted(range(n), key=lambda i: -bin(adjacency_bits[i]).count("1"))
    best = n  # all-singletons is always valid
    clique_masks: List[int] = []
    steps = 0
    aborted = False

    def descend(position: int) -> None:
        nonlocal best, steps, aborted
        steps += 1
        if steps > step_limit:
            aborted = True
            return
        if aborted or len(clique_masks) >= best:
            return
        if position == n:
            best = len(clique_masks)
            return
        node = order[position]
        bit = 1 << node
        adj = adjacency_bits[node]
        for slot, mask in enumerate(clique_masks):
            if mask & ~adj == 0:  # adjacent to every member
                clique_masks[slot] = mask | bit
                descend(position + 1)
                clique_masks[slot] = mask
                if aborted:
                    return
        if len(clique_masks) + 1 < best:
            clique_masks.append(bit)
            descend(position + 1)
            clique_masks.pop()

    descend(0)
    return None if aborted else best


def partition_violations(graph: WcmGraph, partition, max_group_size: int
                         ) -> List[str]:
    """Structural invariants any Algorithm 2 output must satisfy:
    disjoint cover of all graph nodes, pairwise original-graph
    adjacency inside each clique, at most one FF per clique, group
    size within the design rule."""
    problems: List[str] = []
    seen_tsvs: Dict[str, int] = {}
    seen_ffs: Dict[str, int] = {}
    for clique_index, clique in enumerate(partition.cliques):
        members = list(clique.tsvs) + ([clique.ff] if clique.ff else [])
        if not members:
            problems.append(f"clique {clique_index} is empty")
            continue
        for tsv in clique.tsvs:
            if graph.is_ff.get(tsv, True):
                problems.append(f"clique {clique_index}: {tsv} is not a "
                                f"TSV node of the graph")
            seen_tsvs[tsv] = seen_tsvs.get(tsv, 0) + 1
        if clique.ff is not None:
            if not graph.is_ff.get(clique.ff, False):
                problems.append(f"clique {clique_index}: {clique.ff} is "
                                f"not an FF node of the graph")
            seen_ffs[clique.ff] = seen_ffs.get(clique.ff, 0) + 1
        if len(clique.tsvs) > max_group_size:
            problems.append(f"clique {clique_index}: {len(clique.tsvs)} "
                            f"TSVs exceed max_group_size {max_group_size}")
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if b not in graph.adjacency.get(a, ()):
                    problems.append(
                        f"clique {clique_index}: {a} and {b} are not "
                        f"adjacent in the original graph")
    tsv_nodes = {name for name in graph.nodes if not graph.is_ff[name]}
    ff_nodes = {name for name in graph.nodes if graph.is_ff[name]}
    for tsv, count in seen_tsvs.items():
        if count > 1:
            problems.append(f"TSV {tsv} appears in {count} cliques")
    for ff, count in seen_ffs.items():
        if count > 1:
            problems.append(f"FF {ff} anchors {count} cliques")
    missing_tsvs = tsv_nodes - set(seen_tsvs)
    if missing_tsvs:
        problems.append(f"TSV nodes not covered: {sorted(missing_tsvs)}")
    missing_ffs = ff_nodes - set(seen_ffs)
    if missing_ffs:
        problems.append(f"FF nodes not covered: {sorted(missing_ffs)}")
    return problems


# ---------------------------------------------------------------------------
# Scheduling oracles (re-exported): the exhaustive wrapper-chain
# designer and the branch-and-bound session packer live next to the
# heuristics they check, but they belong to this registry — the fuzzer
# and the mutation-kill harness reach them from here.
# ---------------------------------------------------------------------------
from repro.schedule.oracle import (  # noqa: E402  (re-export)
    exact_schedule,
    exact_wrapper_max_length,
    waterfill_max,
)
from repro.schedule.pack import schedule_violations  # noqa: E402
