"""The fuzz driver: seeded instance streams, budgets, shrinking.

One *iteration* = derive a spec from ``(root seed, index)``, build it,
run the check registry, record divergences. The stream is position-
independent (iteration *i* depends only on the root seed and *i*), so
budget-by-iterations, budget-by-seconds and parallel execution all
visit the identical specs — and a failure report names the exact
``--seed``/iteration to replay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.runtime import instrument, trace
from repro.runtime.parallel import parallel_map
from repro.util.rng import DeterministicRng, derive_seed
from repro.verify.checks import CHECKS, run_checks
from repro.verify.instances import MIN_GATES, InstanceSpec
from repro.verify.shrink import shrink

#: iterations handed to the worker pool per dispatch round; bounds how
#: long a --seconds budget can overshoot.
CHUNK = 16

#: shrinking is ~50 builds per failure; cap how many we polish
MAX_SHRINKS = 5


def spec_for_iteration(root_seed: int, index: int) -> InstanceSpec:
    """The deterministic spec of iteration *index* under *root_seed*."""
    from repro.bench.families import FAMILIES

    rng = DeterministicRng(derive_seed(root_seed, "verify.fuzz", index))
    gates = rng.randint(MIN_GATES, 40)
    ffs = rng.randint(1, 6)
    tsv_in = 0 if rng.random() < 0.10 else rng.randint(1, 6)
    tsv_out = 0 if rng.random() < 0.10 else rng.randint(1, 6)
    # The family axis: roughly half the stream keeps the ITC'99
    # generator, the rest spreads evenly over the topology families.
    family = "itc99" if rng.random() < 0.50 else rng.choice(FAMILIES)
    fanout_cap = rng.choice([None, None, None, 4, 6])
    return InstanceSpec(
        seed=rng.randint(0, 2**31 - 1),
        gates=gates,
        ffs=ffs,
        tsv_in=tsv_in,
        tsv_out=tsv_out,
        family=family,
        fanout_cap=fanout_cap,
        scenario="tight" if rng.random() < 0.70 else "area",
        method="ours" if rng.random() < 0.75 else "agrawal",
        d_th_fraction=rng.choice([None, 0.15, 0.3, 0.5, 0.8]),
        d_th_boundary=rng.random() < 0.20,
        coincident=rng.random() < 0.25,
    )


@dataclass
class FuzzFailure:
    """One diverging iteration, before and after shrinking."""

    index: int
    spec: InstanceSpec
    divergences: List[str]
    shrunk: Optional[InstanceSpec] = None
    repro_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    root_seed: int
    iterations: int = 0
    elapsed_s: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"fuzz: {self.iterations} iterations, seed "
                 f"{self.root_seed}, {self.elapsed_s:.1f}s, "
                 f"{len(self.failures)} failure(s)"]
        for failure in self.failures:
            spec = failure.shrunk or failure.spec
            lines.append(f"  iteration {failure.index}: "
                         f"{failure.divergences[0]}")
            for extra in failure.divergences[1:3]:
                lines.append(f"    {extra}")
            lines.append(f"    spec: {spec}")
            if failure.repro_path:
                lines.append(f"    repro: {failure.repro_path}")
        return "\n".join(lines)


def _fuzz_cell(cell: Tuple[int, int, Tuple[str, ...]]
               ) -> Tuple[int, List[str]]:
    """One iteration; module-level so worker processes can import it."""
    root_seed, index, checks = cell
    spec = spec_for_iteration(root_seed, index)
    return index, run_checks(spec, list(checks) or None)


def run_fuzz(root_seed: int = 0, budget: Optional[int] = None,
             seconds: Optional[float] = None,
             checks: Optional[List[str]] = None,
             jobs: Optional[int] = None,
             shrink_failures: bool = True,
             repro_dir: Optional[Path] = None) -> FuzzReport:
    """Fuzz until the iteration or wall-clock budget is exhausted.

    Exactly one of *budget*/*seconds* may be given (default: 100
    iterations). Iterations are dispatched through the supervised
    ``parallel_map`` in chunks, so ``--jobs N`` changes wall-clock only
    — the visited spec stream is identical.
    """
    if budget is None and seconds is None:
        budget = 100
    unknown = [n for n in (checks or []) if n not in CHECKS]
    if unknown:
        raise ValueError(f"unknown checks: {unknown} "
                         f"(have {sorted(CHECKS)})")
    report = FuzzReport(root_seed=root_seed)
    started = time.monotonic()
    check_key = tuple(checks or ())
    index = 0
    while True:
        if budget is not None and index >= budget:
            break
        if seconds is not None and time.monotonic() - started >= seconds:
            break
        chunk_end = index + CHUNK
        if budget is not None:
            chunk_end = min(chunk_end, budget)
        cells = [(root_seed, i, check_key) for i in range(index, chunk_end)]
        for i, divergences in parallel_map(_fuzz_cell, cells, jobs=jobs,
                                           seed=root_seed):
            report.iterations += 1
            instrument.count("verify.fuzz_iterations")
            if divergences:
                instrument.count("verify.fuzz_failures")
                report.failures.append(FuzzFailure(
                    index=i, spec=spec_for_iteration(root_seed, i),
                    divergences=divergences))
        index = chunk_end

    for failure in report.failures[:MAX_SHRINKS]:
        if shrink_failures:
            failed_checks = _checks_of(failure.divergences)
            failure.shrunk = shrink(failure.spec,
                                    failed_checks or list(check_key)
                                    or None)
        if repro_dir is not None:
            spec = failure.shrunk or failure.spec
            repro_dir = Path(repro_dir)
            repro_dir.mkdir(parents=True, exist_ok=True)
            path = repro_dir / f"{spec.slug()}.json"
            spec.save(path)
            failure.repro_path = str(path)

    report.elapsed_s = time.monotonic() - started
    if trace.active() is not None:
        trace.observe("verify.fuzz_failure_count", len(report.failures))
    return report


def _checks_of(divergences: List[str]) -> List[str]:
    """Registry names recoverable from divergence prefixes, so shrink
    replays only what failed."""
    # Map loose prefixes ("sim", "fault ...", "sta[...]") onto registry
    # names conservatively: anything unmatched reruns everything. A
    # "build:" crash reproduces under any single check, so the cheapest
    # one suffices.
    out: List[str] = []
    for line in divergences:
        for name, prefix in (("sim", "sim"), ("faults", "fault"),
                             ("sta-reuse", "sta[reuse"), ("sta", "sta"),
                             ("graph", "graph"), ("clique", "clique"),
                             ("meta-isometry", "meta[rotate"),
                             ("meta-isometry", "meta[mirror"),
                             ("meta-thresholds", "meta[thresholds"),
                             ("meta-isolated-ff", "meta[isolated"),
                             ("eco", "eco"),
                             ("schedule", "schedule"),
                             ("sim", "build")):
            if line.startswith(prefix):
                if name not in out:
                    out.append(name)
                break
        else:
            return []  # unrecognized: rerun the full registry
    return out
