"""Known-bad kernel mutants and the fuzzer's mutation-kill self-check.

A verification harness that never fails is indistinguishable from one
that checks nothing. Each mutant here monkeypatches one real kernel
into a subtly wrong variant — the kinds of defect the optimized code
paths could actually develop — and the self-check asserts the fuzzer
kills every one of them within a small budget.

The self-check runs **serially in-process**: monkeypatches live in
this interpreter only and would silently vanish inside ``--jobs``
worker processes, turning the check into a vacuous pass.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.runtime import instrument
from repro.verify.checks import run_checks
from repro.verify.fuzz import spec_for_iteration


@contextlib.contextmanager
def _mutant_sim_opcode_swap() -> Iterator[None]:
    """AND2 compiles to the OR2 opcode: the op-tape disagrees with the
    per-gate reference and the truth-table oracle on any AND2 gate."""
    from repro.atpg import sim

    original = sim._OPCODES[("and", 2)]
    sim._OPCODES[("and", 2)] = sim._OP_OR2
    try:
        yield
    finally:
        sim._OPCODES[("and", 2)] = original


@contextlib.contextmanager
def _mutant_grid_dropped_cell() -> Iterator[None]:
    """The spatial hash scans a truncated neighbourhood: pairs in the
    ``-1`` bucket row/column are misclassified as distance-rejected."""
    from repro.core import graph

    original = graph._GRID_OFFSETS
    graph._GRID_OFFSETS = (0, 1)
    try:
        yield
    finally:
        graph._GRID_OFFSETS = original


@contextlib.contextmanager
def _mutant_sta_stale_cache() -> Iterator[None]:
    """``invalidate_nets`` forgets to refresh: the reusable context
    keeps serving pre-edit loads and wire delays."""
    from repro.sta import timer

    original = timer.TimingContext.invalidate_nets

    def stale(self, net_names) -> None:  # noqa: ARG001
        return None

    timer.TimingContext.invalidate_nets = stale
    try:
        yield
    finally:
        timer.TimingContext.invalidate_nets = original


@contextlib.contextmanager
def _mutant_obs_branch_dead() -> Iterator[None]:
    """Faults on observation branches report undetected: a silently
    optimistic fault universe."""
    from repro.atpg import sim

    original = sim.CompiledCircuit.observation_diff

    def dead(self, good, net_id, value, mask) -> int:  # noqa: ARG001
        return 0

    sim.CompiledCircuit.observation_diff = dead
    try:
        yield
    finally:
        sim.CompiledCircuit.observation_diff = original


@contextlib.contextmanager
def _mutant_cone_bitset_alias() -> Iterator[None]:
    """Every cone bitset gains a shared phantom bit: all pairs look
    cone-overlapped, silently rerouting edges through the estimator."""
    from repro.core import graph

    original = graph._cone_bitsets

    def aliased(problem, names, kind):
        out = original(problem, names, kind)
        return {name: value | 1 for name, value in out.items()}

    graph._cone_bitsets = aliased
    try:
        yield
    finally:
        graph._cone_bitsets = original


@contextlib.contextmanager
def _mutant_schedule_chain_drop() -> Iterator[None]:
    """The wrapper-chain designer loses the last wrapper cell: the
    chains no longer partition the cell set, so the die under-tests."""
    from repro.schedule import chains

    original = chains._unit_ids

    def dropped(model):
        return original(model)[:-1]

    chains._unit_ids = dropped
    try:
        yield
    finally:
        chains._unit_ids = original


@contextlib.contextmanager
def _mutant_schedule_pack_overlap() -> Iterator[None]:
    """The best-fit packer never claims its lanes: every die lands at
    cycle 0 and the session rectangles overlap."""
    from repro.schedule import pack

    original = pack._occupy

    def leaky(free, lane, width, finish) -> None:  # noqa: ARG001
        return None

    pack._occupy = leaky
    try:
        yield
    finally:
        pack._occupy = original


@contextlib.contextmanager
def _mutant_schedule_fill_longest() -> Iterator[None]:
    """The designer fills the *most* loaded chain instead of the
    least: every element stacks onto one chain, blowing the LPT bound
    against the exhaustive optimum."""
    from repro.schedule import chains

    original = chains._fill_target

    def longest(loads):
        return max(range(len(loads)), key=lambda i: (loads[i], -i))

    chains._fill_target = longest
    try:
        yield
    finally:
        chains._fill_target = original


#: name -> (description, contextmanager factory)
MUTANTS: Dict[str, tuple] = {
    "sim-opcode-swap": ("op-tape compiles AND2 as OR2",
                        _mutant_sim_opcode_swap),
    "grid-dropped-cell": ("grid sweep drops the -1 bucket offsets",
                          _mutant_grid_dropped_cell),
    "sta-stale-cache": ("TimingContext.invalidate_nets is a no-op",
                        _mutant_sta_stale_cache),
    "obs-branch-dead": ("observation_diff always reports undetected",
                        _mutant_obs_branch_dead),
    "cone-bitset-alias": ("cone bitsets share a phantom overlap bit",
                          _mutant_cone_bitset_alias),
    "schedule-chain-drop": ("wrapper designer drops the last cell",
                            _mutant_schedule_chain_drop),
    "schedule-pack-overlap": ("packer never raises the skyline",
                              _mutant_schedule_pack_overlap),
    "schedule-fill-longest": ("designer fills the most loaded chain",
                              _mutant_schedule_fill_longest),
}


@dataclass
class MutantResult:
    """Outcome of hunting one mutant."""

    name: str
    description: str
    killed: bool
    iterations: int
    #: first divergence message that killed it (diagnostics)
    evidence: Optional[str] = None


def self_check(root_seed: int = 0, budget: int = 150,
               checks: Optional[List[str]] = None,
               mutant_names: Optional[List[str]] = None
               ) -> List[MutantResult]:
    """Inject each mutant and fuzz (serially, in-process) until the
    checks object or the budget runs out. Every mutant must die."""
    selected = mutant_names or list(MUTANTS)
    unknown = [n for n in selected if n not in MUTANTS]
    if unknown:
        raise ValueError(f"unknown mutants: {unknown} "
                         f"(have {sorted(MUTANTS)})")
    results: List[MutantResult] = []
    for name in selected:
        description, factory = MUTANTS[name]
        killed = False
        evidence = None
        iterations = 0
        with factory():
            for index in range(budget):
                iterations += 1
                spec = spec_for_iteration(root_seed, index)
                divergences = run_checks(spec, checks)
                if divergences:
                    killed = True
                    evidence = divergences[0]
                    break
        instrument.count("verify.mutants_killed" if killed
                         else "verify.mutants_survived")
        results.append(MutantResult(name=name, description=description,
                                    killed=killed, iterations=iterations,
                                    evidence=evidence))
    return results


def render_results(results: List[MutantResult]) -> str:
    lines = []
    for result in results:
        verdict = (f"KILLED after {result.iterations} iteration(s)"
                   if result.killed
                   else f"SURVIVED {result.iterations} iteration(s)")
        lines.append(f"mutant {result.name} ({result.description}): "
                     f"{verdict}")
        if result.evidence:
            lines.append(f"  evidence: {result.evidence}")
    return "\n".join(lines)
