"""Greedy repro shrinking: smallest spec that still diverges.

The search space is the :class:`InstanceSpec` itself (not the netlist):
halve the size knobs toward their floors, then clear the shape flags,
re-running the originally-failing checks after each candidate edit and
keeping any candidate that still fails. This converges in a few dozen
builds and the result is directly serializable for ``tests/repros/``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.verify.checks import run_checks
from repro.verify.instances import MIN_FFS, MIN_GATES, InstanceSpec

#: hard cap on candidate builds per shrink (each build is an STA + ATPG)
DEFAULT_ATTEMPTS = 48


def _halve(value: int, floor: int) -> int:
    return max(floor, (value + floor) // 2)


def _candidates(spec: InstanceSpec) -> List[InstanceSpec]:
    """Ordered shrink candidates: big structural cuts first."""
    out: List[InstanceSpec] = []

    def emit(**changes) -> None:
        candidate = dataclasses.replace(spec, **changes)
        if candidate != spec:
            out.append(candidate)

    # Family first: a divergence that survives on the simplest topology
    # (a plain cluster chain) is a far better repro than one entangled
    # with a star hub or the ITC'99 generator's redundancy filter, so
    # the topology axis shrinks before any numeric knob.
    if spec.family != "chain":
        emit(family="chain")
    emit(gates=_halve(spec.gates, MIN_GATES))
    emit(ffs=_halve(spec.ffs, MIN_FFS))
    emit(tsv_in=spec.tsv_in // 2)
    emit(tsv_out=spec.tsv_out // 2)
    emit(gates=max(MIN_GATES, spec.gates - 1))
    emit(ffs=max(MIN_FFS, spec.ffs - 1))
    emit(tsv_in=max(0, spec.tsv_in - 1))
    emit(tsv_out=max(0, spec.tsv_out - 1))
    if spec.fanout_cap is not None:
        emit(fanout_cap=None)
    if spec.coincident:
        emit(coincident=False)
    if spec.d_th_boundary:
        emit(d_th_boundary=False)
    if spec.d_th_fraction is not None:
        emit(d_th_fraction=None)
    if spec.method != "ours":
        emit(method="ours")
    if spec.scenario != "area":
        emit(scenario="area")
    return out


def shrink(spec: InstanceSpec, check_names: Optional[List[str]] = None,
           max_attempts: int = DEFAULT_ATTEMPTS) -> InstanceSpec:
    """Smallest spec (under greedy descent) still failing its checks.

    *check_names* should name only the checks that failed originally —
    re-running the full registry would slow the loop ~9x and risks
    "shrinking" onto an unrelated failure.
    """
    attempts = 0
    current = spec
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if run_checks(candidate, check_names):
                current = candidate
                improved = True
                break  # restart the ladder from the smaller spec
    return current
