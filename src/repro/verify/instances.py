"""Seeded random verification instances and their JSON repro format.

An :class:`InstanceSpec` is a tiny, fully deterministic recipe for one
cross-check subject: a synthetic die (netlist + placement + scan
stitching via the benchmark generator), a timing scenario, and a WCM
method configuration. Everything downstream — test view, STA cases,
sharing graph, clique partition — derives from the spec, so a failing
spec *is* the repro: it serializes to a dozen-line JSON file that
``tests/test_verify_repros.py`` replays forever.

Shape knobs deliberately cover the degenerate corners the kernels
special-case: zero TSVs in either direction (empty sharing graphs),
coincident FF/TSV coordinates (zero distances, zero wire delay),
``d_th`` pinned exactly onto a realized pair distance (the ``>=``
boundary), and the untimed area scenario (distance check disabled).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.bench.generator import DieGeneratorConfig, generate_die
from repro.bench.itc99 import DieProfile
from repro.core.config import Scenario, WcmConfig
from repro.core.problem import WcmProblem, build_problem, tight_clock_for
from repro.dft.scan import stitch_scan_chains
from repro.netlist.core import Netlist, PortKind
from repro.place.placer import place_die
from repro.util.errors import ReproError

#: bump when the JSON layout changes incompatibly
SCHEMA_VERSION = 1

#: floors below which the generator cannot produce a closed netlist
MIN_GATES = 12
MIN_FFS = 1


@dataclass(frozen=True)
class InstanceSpec:
    """Deterministic recipe for one verification instance."""

    seed: int
    gates: int = 24
    ffs: int = 4
    tsv_in: int = 3
    tsv_out: int = 3
    #: "itc99" (Table-II-calibrated generator) or a topology family
    #: from :data:`repro.bench.families.FAMILIES`
    family: str = "itc99"
    #: override the generator's ordinary-net fan-out cap (hubs get 2x);
    #: None keeps the generator defaults
    fanout_cap: Optional[int] = None
    #: "tight" (performance-optimized, timed) or "area" (untimed)
    scenario: str = "tight"
    #: "ours" or "agrawal"
    method: str = "ours"
    #: d_th as a fraction of die span (None → generator default 0.8)
    d_th_fraction: Optional[float] = None
    #: snap d_th exactly onto a realized node-pair distance
    d_th_boundary: bool = False
    #: snap FF coordinates onto TSV port coordinates
    coincident: bool = False
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def profile(self) -> DieProfile:
        return DieProfile(
            circuit=f"fz{self.seed}",
            die_index=0,
            scan_flip_flops=self.ffs,
            gates=self.gates,
            inbound_tsvs=self.tsv_in,
            outbound_tsvs=self.tsv_out,
        )

    def build_netlist(self) -> Netlist:
        """Generated, placed, scan-stitched die netlist."""
        if self.family == "itc99":
            config = DieGeneratorConfig()
            if self.fanout_cap is not None:
                config = dataclasses.replace(
                    config, max_fanout=self.fanout_cap,
                    max_hub_fanout=2 * self.fanout_cap,
                    tsv_max_fanout=min(config.tsv_max_fanout,
                                       self.fanout_cap))
            netlist = generate_die(self.profile(), seed=self.seed,
                                   config=config)
        else:
            from repro.bench.families import (FAMILIES, FamilySpec,
                                              generate_family_die)
            if self.family not in FAMILIES:
                raise ReproError(f"unknown family {self.family!r} "
                                 f"(have ('itc99',) + {FAMILIES})")
            overrides = {}
            if self.fanout_cap is not None:
                overrides = {"max_fanout": self.fanout_cap,
                             "hub_fanout": 2 * self.fanout_cap,
                             "tsv_max_fanout": min(4, self.fanout_cap)}
            fspec = FamilySpec(gates=self.gates, ffs=self.ffs,
                               tsv_in=self.tsv_in, tsv_out=self.tsv_out,
                               **overrides)
            netlist = generate_family_die(self.family, fspec,
                                          seed=self.seed,
                                          name=self.profile().name)
        place_die(netlist)
        if self.coincident:
            tsv_ports = [p for p in netlist.ports.values() if p.is_tsv]
            for ff, port in zip(netlist.scan_flip_flops(), tsv_ports):
                ff.x, ff.y = port.x, port.y
        stitch_scan_chains(netlist)
        return netlist

    def build_problem(self) -> WcmProblem:
        problem = build_problem(self.build_netlist(), already_prepared=True)
        if self.scenario == "tight":
            problem = problem.retime(tight_clock_for(problem))
        return problem

    def build_scenario(self, problem: WcmProblem) -> Scenario:
        if self.scenario == "tight":
            return Scenario.performance_optimized(
                problem.timing.constraint.period_ps)
        if self.scenario == "area":
            return Scenario.area_optimized()
        raise ReproError(f"unknown scenario {self.scenario!r}")

    def build_config(self, problem: WcmProblem) -> WcmConfig:
        scenario = self.build_scenario(problem)
        if self.method == "ours":
            config = WcmConfig.ours(scenario)
        elif self.method == "agrawal":
            config = WcmConfig.agrawal(scenario)
        else:
            raise ReproError(f"unknown method {self.method!r}")
        if self.d_th_fraction is not None:
            config = dataclasses.replace(config,
                                         d_th_fraction=self.d_th_fraction)
        if self.d_th_boundary:
            distance = _median_pair_distance(problem)
            if distance is not None and distance > 0.0:
                config = dataclasses.replace(config, d_th_um=distance)
        return config

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2,
                          sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "InstanceSpec":
        payload = json.loads(text)
        schema = payload.get("schema", 0)
        if schema != SCHEMA_VERSION:
            raise ReproError(f"repro schema {schema} != {SCHEMA_VERSION}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ReproError(f"unknown repro fields: {sorted(unknown)}")
        return cls(**payload)

    @classmethod
    def load(cls, path: Path) -> "InstanceSpec":
        return cls.from_json(Path(path).read_text())

    def save(self, path: Path) -> None:
        Path(path).write_text(self.to_json())

    def slug(self) -> str:
        """Stable file-name stem for a repro of this spec."""
        parts = [f"s{self.seed}"]
        if self.family != "itc99":
            parts.append(self.family)
        parts += [f"g{self.gates}", f"f{self.ffs}",
                  f"ti{self.tsv_in}", f"to{self.tsv_out}",
                  self.scenario, self.method]
        if self.fanout_cap is not None:
            parts.append(f"fo{self.fanout_cap}")
        if self.d_th_fraction is not None:
            parts.append(f"d{self.d_th_fraction}".replace(".", "p"))
        if self.d_th_boundary:
            parts.append("dboundary")
        if self.coincident:
            parts.append("coincident")
        return "-".join(parts)


def _median_pair_distance(problem: WcmProblem) -> Optional[float]:
    """An exactly realized Manhattan distance between two graph nodes —
    pinning ``d_th`` to it exercises the ``distance >= d_th`` boundary
    with equality actually occurring."""
    names = list(problem.scan_ffs)
    for kind in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND):
        names.extend(problem.tsvs_of_kind(kind))
    locations = [problem.location_of(name) for name in names]
    distances = sorted(
        abs(ax - bx) + abs(ay - by)
        for i, (ax, ay) in enumerate(locations)
        for (bx, by) in locations[i + 1:]
    )
    positive = [d for d in distances if d > 0.0]
    if not positive:
        return None
    return positive[len(positive) // 2]
