"""Structural Verilog writer and reader.

The paper's flow hands synthesized gate-level netlists between tools;
we provide the same interchange point so generated dies can be dumped,
inspected, and re-read. The subset is flat structural Verilog with
named port connections — exactly what the writer emits.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.netlist.core import Netlist, PortDirection, PortKind
from repro.netlist.library import Library, default_library
from repro.util.errors import NetlistError

_KIND_COMMENT = {
    PortKind.PRIMARY_INPUT: "primary_input",
    PortKind.PRIMARY_OUTPUT: "primary_output",
    PortKind.TSV_INBOUND: "tsv_inbound",
    PortKind.TSV_OUTBOUND: "tsv_outbound",
    PortKind.CLOCK: "clock",
    PortKind.SCAN_IN: "scan_in",
    PortKind.SCAN_OUT: "scan_out",
    PortKind.SCAN_ENABLE: "scan_enable",
    PortKind.TEST_MODE: "test_mode",
    PortKind.PSEUDO_INPUT: "pseudo_input",
    PortKind.PSEUDO_OUTPUT: "pseudo_output",
}
_COMMENT_KIND = {v: k for k, v in _KIND_COMMENT.items()}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_$]", "_", name)


def write_verilog(netlist: Netlist) -> str:
    """Serialize *netlist* to flat structural Verilog.

    Port kinds (TSV inbound/outbound, scan, clock) are preserved in
    per-port ``// kind:`` comments so a round-trip keeps the DFT view.
    """
    lines: List[str] = []
    module = _sanitize(netlist.name)
    port_names = [_sanitize(p.name) for p in netlist.ports.values()]
    lines.append(f"module {module} (")
    lines.append("    " + ", ".join(port_names))
    lines.append(");")
    lines.append("")

    for port in netlist.ports.values():
        direction = "input" if port.direction is PortDirection.INPUT else "output"
        kind = _KIND_COMMENT[port.kind]
        lines.append(f"  {direction} {_sanitize(port.name)};  // kind: {kind}")
    lines.append("")

    declared = {_sanitize(p.name) for p in netlist.ports.values()}
    for net in netlist.nets.values():
        wire = _sanitize(net.name)
        if wire not in declared:
            lines.append(f"  wire {wire};")
    lines.append("")

    for inst in netlist.instances.values():
        conns = ", ".join(
            f".{pin}({_sanitize(net)})" for pin, net in sorted(inst.connections.items())
        )
        lines.append(f"  {inst.cell.name} {_sanitize(inst.name)} ({conns});")

    # Ports whose external name differs from the attached net need an
    # explicit alias so a reader can reconnect them.
    lines.append("")
    for port in netlist.ports.values():
        if port.net is not None and _sanitize(port.net) != _sanitize(port.name):
            lines.append(
                f"  // connect_port {_sanitize(port.name)} -> {_sanitize(port.net)}"
            )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_PORT_RE = re.compile(
    rf"(input|output)\s+({_IDENT})\s*;\s*//\s*kind:\s*(\w+)"
)
_WIRE_RE = re.compile(rf"wire\s+({_IDENT})\s*;")
_INST_RE = re.compile(rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_PIN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")
_ALIAS_RE = re.compile(rf"//\s*connect_port\s+({_IDENT})\s*->\s*({_IDENT})")


def read_verilog(text: str, library: Optional[Library] = None) -> Netlist:
    """Parse the structural subset produced by :func:`write_verilog`."""
    library = library or default_library()
    module_match = _MODULE_RE.search(text)
    if module_match is None:
        raise NetlistError("no module declaration found")
    netlist = Netlist(module_match.group(1), library)

    aliases: Dict[str, str] = {
        m.group(1): m.group(2) for m in _ALIAS_RE.finditer(text)
    }

    port_kinds: Dict[str, PortKind] = {}
    for match in _PORT_RE.finditer(text):
        _direction, name, kind_word = match.groups()
        kind = _COMMENT_KIND.get(kind_word)
        if kind is None:
            raise NetlistError(f"unknown port kind comment {kind_word!r}")
        port_kinds[name] = kind

    for match in _WIRE_RE.finditer(text):
        if match.group(1) not in netlist.nets:
            netlist.add_net(match.group(1))

    body = text[module_match.end():]
    for match in _INST_RE.finditer(body):
        cell_name, inst_name, conn_text = match.groups()
        if cell_name in ("input", "output", "wire", "module"):
            continue
        if cell_name not in library:
            continue  # tolerate unknown macros in foreign netlists
        netlist.add_instance(inst_name, cell_name)
        for pin_match in _PIN_RE.finditer(conn_text):
            pin, net = pin_match.groups()
            if net not in netlist.nets:
                netlist.add_net(net)
            netlist.connect(inst_name, pin, net)

    for name, kind in port_kinds.items():
        net_name = aliases.get(name, name)
        if net_name not in netlist.nets:
            netlist.add_net(net_name)
        netlist.add_port(name, kind, net=net_name)

    return netlist
