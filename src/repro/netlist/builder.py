"""Fluent construction helper for netlists.

The raw :class:`~repro.netlist.core.Netlist` mutators are deliberately
low-level (one pin at a time). The builder adds the idioms every
generator and DFT pass needs: "new gate with these input nets, give me
the output net", automatic unique naming, and scan-FF creation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.netlist.core import Instance, Netlist, PortKind
from repro.netlist.library import Library, default_library
from repro.util.errors import NetlistError


class NetlistBuilder:
    """Incrementally build a :class:`Netlist`."""

    def __init__(self, name: str, library: Optional[Library] = None) -> None:
        self.netlist = Netlist(name, library or default_library())
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def unique_name(self, prefix: str) -> str:
        """Return a name like ``prefix_7`` unused by nets and instances."""
        while True:
            count = self._counters.get(prefix, 0)
            self._counters[prefix] = count + 1
            candidate = f"{prefix}_{count}"
            if (candidate not in self.netlist.instances
                    and candidate not in self.netlist.nets
                    and candidate not in self.netlist.ports):
                return candidate

    # ------------------------------------------------------------------
    def add_input(self, name: str, kind: PortKind = PortKind.PRIMARY_INPUT) -> str:
        """Add an input-direction port driving a same-named net."""
        net = self.netlist.add_net(name)
        self.netlist.add_port(name + "__port", kind, net=name)
        return net.name

    def add_output(self, name: str, source_net: str,
                   kind: PortKind = PortKind.PRIMARY_OUTPUT) -> str:
        """Add an output-direction port observing *source_net*."""
        port = self.netlist.add_port(name + "__port", kind)
        self.netlist.connect_port(port.name, source_net)
        return port.name

    def add_gate(self, cell_name: str, inputs: Sequence[str],
                 name: Optional[str] = None, output_net: Optional[str] = None) -> str:
        """Instantiate a combinational cell fed by *inputs* (net names).

        Returns the output net name.
        """
        cell = self.netlist.library.get(cell_name)
        input_pins = cell.data_input_pins
        if len(inputs) != len(input_pins):
            raise NetlistError(
                f"{cell_name} takes {len(input_pins)} inputs, got {len(inputs)}"
            )
        inst_name = name or self.unique_name(cell_name.split("_")[0].lower())
        out_net = output_net or self.unique_name("n")
        inst = self.netlist.add_instance(inst_name, cell_name)
        for pin, net in zip(input_pins, inputs):
            self.netlist.connect(inst_name, pin.name, net)
        self.netlist.connect(inst_name, cell.output_pin.name, out_net)
        return out_net

    def add_flip_flop(self, d_net: str, clock_net: str, scan: bool = True,
                      name: Optional[str] = None,
                      q_net: Optional[str] = None) -> Instance:
        """Instantiate a (scan) flip-flop; returns the instance.

        Scan-chain pins (SI/SE) are left unconnected here; scan stitching
        is a separate DFT pass (:mod:`repro.dft.scan`).
        """
        cell_name = "SDFF_X1" if scan else "DFF_X1"
        inst_name = name or self.unique_name("ff")
        inst = self.netlist.add_instance(inst_name, cell_name)
        self.netlist.connect(inst_name, "D", d_net)
        self.netlist.connect(inst_name, "CK", clock_net)
        out = q_net or self.unique_name("q")
        self.netlist.connect(inst_name, "Q", out)
        return inst

    def add_clock(self, name: str = "clk") -> str:
        return self.add_input(name, kind=PortKind.CLOCK)

    # ------------------------------------------------------------------
    def finish(self) -> Netlist:
        return self.netlist
