"""Simulation-based functional equivalence checking.

DFT insertion must be functionally invisible: with ``test_mode = 0``
the wrapped die computes exactly what the bare die computes at every
primary output, outbound TSV and flip-flop D input. This module checks
that with packed random simulation over the shared input space — the
standard pre-tapeout sanity check a real flow runs after ECOs.

It is deliberately *not* a formal equivalence checker (no SAT): for
DFT-style transformations, a few thousand random patterns across the
scan-state space give overwhelming confidence, and the checker reports
the first differing observable with a concrete stimulus for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.atpg.sim import CompiledCircuit
from repro.dft.testview import TestView
from repro.netlist.core import Netlist, PortKind
from repro.util.rng import DeterministicRng


@dataclass
class Mismatch:
    """One observable where the two netlists disagree."""

    observable: str
    #: input assignment (control net name -> bit) reproducing it
    stimulus: Dict[str, int]


@dataclass
class EquivalenceResult:
    equivalent: bool
    patterns_checked: int
    compared_observables: int
    #: observables present in only one netlist (not compared)
    uncompared: List[str] = field(default_factory=list)
    mismatch: Optional[Mismatch] = None


def _functional_view(netlist: Netlist) -> TestView:
    """The functional-mode view: test_mode pinned 0, scan_enable 0,
    inbound TSVs treated as real inputs (post-bond functional space),
    observables at POs, outbound TSVs and FF D nets."""
    view = TestView(netlist=netlist)
    for port in netlist.ports.values():
        if port.net is None:
            continue
        if port.kind in (PortKind.PRIMARY_INPUT, PortKind.TSV_INBOUND):
            view.control_nets.append(port.net)
        elif port.kind is PortKind.TEST_MODE:
            view.constant_nets[port.net] = 0
        elif port.kind is PortKind.SCAN_ENABLE:
            view.constant_nets[port.net] = 0
        elif port.kind in (PortKind.PRIMARY_OUTPUT, PortKind.TSV_OUTBOUND):
            view.observe_nets.append((port.name, port.net))
    for ff in netlist.flip_flops():
        q_net = ff.output_net()
        if q_net is not None:
            view.control_nets.append(q_net)
        d_net = ff.connections.get("D")
        if d_net is not None:
            view.observe_nets.append((f"{ff.name}.D", d_net))
    return view


def check_functional_equivalence(golden: Netlist, revised: Netlist,
                                 patterns: int = 2048, seed: int = 2019
                                 ) -> EquivalenceResult:
    """Compare *revised* against *golden* in functional mode.

    Control points are matched by name: primary inputs, inbound TSVs
    and flip-flop Q nets shared by both netlists are driven with the
    same random values; observables (POs, outbound TSVs, FF D inputs)
    shared by both are compared bit-for-bit. Wrapper cells exist only
    in *revised*, so their scan state is part of revised's input space:
    they are driven randomly too — a correct insertion is insensitive
    to them in functional mode.
    """
    view_g = _functional_view(golden)
    view_r = _functional_view(revised)
    circuit_g = CompiledCircuit(view_g)
    circuit_r = CompiledCircuit(view_r)

    rng = DeterministicRng(seed).child("equivalence", golden.name)
    width = 256
    mask = (1 << width) - 1

    # Shared control names drive identical words; extras get their own.
    def column_names(view: TestView, circuit: CompiledCircuit) -> List[str]:
        return [circuit.net_names[nid] for nid in circuit.input_columns]

    cols_g = column_names(view_g, circuit_g)
    cols_r = column_names(view_r, circuit_r)
    shared = set(cols_g) & set(cols_r)

    obs_g = {label: net for label, net in view_g.observe_nets}
    obs_r = {label: net for label, net in view_r.observe_nets}
    compared = sorted(set(obs_g) & set(obs_r))
    uncompared = sorted(set(obs_g) ^ set(obs_r))

    checked = 0
    for _block in range(max(1, (patterns + width - 1) // width)):
        words: Dict[str, int] = {name: rng.getrandbits(width)
                                 for name in shared}
        in_g = [words.get(name, rng.getrandbits(width)) for name in cols_g]
        in_r = [words.get(name, rng.getrandbits(width)) for name in cols_r]
        values_g = circuit_g.simulate(in_g, mask)
        values_r = circuit_r.simulate(in_r, mask)
        for label in compared:
            word_g = values_g[circuit_g.net_ids[obs_g[label]]]
            word_r = values_r[circuit_r.net_ids[obs_r[label]]]
            diff = word_g ^ word_r
            if diff:
                k = (diff & -diff).bit_length() - 1
                stimulus = {name: (words[name] >> k) & 1
                            for name in sorted(shared)}
                return EquivalenceResult(
                    equivalent=False, patterns_checked=checked + k + 1,
                    compared_observables=len(compared),
                    uncompared=uncompared,
                    mismatch=Mismatch(observable=label, stimulus=stimulus),
                )
        checked += width

    return EquivalenceResult(
        equivalent=True, patterns_checked=checked,
        compared_observables=len(compared), uncompared=uncompared,
    )
