"""Levelization and fan-in/fan-out cone analysis.

The clique-graph construction of the paper needs two structural
queries on the die netlist:

* *fan-out cone* of a source (scan FF output or inbound TSV): all logic
  reachable going forward, stopping at sequential capture points, TSVs
  and primary outputs;
* *fan-in cone* of a sink (scan FF data input or outbound TSV): all
  logic reachable going backward, stopping at sequential launch points,
  TSVs and primary inputs.

Cones are returned as frozensets of object names (instances and ports),
endpoints included, so overlap tests are set intersections.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.netlist.core import Netlist, Pin, PortDirection
from repro.util.errors import NetlistError


def topological_instances(netlist: Netlist) -> List[str]:
    """Topologically order *combinational* instances (Kahn's algorithm).

    Sequential instances and ports are sources/sinks, not ordered nodes.
    Raises :class:`NetlistError` on a combinational cycle.
    """
    if netlist._topo_cache is not None:
        return netlist._topo_cache

    indegree: Dict[str, int] = {}
    dependents: Dict[str, List[str]] = {}

    for inst in netlist.instances.values():
        if inst.is_sequential:
            continue
        count = 0
        for _pin, net_name in inst.input_nets():
            net = netlist.net(net_name)
            drv = net.driver
            if drv is None or drv.is_port:
                continue
            driver_inst = netlist.instance(drv.owner_name)
            if driver_inst.is_sequential:
                continue
            count += 1
            dependents.setdefault(drv.owner_name, []).append(inst.name)
        indegree[inst.name] = count

    ready = deque(sorted(name for name, deg in indegree.items() if deg == 0))
    order: List[str] = []
    while ready:
        name = ready.popleft()
        order.append(name)
        for dep in dependents.get(name, ()):
            indegree[dep] -= 1
            if indegree[dep] == 0:
                ready.append(dep)

    if len(order) != len(indegree):
        stuck = [n for n, d in indegree.items() if d > 0][:5]
        raise NetlistError(
            f"{netlist.name}: combinational cycle involving {stuck} "
            f"({len(indegree) - len(order)} gates unplaced)"
        )
    netlist._topo_cache = order
    return order


def combinational_levels(netlist: Netlist) -> Dict[str, int]:
    """Level of each combinational instance (sources at level 0)."""
    levels: Dict[str, int] = {}
    for name in topological_instances(netlist):
        inst = netlist.instance(name)
        level = 0
        for _pin, net_name in inst.input_nets():
            drv = netlist.net(net_name).driver
            if drv is None or drv.is_port:
                continue
            driver_inst = netlist.instance(drv.owner_name)
            if driver_inst.is_sequential:
                continue
            level = max(level, levels[drv.owner_name] + 1)
        levels[name] = level
    return levels


def _forward_from_net(netlist: Netlist, net_name: str, visited_nets: Set[str],
                      cone: Set[str]) -> None:
    stack = [net_name]
    while stack:
        current = stack.pop()
        if current in visited_nets:
            continue
        visited_nets.add(current)
        net = netlist.net(current)
        for sink in net.sinks:
            if sink.is_port:
                cone.add(sink.owner_name)
                continue
            inst = netlist.instance(sink.owner_name)
            if inst.name in cone:
                continue
            cone.add(inst.name)
            if inst.is_sequential:
                continue  # capture endpoint; do not cross
            out = inst.output_net()
            if out is not None:
                stack.append(out)


def _backward_from_net(netlist: Netlist, net_name: str, visited_nets: Set[str],
                       cone: Set[str]) -> None:
    stack = [net_name]
    while stack:
        current = stack.pop()
        if current in visited_nets:
            continue
        visited_nets.add(current)
        net = netlist.net(current)
        drv = net.driver
        if drv is None:
            continue
        if drv.is_port:
            cone.add(drv.owner_name)
            continue
        inst = netlist.instance(drv.owner_name)
        if inst.name in cone:
            continue
        cone.add(inst.name)
        if inst.is_sequential:
            continue  # launch endpoint; do not cross
        for _pin, in_net in inst.input_nets():
            stack.append(in_net)


def fanout_cone(netlist: Netlist, source: str) -> FrozenSet[str]:
    """Fan-out cone of *source* (an instance name or input-direction port).

    For a sequential instance the walk starts at its output net; for a
    port at its connected net. The source itself is not included.
    """
    cone: Set[str] = set()
    visited: Set[str] = set()
    if source in netlist.instances:
        inst = netlist.instance(source)
        out = inst.output_net()
        if out is not None:
            _forward_from_net(netlist, out, visited, cone)
    elif source in netlist.ports:
        port = netlist.port(source)
        if port.direction is not PortDirection.INPUT:
            raise NetlistError(f"fanout cone of output port {source!r} is empty by definition")
        if port.net is not None:
            _forward_from_net(netlist, port.net, visited, cone)
    else:
        raise NetlistError(f"{netlist.name}: unknown object {source!r}")
    cone.discard(source)
    return frozenset(cone)


def fanin_cone(netlist: Netlist, sink: str) -> FrozenSet[str]:
    """Fan-in cone of *sink* (an instance name or output-direction port).

    For a sequential instance the walk starts at its D-input net; for a
    port at its connected net. The sink itself is not included.
    """
    cone: Set[str] = set()
    visited: Set[str] = set()
    if sink in netlist.instances:
        inst = netlist.instance(sink)
        start_nets = [net for pin, net in inst.input_nets() if pin not in ("CK", "SE")]
        for net_name in start_nets:
            _backward_from_net(netlist, net_name, visited, cone)
    elif sink in netlist.ports:
        port = netlist.port(sink)
        if port.direction is not PortDirection.OUTPUT:
            raise NetlistError(f"fanin cone of input port {sink!r} is empty by definition")
        if port.net is not None:
            _backward_from_net(netlist, port.net, visited, cone)
    else:
        raise NetlistError(f"{netlist.name}: unknown object {sink!r}")
    cone.discard(sink)
    return frozenset(cone)


def cones_overlap(cone_a: Iterable[str], cone_b: Iterable[str]) -> bool:
    """True when two cones share any gate, FF or port."""
    set_a = cone_a if isinstance(cone_a, (set, frozenset)) else set(cone_a)
    return any(item in set_a for item in cone_b)
