"""Standard-cell library model with a 45 nm-flavoured default library.

The library provides, for every cell type:

* pin names, directions and input capacitances (fF),
* a logic function evaluated over *packed* integer words, so a single
  Python big-int bitwise operation simulates the cell for hundreds of
  patterns at once,
* a linear delay model ``delay = intrinsic + drive_resistance * load``
  (ps, with load in fF), the same first-order model the paper's capacity
  threshold ``cap_th`` is defined against,
* a maximum load capacitance (``max_load_ff``) from which the wrapper
  cell capacity threshold is derived.

Numbers are modelled on open 45 nm data (NanGate-class): input caps of a
unit-drive gate near 1.6-2.6 fF, FO4-ish delays in tens of picoseconds.
The algorithms depend only on the *relative* structure of these numbers.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.util.errors import LibraryError


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class CellPin:
    """A pin on a cell *type* (not on an instance)."""

    name: str
    direction: PinDirection
    cap_ff: float = 0.0  # input capacitance; 0 for outputs


# A logic function maps (input words in pin order, width mask) -> output word.
LogicFn = Callable[[Sequence[int], int], int]


def _fn_buf(ins: Sequence[int], mask: int) -> int:
    return ins[0] & mask


def _fn_inv(ins: Sequence[int], mask: int) -> int:
    return ~ins[0] & mask


def _fn_and(ins: Sequence[int], mask: int) -> int:
    out = mask
    for word in ins:
        out &= word
    return out


def _fn_or(ins: Sequence[int], mask: int) -> int:
    out = 0
    for word in ins:
        out |= word
    return out & mask


def _fn_nand(ins: Sequence[int], mask: int) -> int:
    return ~_fn_and(ins, mask) & mask


def _fn_nor(ins: Sequence[int], mask: int) -> int:
    return ~_fn_or(ins, mask) & mask


def _fn_xor(ins: Sequence[int], mask: int) -> int:
    out = 0
    for word in ins:
        out ^= word
    return out & mask


def _fn_xnor(ins: Sequence[int], mask: int) -> int:
    return ~_fn_xor(ins, mask) & mask


def _fn_mux2(ins: Sequence[int], mask: int) -> int:
    # Pin order: A (select=0), B (select=1), S.
    a, b, s = ins
    return ((a & ~s) | (b & s)) & mask


def _fn_aoi21(ins: Sequence[int], mask: int) -> int:
    # ZN = !((A1 & A2) | B)
    a1, a2, b = ins
    return ~((a1 & a2) | b) & mask


def _fn_oai21(ins: Sequence[int], mask: int) -> int:
    # ZN = !((A1 | A2) & B)
    a1, a2, b = ins
    return ~((a1 | a2) & b) & mask


LOGIC_FUNCTIONS: Dict[str, LogicFn] = {
    "buf": _fn_buf,
    "inv": _fn_inv,
    "and": _fn_and,
    "or": _fn_or,
    "nand": _fn_nand,
    "nor": _fn_nor,
    "xor": _fn_xor,
    "xnor": _fn_xnor,
    "mux2": _fn_mux2,
    "aoi21": _fn_aoi21,
    "oai21": _fn_oai21,
}


@dataclass(frozen=True)
class CellType:
    """An immutable standard-cell definition.

    ``function`` names an entry of :data:`LOGIC_FUNCTIONS` for
    combinational cells and is ``"dff"`` for sequential cells (whose
    next-state logic the simulator handles at the scan boundary, not as
    a gate).
    """

    name: str
    pins: Tuple[CellPin, ...]
    function: str
    intrinsic_delay_ps: float
    drive_resistance: float  # ps per fF of load
    max_load_ff: float
    area_um2: float
    is_sequential: bool = False
    is_scan: bool = False

    def __post_init__(self) -> None:
        names = [p.name for p in self.pins]
        if len(set(names)) != len(names):
            raise LibraryError(f"cell {self.name}: duplicate pin names {names}")
        if not self.is_sequential and self.function not in LOGIC_FUNCTIONS:
            raise LibraryError(
                f"cell {self.name}: unknown logic function {self.function!r}"
            )

    # cached: cells are immutable and these sit on per-gate hot paths
    # (cached_property stores via __dict__, which frozen= permits)
    @functools.cached_property
    def input_pins(self) -> List[CellPin]:
        return [p for p in self.pins if p.direction is PinDirection.INPUT]

    @functools.cached_property
    def output_pin(self) -> CellPin:
        outs = [p for p in self.pins if p.direction is PinDirection.OUTPUT]
        if len(outs) != 1:
            raise LibraryError(f"cell {self.name}: expected 1 output, got {len(outs)}")
        return outs[0]

    def pin(self, name: str) -> CellPin:
        for p in self.pins:
            if p.name == name:
                return p
        raise LibraryError(f"cell {self.name}: no pin named {name!r}")

    def has_pin(self, name: str) -> bool:
        return any(p.name == name for p in self.pins)

    def input_cap(self, pin_name: str) -> float:
        pin = self.pin(pin_name)
        if pin.direction is not PinDirection.INPUT:
            raise LibraryError(f"cell {self.name}: pin {pin_name} is not an input")
        return pin.cap_ff

    def delay_ps(self, load_ff: float) -> float:
        """First-order cell delay under *load_ff* femtofarads of load."""
        return self.intrinsic_delay_ps + self.drive_resistance * max(load_ff, 0.0)

    @property
    def data_input_pins(self) -> List[CellPin]:
        """Input pins that carry logic data (excludes clock / scan-enable)."""
        skip = {"CK", "SE"}
        return [p for p in self.input_pins if p.name not in skip]


def evaluate_cell(cell: CellType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate a combinational cell over packed pattern words."""
    if cell.is_sequential:
        raise LibraryError(f"cell {cell.name} is sequential; cannot evaluate as logic")
    return LOGIC_FUNCTIONS[cell.function](inputs, mask)


@dataclass
class Library:
    """A named collection of :class:`CellType` definitions."""

    name: str
    cells: Dict[str, CellType] = field(default_factory=dict)

    def add(self, cell: CellType) -> None:
        if cell.name in self.cells:
            raise LibraryError(f"duplicate cell type {cell.name}")
        self.cells[cell.name] = cell

    def get(self, name: str) -> CellType:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(f"library {self.name}: unknown cell type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    @property
    def combinational_cells(self) -> List[CellType]:
        return [c for c in self.cells.values() if not c.is_sequential]

    @property
    def sequential_cells(self) -> List[CellType]:
        return [c for c in self.cells.values() if c.is_sequential]


def _inputs(caps: Dict[str, float]) -> Tuple[CellPin, ...]:
    return tuple(
        CellPin(name, PinDirection.INPUT, cap) for name, cap in caps.items()
    )


def _combo(
    name: str,
    function: str,
    input_caps: Dict[str, float],
    out: str,
    intrinsic: float,
    resistance: float,
    max_load: float,
    area: float,
) -> CellType:
    pins = _inputs(input_caps) + (CellPin(out, PinDirection.OUTPUT),)
    return CellType(
        name=name,
        pins=pins,
        function=function,
        intrinsic_delay_ps=intrinsic,
        drive_resistance=resistance,
        max_load_ff=max_load,
        area_um2=area,
    )


def default_library() -> Library:
    """Build the default 45 nm-flavoured library used by all experiments.

    Caps in fF, delays in ps, resistances in ps/fF, area in um^2.
    """
    lib = Library(name="repro45")
    lib.add(_combo("INV_X1", "inv", {"A": 1.6}, "ZN", 8.0, 3.2, 60.0, 0.53))
    lib.add(_combo("INV_X2", "inv", {"A": 3.2}, "ZN", 8.0, 1.6, 120.0, 0.80))
    lib.add(_combo("BUF_X1", "buf", {"A": 1.7}, "Z", 16.0, 3.0, 60.0, 0.80))
    lib.add(_combo("BUF_X2", "buf", {"A": 3.3}, "Z", 16.0, 1.5, 120.0, 1.06))
    lib.add(_combo("NAND2_X1", "nand", {"A1": 1.8, "A2": 1.8}, "ZN", 10.0, 3.6, 55.0, 0.80))
    lib.add(_combo("NAND3_X1", "nand", {"A1": 2.0, "A2": 2.0, "A3": 2.0}, "ZN", 14.0, 4.2, 50.0, 1.06))
    lib.add(_combo("NOR2_X1", "nor", {"A1": 2.0, "A2": 2.0}, "ZN", 12.0, 4.4, 50.0, 0.80))
    lib.add(_combo("NOR3_X1", "nor", {"A1": 2.2, "A2": 2.2, "A3": 2.2}, "ZN", 18.0, 5.2, 45.0, 1.06))
    lib.add(_combo("AND2_X1", "and", {"A1": 1.7, "A2": 1.7}, "Z", 18.0, 3.4, 55.0, 1.06))
    lib.add(_combo("AND3_X1", "and", {"A1": 1.9, "A2": 1.9, "A3": 1.9}, "Z", 22.0, 3.8, 50.0, 1.33))
    lib.add(_combo("OR2_X1", "or", {"A1": 1.8, "A2": 1.8}, "Z", 20.0, 3.6, 55.0, 1.06))
    lib.add(_combo("OR3_X1", "or", {"A1": 2.0, "A2": 2.0, "A3": 2.0}, "Z", 24.0, 4.0, 50.0, 1.33))
    lib.add(_combo("XOR2_X1", "xor", {"A": 2.8, "B": 2.8}, "Z", 26.0, 4.6, 45.0, 1.60))
    lib.add(_combo("XNOR2_X1", "xnor", {"A": 2.8, "B": 2.8}, "ZN", 26.0, 4.6, 45.0, 1.60))
    lib.add(_combo("MUX2_X1", "mux2", {"A": 2.1, "B": 2.1, "S": 2.6}, "Z", 30.0, 4.2, 50.0, 1.86))
    lib.add(_combo("AOI21_X1", "aoi21", {"A1": 1.9, "A2": 1.9, "B": 2.1}, "ZN", 14.0, 4.4, 48.0, 1.06))
    lib.add(_combo("OAI21_X1", "oai21", {"A1": 1.9, "A2": 1.9, "B": 2.1}, "ZN", 14.0, 4.4, 48.0, 1.06))

    dff_pins = (
        CellPin("D", PinDirection.INPUT, 2.0),
        CellPin("CK", PinDirection.INPUT, 1.4),
        CellPin("Q", PinDirection.OUTPUT),
    )
    lib.add(
        CellType(
            name="DFF_X1",
            pins=dff_pins,
            function="dff",
            intrinsic_delay_ps=60.0,
            drive_resistance=3.0,
            max_load_ff=60.0,
            area_um2=4.52,
            is_sequential=True,
        )
    )
    sdff_pins = (
        CellPin("D", PinDirection.INPUT, 2.0),
        CellPin("SI", PinDirection.INPUT, 2.0),
        CellPin("SE", PinDirection.INPUT, 1.8),
        CellPin("CK", PinDirection.INPUT, 1.4),
        CellPin("Q", PinDirection.OUTPUT),
    )
    lib.add(
        CellType(
            name="SDFF_X1",
            pins=sdff_pins,
            function="dff",
            intrinsic_delay_ps=64.0,
            drive_resistance=3.0,
            max_load_ff=60.0,
            area_um2=6.38,
            is_sequential=True,
            is_scan=True,
        )
    )
    return lib


#: Default capacity threshold (fF) a single wrapper-cell driver can carry.
#: The paper's ``cap_th`` comes "from cell library": a reused scan FF (or
#: dedicated wrapper cell) drives the TSV's test-mode load through an X2
#: buffer, so the limit is the BUF_X2 max load.
DEFAULT_CAP_TH_FF = default_library().get("BUF_X2").max_load_ff
