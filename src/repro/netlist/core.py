"""Core netlist data model: pins, nets, ports, instances, netlists.

Design notes
------------
* A :class:`Net` has exactly one driver (an instance output pin or an
  input-direction port) and any number of sinks (instance input pins or
  output-direction ports). Connectivity is maintained bidirectionally by
  :class:`Netlist` mutators so cone/timing traversals are O(edges).
* TSVs are modelled as die *ports* of kind ``TSV_INBOUND`` (an input to
  the die whose driver is the absent neighbouring die) or
  ``TSV_OUTBOUND`` (an output of the die). This is all pre-bond test
  analysis needs: pre-bond, an inbound TSV is an uncontrollable input
  and an outbound TSV an unobservable output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.netlist.library import CellType, Library, PinDirection
from repro.util.errors import NetlistError


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


class PortKind(enum.Enum):
    PRIMARY_INPUT = "primary_input"
    PRIMARY_OUTPUT = "primary_output"
    TSV_INBOUND = "tsv_inbound"
    TSV_OUTBOUND = "tsv_outbound"
    CLOCK = "clock"
    SCAN_IN = "scan_in"
    SCAN_OUT = "scan_out"
    SCAN_ENABLE = "scan_enable"
    TEST_MODE = "test_mode"
    #: Virtual control point added by the DFT test view (e.g. a wrapper
    #: cell's scan value driving an inbound TSV net during test).
    PSEUDO_INPUT = "pseudo_input"
    #: Virtual observation point added by the DFT test view.
    PSEUDO_OUTPUT = "pseudo_output"


_INPUT_KINDS = {
    PortKind.PRIMARY_INPUT,
    PortKind.TSV_INBOUND,
    PortKind.CLOCK,
    PortKind.SCAN_IN,
    PortKind.SCAN_ENABLE,
    PortKind.TEST_MODE,
    PortKind.PSEUDO_INPUT,
}


def direction_for_kind(kind: PortKind) -> PortDirection:
    return PortDirection.INPUT if kind in _INPUT_KINDS else PortDirection.OUTPUT


@dataclass(frozen=True)
class Pin:
    """A reference to a pin of an instance or a port endpoint.

    ``owner_kind`` is ``"instance"`` or ``"port"``; ``owner_name`` is the
    instance/port name; ``pin_name`` is the cell pin name (empty for
    ports, which are single-ended).
    """

    owner_kind: str
    owner_name: str
    pin_name: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.owner_kind == "port":
            return f"port:{self.owner_name}"
        return f"{self.owner_name}.{self.pin_name}"

    @property
    def is_port(self) -> bool:
        return self.owner_kind == "port"


@dataclass
class Net:
    """A single-driver signal net."""

    name: str
    driver: Optional[Pin] = None
    sinks: List[Pin] = field(default_factory=list)

    def fanout(self) -> int:
        return len(self.sinks)


@dataclass
class Port:
    """A die-level I/O, including TSV endpoints."""

    name: str
    kind: PortKind
    net: Optional[str] = None  # connected net name
    #: Physical location, filled by placement (um).
    x: float = 0.0
    y: float = 0.0

    @property
    def direction(self) -> PortDirection:
        return direction_for_kind(self.kind)

    @property
    def is_tsv(self) -> bool:
        return self.kind in (PortKind.TSV_INBOUND, PortKind.TSV_OUTBOUND)

    def pin(self) -> Pin:
        return Pin("port", self.name)


@dataclass
class Instance:
    """An instantiated library cell."""

    name: str
    cell: CellType
    #: pin name -> net name
    connections: Dict[str, str] = field(default_factory=dict)
    #: Physical location, filled by placement (um).
    x: float = 0.0
    y: float = 0.0

    @property
    def is_sequential(self) -> bool:
        return self.cell.is_sequential

    @property
    def is_scan(self) -> bool:
        return self.cell.is_scan

    def pin(self, pin_name: str) -> Pin:
        return Pin("instance", self.name, pin_name)

    def output_net(self) -> Optional[str]:
        return self.connections.get(self.cell.output_pin.name)

    def input_nets(self) -> List[Tuple[str, str]]:
        """Return (pin_name, net_name) for every connected input pin."""
        result = []
        for cpin in self.cell.input_pins:
            net = self.connections.get(cpin.name)
            if net is not None:
                result.append((cpin.name, net))
        return result


class Netlist:
    """A flat gate-level netlist for one die (or one full 2D circuit)."""

    def __init__(self, name: str, library: Library) -> None:
        self.name = name
        self.library = library
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.ports: Dict[str, Port] = {}
        #: invalidated by mutation; rebuilt lazily by topology helpers
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, name: str) -> Net:
        if name in self.nets:
            raise NetlistError(f"{self.name}: duplicate net {name!r}")
        net = Net(name=name)
        self.nets[name] = net
        self._topo_cache = None
        return net

    def get_or_add_net(self, name: str) -> Net:
        return self.nets.get(name) or self.add_net(name)

    def add_port(self, name: str, kind: PortKind, net: Optional[str] = None) -> Port:
        if name in self.ports:
            raise NetlistError(f"{self.name}: duplicate port {name!r}")
        port = Port(name=name, kind=kind)
        self.ports[name] = port
        if net is not None:
            self.connect_port(name, net)
        self._topo_cache = None
        return port

    def add_instance(self, name: str, cell_name: str) -> Instance:
        if name in self.instances:
            raise NetlistError(f"{self.name}: duplicate instance {name!r}")
        cell = self.library.get(cell_name)
        inst = Instance(name=name, cell=cell)
        self.instances[name] = inst
        self._topo_cache = None
        return inst

    def connect(self, instance_name: str, pin_name: str, net_name: str) -> None:
        """Attach an instance pin to a net (creating the net if needed)."""
        inst = self.instance(instance_name)
        cpin = inst.cell.pin(pin_name)  # validates pin exists
        net = self.get_or_add_net(net_name)
        if pin_name in inst.connections:
            raise NetlistError(
                f"{self.name}: {instance_name}.{pin_name} already connected"
            )
        inst.connections[pin_name] = net_name
        pin = inst.pin(pin_name)
        if cpin.direction is PinDirection.OUTPUT:
            if net.driver is not None:
                raise NetlistError(
                    f"{self.name}: net {net_name!r} has multiple drivers "
                    f"({net.driver} and {pin})"
                )
            net.driver = pin
        else:
            net.sinks.append(pin)
        self._topo_cache = None

    def connect_port(self, port_name: str, net_name: str) -> None:
        port = self.port(port_name)
        if port.net is not None:
            raise NetlistError(f"{self.name}: port {port_name!r} already connected")
        net = self.get_or_add_net(net_name)
        port.net = net_name
        pin = port.pin()
        if port.direction is PortDirection.INPUT:
            if net.driver is not None:
                raise NetlistError(
                    f"{self.name}: net {net_name!r} has multiple drivers "
                    f"({net.driver} and port {port_name})"
                )
            net.driver = pin
        else:
            net.sinks.append(pin)
        self._topo_cache = None

    def disconnect_pin(self, instance_name: str, pin_name: str) -> None:
        """Detach an instance pin from its net (used by DFT rewiring)."""
        inst = self.instance(instance_name)
        net_name = inst.connections.pop(pin_name, None)
        if net_name is None:
            return
        net = self.net(net_name)
        pin = inst.pin(pin_name)
        if net.driver == pin:
            net.driver = None
        else:
            net.sinks = [s for s in net.sinks if s != pin]
        self._topo_cache = None

    def retarget_sink(self, sink: Pin, new_net_name: str) -> None:
        """Move one sink pin from its current net onto *new_net_name*.

        This is the primitive wrapper insertion uses to splice a mux in
        front of a TSV's sink logic.
        """
        if sink.is_port:
            port = self.port(sink.owner_name)
            old = port.net
            if old is None:
                raise NetlistError(f"{self.name}: port {sink.owner_name} unconnected")
            old_net = self.net(old)
            old_net.sinks = [s for s in old_net.sinks if s != sink]
            port.net = None
            self.connect_port(sink.owner_name, new_net_name)
        else:
            inst = self.instance(sink.owner_name)
            old = inst.connections.get(sink.pin_name)
            if old is None:
                raise NetlistError(f"{self.name}: {sink} unconnected")
            old_net = self.net(old)
            old_net.sinks = [s for s in old_net.sinks if s != sink]
            del inst.connections[sink.pin_name]
            self.connect(sink.owner_name, sink.pin_name, new_net_name)
        self._topo_cache = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"{self.name}: unknown instance {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"{self.name}: unknown net {name!r}") from None

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise NetlistError(f"{self.name}: unknown port {name!r}") from None

    # ------------------------------------------------------------------
    # Views used throughout the system
    # ------------------------------------------------------------------
    def flip_flops(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.is_sequential]

    def scan_flip_flops(self) -> List[Instance]:
        return [i for i in self.instances.values() if i.is_scan]

    def combinational_instances(self) -> List[Instance]:
        return [i for i in self.instances.values() if not i.is_sequential]

    def ports_of_kind(self, kind: PortKind) -> List[Port]:
        return [p for p in self.ports.values() if p.kind == kind]

    def inbound_tsvs(self) -> List[Port]:
        return self.ports_of_kind(PortKind.TSV_INBOUND)

    def outbound_tsvs(self) -> List[Port]:
        return self.ports_of_kind(PortKind.TSV_OUTBOUND)

    def primary_inputs(self) -> List[Port]:
        return self.ports_of_kind(PortKind.PRIMARY_INPUT)

    def primary_outputs(self) -> List[Port]:
        return self.ports_of_kind(PortKind.PRIMARY_OUTPUT)

    @property
    def gate_count(self) -> int:
        """Number of combinational gates (the paper's ``#gates``)."""
        return sum(1 for i in self.instances.values() if not i.is_sequential)

    @property
    def tsv_count(self) -> int:
        return len(self.inbound_tsvs()) + len(self.outbound_tsvs())

    # ------------------------------------------------------------------
    # Electrical helpers
    # ------------------------------------------------------------------
    def sink_cap_ff(self, net_name: str) -> float:
        """Total input capacitance hanging on a net (pins only, no wire)."""
        net = self.net(net_name)
        total = 0.0
        for sink in net.sinks:
            if sink.is_port:
                continue  # port sinks are die boundaries; no pin cap
            inst = self.instance(sink.owner_name)
            total += inst.cell.input_cap(sink.pin_name)
        return total

    def location_of(self, name: str) -> Tuple[float, float]:
        """Physical (x, y) of an instance or port, post-placement."""
        if name in self.instances:
            inst = self.instances[name]
            return (inst.x, inst.y)
        if name in self.ports:
            port = self.ports[name]
            return (port.x, port.y)
        raise NetlistError(f"{self.name}: unknown object {name!r}")

    # ------------------------------------------------------------------
    # Cloning (DFT builds test-mode netlists on a copy)
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Netlist":
        other = Netlist(name or self.name, self.library)
        for net in self.nets.values():
            copy = other.add_net(net.name)
            copy.driver = net.driver
            copy.sinks = list(net.sinks)
        for port in self.ports.values():
            copy_port = Port(name=port.name, kind=port.kind, net=port.net,
                             x=port.x, y=port.y)
            other.ports[port.name] = copy_port
        for inst in self.instances.values():
            copy_inst = Instance(
                name=inst.name,
                cell=inst.cell,
                connections=dict(inst.connections),
                x=inst.x,
                y=inst.y,
            )
            other.instances[inst.name] = copy_inst
        return other

    def stats(self) -> Dict[str, int]:
        return {
            "instances": len(self.instances),
            "gates": self.gate_count,
            "flip_flops": len(self.flip_flops()),
            "scan_flip_flops": len(self.scan_flip_flops()),
            "nets": len(self.nets),
            "ports": len(self.ports),
            "inbound_tsvs": len(self.inbound_tsvs()),
            "outbound_tsvs": len(self.outbound_tsvs()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"Netlist({self.name!r}, gates={s['gates']}, ffs={s['flip_flops']}, "
            f"tsvs={s['inbound_tsvs']}+{s['outbound_tsvs']})"
        )


NodeRef = Union[Instance, Port]
