"""Structural netlist validation.

Run after generation and after every DFT transformation; a silent
structural error (floating net, double driver) would corrupt every
downstream measurement, so we fail fast instead.
"""

from __future__ import annotations

from typing import List

from repro.netlist.core import Netlist, PortDirection
from repro.netlist.library import PinDirection
from repro.netlist.topology import topological_instances
from repro.util.errors import NetlistError


def validate_netlist(netlist: Netlist, allow_dangling_outputs: bool = True,
                     allow_undriven_nets: bool = False) -> List[str]:
    """Validate structure; returns a list of warnings, raises on errors.

    *allow_dangling_outputs* tolerates nets with a driver but no sinks
    (common right after TSV rewiring). *allow_undriven_nets* tolerates
    driverless nets, which test views use as X sources.
    """
    warnings: List[str] = []

    # Cross-check instance connections against net records.
    for inst in netlist.instances.values():
        for pin_name, net_name in inst.connections.items():
            if net_name not in netlist.nets:
                raise NetlistError(
                    f"{netlist.name}: {inst.name}.{pin_name} references "
                    f"missing net {net_name!r}"
                )
            net = netlist.nets[net_name]
            pin = inst.pin(pin_name)
            cpin = inst.cell.pin(pin_name)
            if cpin.direction is PinDirection.OUTPUT:
                if net.driver != pin:
                    raise NetlistError(
                        f"{netlist.name}: net {net_name!r} driver record "
                        f"disagrees with {pin}"
                    )
            else:
                if pin not in net.sinks:
                    raise NetlistError(
                        f"{netlist.name}: net {net_name!r} sink record "
                        f"missing {pin}"
                    )
        # All data input pins of an instantiated cell must be tied.
        for cpin in inst.cell.input_pins:
            if cpin.name in ("SI", "SE"):
                continue  # scan pins may be stitched later
            if cpin.name not in inst.connections:
                raise NetlistError(
                    f"{netlist.name}: {inst.name}.{cpin.name} unconnected"
                )

    for port in netlist.ports.values():
        if port.net is None:
            warnings.append(f"port {port.name} unconnected")
            continue
        if port.net not in netlist.nets:
            raise NetlistError(
                f"{netlist.name}: port {port.name} references missing net "
                f"{port.net!r}"
            )

    for net in netlist.nets.values():
        if net.driver is None and not allow_undriven_nets:
            raise NetlistError(f"{netlist.name}: net {net.name!r} has no driver")
        if not net.sinks:
            msg = f"net {net.name} has no sinks"
            if allow_dangling_outputs:
                warnings.append(msg)
            else:
                raise NetlistError(f"{netlist.name}: {msg}")

    # Acyclicity (raises on combinational cycles).
    topological_instances(netlist)
    return warnings
