"""Gate-level netlist substrate.

This package is the structural foundation every other subsystem builds
on: a 45 nm-like standard-cell :class:`~repro.netlist.library.Library`
with logic functions, pin capacitances and a linear delay model; the
:class:`~repro.netlist.core.Netlist` container (instances, nets, ports);
levelization and fan-in/fan-out cone analysis; structural Verilog
read/write; and a structural validator.
"""

from repro.netlist.library import (
    CellPin,
    CellType,
    Library,
    PinDirection,
    default_library,
    evaluate_cell,
)
from repro.netlist.core import (
    Instance,
    Net,
    Netlist,
    Pin,
    Port,
    PortDirection,
    PortKind,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.topology import (
    combinational_levels,
    fanin_cone,
    fanout_cone,
    topological_instances,
)
from repro.netlist.validate import validate_netlist
from repro.netlist.equivalence import (
    EquivalenceResult,
    check_functional_equivalence,
)

__all__ = [
    "CellPin",
    "CellType",
    "Library",
    "PinDirection",
    "default_library",
    "evaluate_cell",
    "Instance",
    "Net",
    "Netlist",
    "Pin",
    "Port",
    "PortDirection",
    "PortKind",
    "NetlistBuilder",
    "combinational_levels",
    "fanin_cone",
    "fanout_cone",
    "topological_instances",
    "validate_netlist",
    "EquivalenceResult",
    "check_functional_equivalence",
]
