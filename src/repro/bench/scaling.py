"""Scaling-law study over topology families: where each kernel bends.

``run_scaling`` sweeps (family x gate count x TSV density) cells. For
each cell it generates the family die and pushes it phase by phase
through the kernel stack — generate, compile, packed simulation,
place+stitch, STA, sharing-graph build, clique cover, the full WCM
flow, and a warm ECO re-solve — recording wall-clock per phase plus a
content *identity* payload (counts, fingerprints, critical paths).

Two contracts, pinned by the ``scaling-smoke`` CI job:

* **Determinism modulo timings**: the per-cell identity fingerprints
  (and the report-level :attr:`ScalingReport.fingerprint` over them)
  are byte-identical across runs, ``PYTHONHASHSEED`` values and hosts;
  only the ``*_s`` timing fields vary.
* **No silent caps**: phases skipped because a cell exceeds its cap
  (quadratic-ish phases at 10^5+, full flow at 10^4+ by default) are
  recorded with their reason and rendered; absence of a timing is
  always explained.

The exported timings file is BENCH-compatible — every entry carries
``mean_s`` — so ``repro bench gate BENCH_scaling.json --golden ...``
gates regressions, and extra identity keys per entry ride along
(ignored by the gate's timing comparison).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.families import FAMILIES, FamilySpec, generate_family_die
from repro.util.errors import ReproError

#: phase order, also the render order
PHASES = ("generate", "compile", "sim", "prep", "sta", "graph", "clique",
          "flow", "eco")

#: width of the packed simulation blocks
_SIM_BITS = 64
_FNV_PRIME = 1099511628211
_FNV_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class ScalingCaps:
    """Per-phase gate-count ceilings (None disables a cap).

    ``prep`` covers placement/stitch/STA/graph/clique — near-linear
    kernels with big constants; ``flow`` covers the full WCM flow and
    the ECO session — the clique/flow stack is the quadratic-ish end.
    Generation, compile and packed simulation always run: they are the
    kernels the 10^6-gate end of the sweep exists to measure.
    """

    prep: Optional[int] = 200_000
    flow: Optional[int] = 20_000


@dataclass
class CellResult:
    """One (family, gates, density) cell of the sweep."""

    family: str
    gates: int
    density: float
    #: phase -> [per-repeat wall-clock seconds]
    timings: Dict[str, List[float]] = field(default_factory=dict)
    #: content payload per phase — the determinism surface
    identity: Dict[str, object] = field(default_factory=dict)
    #: phase -> reason string for phases that did not run
    skipped: Dict[str, str] = field(default_factory=dict)

    def key(self) -> str:
        density = f"{self.density:g}".replace(".", "p")
        return f"scale.{self.family}.g{self.gates}.d{density}"

    def fingerprint(self) -> str:
        from repro.util.fingerprint import fingerprint

        return fingerprint({"key": self.key(),
                            "identity": self.identity,
                            "skipped": self.skipped})


@dataclass
class ScalingReport:
    """Outcome of one sweep: cells plus the run-level identity."""

    seed: int
    families: Tuple[str, ...]
    gate_points: Tuple[int, ...]
    densities: Tuple[float, ...]
    caps: ScalingCaps
    repeat: int
    cells: List[CellResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def fingerprint(self) -> str:
        from repro.util.fingerprint import fingerprint

        return fingerprint({
            "schema": "scale/1", "seed": self.seed,
            "families": list(self.families),
            "gate_points": list(self.gate_points),
            "densities": list(self.densities),
            "cells": {cell.key(): cell.fingerprint()
                      for cell in self.cells},
        })

    def bench_timings(self) -> Dict[str, Dict[str, object]]:
        """BENCH-compatible timings: one entry per (cell, phase), each
        carrying the cell's identity fingerprint as an extra key."""
        out: Dict[str, Dict[str, object]] = {}
        for cell in self.cells:
            cell_fp = cell.fingerprint()
            for phase, samples in cell.timings.items():
                out[f"{cell.key()}.{phase}"] = {
                    "mean_s": sum(samples) / len(samples),
                    "min_s": min(samples),
                    "stddev_s": 0.0,
                    "rounds": len(samples),
                    "gates": cell.gates,
                    "family": cell.family,
                    "fingerprint": cell_fp,
                }
        return out

    def render(self) -> str:
        lines = [f"scaling sweep: seed {self.seed}, families "
                 f"{','.join(self.families)}, gates "
                 f"{','.join(str(g) for g in self.gate_points)}, "
                 f"tsv-density {','.join(f'{d:g}' for d in self.densities)}"
                 f", {self.elapsed_s:.1f}s"]
        header = f"{'cell':<28}" + "".join(f"{p:>10}" for p in PHASES)
        lines.append(header)
        for cell in self.cells:
            row = f"{cell.key():<28}"
            for phase in PHASES:
                if phase in cell.timings:
                    samples = cell.timings[phase]
                    row += f"{sum(samples) / len(samples):>10.3f}"
                else:
                    row += f"{'-':>10}"
            lines.append(row)
        skips = [(cell.key(), phase, reason)
                 for cell in self.cells
                 for phase, reason in sorted(cell.skipped.items())]
        if skips:
            lines.append("skipped (no silent caps):")
            for key, phase, reason in skips:
                lines.append(f"  {key}.{phase}: {reason}")
        lines.append(f"scale fingerprint: {self.fingerprint}")
        return "\n".join(lines)


def parse_gate_points(text: str) -> List[int]:
    """``"1e3:1e5"`` -> log-spaced decades [1000, 10000, 100000];
    ``"1e3:1e5:5"`` -> 5 log-spaced points; ``"1000,5000"`` -> listed
    values."""
    text = text.strip()
    if ":" in text:
        parts = text.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(f"bad gates range {text!r} "
                             f"(want LO:HI or LO:HI:N)")
        lo, hi = float(parts[0]), float(parts[1])
        if lo <= 0 or hi < lo:
            raise ReproError(f"bad gates range {text!r}")
        n = int(parts[2]) if len(parts) == 3 \
            else int(round(math.log10(hi / lo))) + 1
        n = max(1, n)
        if n == 1:
            points = [lo]
        else:
            step = (math.log10(hi) - math.log10(lo)) / (n - 1)
            points = [10 ** (math.log10(lo) + i * step) for i in range(n)]
        out = sorted({max(1, int(round(p))) for p in points})
        return out
    try:
        return sorted({max(1, int(float(p))) for p in text.split(",") if p})
    except ValueError:
        raise ReproError(f"bad gates list {text!r}") from None


def _fold(words: Sequence[int]) -> int:
    """Order-sensitive 64-bit FNV fold — a cheap, hash-seed-immune
    content signature for million-entry simulation tapes (a full
    fingerprint would dominate the phase being measured)."""
    fold = 14695981039346656037
    for word in words:
        fold = ((fold ^ (word & _FNV_MASK)) * _FNV_PRIME) & _FNV_MASK
    return fold


#: full netlist fingerprints only below this size — canonicalizing a
#: million-instance payload costs more than generating it
_FULL_FINGERPRINT_GATES = 50_000


def run_scaling(families: Sequence[str],
                gate_points: Sequence[int],
                densities: Sequence[float] = (40.0,),
                seed: int = 2019,
                repeat: int = 1,
                caps: Optional[ScalingCaps] = None,
                progress: Optional[Callable[[str], None]] = None
                ) -> ScalingReport:
    """Run the sweep; see the module docstring for the contracts."""
    import dataclasses

    from repro.atpg.sim import CompiledCircuit
    from repro.bench.families import netlist_fingerprint
    from repro.core.config import Scenario, WcmConfig
    from repro.core.flow import run_wcm_flow
    from repro.core.graph import build_wcm_graph
    from repro.core.clique import partition_cliques
    from repro.core.problem import build_problem, tight_clock_for
    from repro.core.session import (MoveFf, WcmSession,
                                    result_fingerprint)
    from repro.core.testability import OverlapTestabilityEstimator
    from repro.core.timing_model import ReuseTimingModel
    from repro.dft.scan import stitch_scan_chains
    from repro.dft.testview import build_prebond_test_view
    from repro.netlist.core import PortKind
    from repro.place.placer import place_die
    from repro.util.rng import DeterministicRng

    for family in families:
        if family not in FAMILIES:
            raise ReproError(f"unknown family {family!r} "
                             f"(have {FAMILIES})")
    if repeat < 1:
        raise ReproError(f"repeat must be >= 1, got {repeat}")
    caps = caps or ScalingCaps()
    report = ScalingReport(seed=seed, families=tuple(families),
                           gate_points=tuple(gate_points),
                           densities=tuple(densities), caps=caps,
                           repeat=repeat)
    started = time.monotonic()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    for family in families:
        for gates in gate_points:
            for density in densities:
                cell = CellResult(family=family, gates=gates,
                                  density=density)
                report.cells.append(cell)
                note(f"[{cell.key()}]")
                spec = FamilySpec.from_density(gates,
                                               tsvs_per_kgate=density)

                def timed(phase: str, fn):
                    samples = []
                    value = None
                    for _ in range(repeat):
                        t0 = time.perf_counter()
                        value = fn()
                        samples.append(time.perf_counter() - t0)
                    cell.timings[phase] = samples
                    return value

                netlist = timed("generate",
                                lambda: generate_family_die(
                                    family, spec, seed=seed))
                stats = netlist.stats()
                cell.identity["stats"] = stats
                if gates <= _FULL_FINGERPRINT_GATES:
                    cell.identity["netlist_fp"] = \
                        netlist_fingerprint(netlist)

                circuit = timed("compile", lambda: CompiledCircuit(
                    build_prebond_test_view(netlist)))
                words_rng = DeterministicRng(seed).child("scale",
                                                         "patterns")
                words = [words_rng.getrandbits(_SIM_BITS)
                         for _ in range(circuit.input_count)]
                mask = (1 << _SIM_BITS) - 1
                tape = timed("sim", lambda: circuit.simulate(words, mask))
                cell.identity["sim_fold"] = _fold(tape)

                if caps.prep is not None and gates > caps.prep:
                    reason = (f"gates {gates} > prep cap {caps.prep} "
                              f"(placement/STA/graph/clique)")
                    for phase in ("prep", "sta", "graph", "clique",
                                  "flow", "eco"):
                        cell.skipped[phase] = reason
                    continue

                def prep():
                    place_die(netlist)
                    stitch_scan_chains(netlist)
                timed("prep", prep)

                def sta():
                    problem = build_problem(netlist,
                                            already_prepared=True)
                    return problem.retime(tight_clock_for(problem))
                problem = timed("sta", sta)
                cell.identity["critical_path_ps"] = (
                    problem.timing.critical_path_ps,
                    problem.test_timing.critical_path_ps)

                config = WcmConfig.ours(Scenario.performance_optimized(
                    problem.timing.constraint.period_ps))
                ffs = list(problem.scan_ffs)

                def fresh_estimator():
                    if not config.allow_overlap:
                        return None
                    return OverlapTestabilityEstimator(problem, config)

                def graphs():
                    return {kind.name: build_wcm_graph(
                        problem, kind, ffs, config,
                        timing_model=ReuseTimingModel(problem, config),
                        estimator=fresh_estimator())
                            for kind in (PortKind.TSV_INBOUND,
                                         PortKind.TSV_OUTBOUND)}
                graph_by_kind = timed("graph", graphs)
                cell.identity["graph_stats"] = {
                    name: dataclasses.asdict(g.stats)
                    for name, g in sorted(graph_by_kind.items())}

                def cliques():
                    return {name: partition_cliques(
                        g, ReuseTimingModel(problem, config))
                            for name, g in sorted(graph_by_kind.items())}
                partition_by_kind = timed("clique", cliques)
                cell.identity["clique_counts"] = {
                    name: (len(p.cliques), p.additional_cells)
                    for name, p in sorted(partition_by_kind.items())}

                if caps.flow is not None and gates > caps.flow:
                    reason = (f"gates {gates} > flow cap {caps.flow} "
                              f"(full WCM flow / ECO session)")
                    cell.skipped["flow"] = reason
                    cell.skipped["eco"] = reason
                    continue

                result = timed("flow",
                               lambda: run_wcm_flow(problem, config))
                cell.identity["flow_fp"] = result_fingerprint(result)

                session = WcmSession(netlist.clone(), config,
                                     already_prepared=True)
                session.solve()  # warm the session outside the timer
                mover = ffs[0]
                inst = session.netlist.instance(mover)
                session.apply(MoveFf(mover, inst.x + 3.0, inst.y + 2.0))
                warm = timed("eco", session.solve)
                cell.identity["eco_fp"] = result_fingerprint(warm)

    report.elapsed_s = time.monotonic() - started
    return report


def write_scaling_json(report: ScalingReport, path) -> None:
    from repro.runtime import trace

    trace.write_bench_json(path, report.bench_timings())
