"""Deterministic gate-level die generator calibrated to Table II.

``generate_die(profile, seed)`` produces a die netlist with *exactly*
``profile.scan_flip_flops`` scan FFs, ``profile.gates`` combinational
gates, ``profile.inbound_tsvs`` inbound and ``profile.outbound_tsvs``
outbound TSV ports.

Structure. The die is built as a set of *clusters* (a few dozen gates
each) of layered DAG logic, with a small fraction of cross-cluster
wires — the modularity a synthesized RTL design actually has. This is
load-bearing for the WCM reproduction:

* fan-in/fan-out cones stay mostly inside one cluster, so most
  (FF, TSV) and (TSV, TSV) pairs have **non-overlapping** cones — the
  no-overlap baseline [4] gets a rich sharing graph, and allowing
  overlapped cones (the paper's expansion) adds the few percent of
  intra-cluster pairs on top (Fig. 7's ≈2.8 %);
* every gate is pre-assigned a level in ``1..max_depth``, so depth is
  hard-bounded by construction (local cones, sane critical paths);
* designated "hub" signals carry larger fan-out, so a few inbound
  TSVs exceed ``cap_th`` and are excluded by Algorithm 1's node
  filter;
* nearly every signal is consumed (dead logic would be unobservable
  and would deflate fault coverage artificially);
* the cell mix includes XOR-class gates that resist random patterns,
  so the ATPG's deterministic phase is exercised.

Generation is reproducible: same (profile, seed) -> identical netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.itc99 import DieProfile
from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import Netlist, PortKind
from repro.netlist.library import LOGIC_FUNCTIONS, Library
from repro.util.rng import DeterministicRng

#: width of the signature simulation used by the redundancy filter
_SIG_BITS = 128
_SIG_MASK = (1 << _SIG_BITS) - 1

#: (cell name, weight, #data inputs) — weights roughly follow a
#: synthesized-netlist cell histogram at 45 nm.
_GATE_MIX: Tuple[Tuple[str, float, int], ...] = (
    ("NAND2_X1", 22.0, 2),
    ("NOR2_X1", 14.0, 2),
    ("INV_X1", 14.0, 1),
    ("AND2_X1", 9.0, 2),
    ("OR2_X1", 9.0, 2),
    ("NAND3_X1", 5.0, 3),
    ("NOR3_X1", 3.0, 3),
    ("AND3_X1", 2.0, 3),
    ("OR3_X1", 2.0, 3),
    ("XOR2_X1", 4.0, 2),
    ("XNOR2_X1", 2.0, 2),
    ("AOI21_X1", 3.0, 3),
    ("OAI21_X1", 3.0, 3),
    ("MUX2_X1", 2.0, 3),
    ("BUF_X1", 2.0, 1),
)


@dataclass
class DieGeneratorConfig:
    """Structural knobs of the generator (defaults used by experiments)."""

    #: primary inputs/outputs in addition to TSVs; small, as in a deeply
    #: partitioned die where most I/O crosses TSVs.
    primary_inputs: int = 4
    primary_outputs: int = 2
    #: hard bound on combinational depth
    max_depth: int = 12
    #: target gates per cluster (modularity grain)
    cluster_gates: int = 24
    #: hard cap on cluster count
    max_clusters: int = 1024
    #: minimum level-0 sources per cluster — a cluster computing dozens
    #: of gates from two or three variables would be mostly redundant
    #: logic (untestable faults), which synthesized netlists are not
    min_sources_per_cluster: int = 10
    #: probability that a filler input crosses into another cluster
    #: (taps foreign *sources* only, keeping fan-in cones modular)
    p_cross_cluster: float = 0.10
    #: probability that a filler input comes from the unused queue
    #: (raised automatically under backlog pressure)
    p_unused: float = 0.50
    #: probability of drawing a designated hub signal
    p_hub: float = 0.02
    #: fraction of inbound TSVs promoted to hubs (high fan-out)
    hub_inbound_fraction: float = 0.03
    #: fraction of gates promoted to hubs
    hub_internal_fraction: float = 0.01
    #: fan-out cap for ordinary signals (real flows buffer beyond this)
    max_fanout: int = 8
    #: fan-out cap for hub signals
    max_hub_fanout: int = 12
    #: fan-out cap for non-hub inbound TSV nets — keeps their load under
    #: ``cap_th`` so only hub TSVs are excluded by Algorithm 1 (a few %)
    tsv_max_fanout: int = 4
    #: keep each cluster's top layer small enough for its sinks
    top_layer_sink_fraction: float = 0.5


class _ClusterPool:
    """Per-cluster layered signal pool with lazily pruned unused queues."""

    def __init__(self, max_depth: int) -> None:
        self.max_depth = max_depth
        self.by_level: List[List[str]] = [[] for _ in range(max_depth + 1)]
        self.levels: Dict[str, int] = {}
        self.unused_by_level: List[List[str]] = [[] for _ in range(max_depth + 1)]

    def add(self, name: str, level: int) -> None:
        level = min(level, self.max_depth)
        self.by_level[level].append(name)
        self.levels[name] = level
        self.unused_by_level[level].append(name)

    def pop_unused_below(self, level: int, unused_set: set) -> Optional[str]:
        """An unused signal at the deepest level below *level*."""
        for l in range(level - 1, -1, -1):
            queue = self.unused_by_level[l]
            while queue:
                candidate = queue[-1]
                if candidate in unused_set:
                    return candidate
                queue.pop()
        return None


class _DieGenerator:
    def __init__(self, profile: DieProfile, seed: int,
                 config: DieGeneratorConfig, library: Optional[Library]) -> None:
        self.profile = profile
        self.config = config
        self.rng = DeterministicRng(seed).child("die", profile.name)
        self.builder = NetlistBuilder(profile.name, library)
        self.clock_net: str = ""
        # Global bookkeeping shared by all clusters.
        self.use_counts: Dict[str, int] = {}
        self.unused_set: set = set()
        self.hubs: List[str] = []
        self.hub_set: set = set()
        self.tsv_set: set = set()
        self.cluster_of: Dict[str, int] = {}
        self.pools: List[_ClusterPool] = []
        self.remaining_slots = 0
        self.n_clusters = 1
        #: 128-pattern random signature per signal — the redundancy
        #: filter rejects gates whose function collapses to an input,
        #: its complement, or a constant (synthesis would have removed
        #: them, and they are exactly what breeds untestable faults)
        self.signatures: Dict[str, int] = {}
        self.sig_rng = self.rng.child("signatures")

    # ------------------------------------------------------------------
    def run(self) -> Netlist:
        self._plan_clusters()
        self._create_sources()
        self._create_clouds()
        self._create_sinks()
        return self.builder.finish()

    # ------------------------------------------------------------------
    def _plan_clusters(self) -> None:
        config, profile = self.config, self.profile
        total_sources = (config.primary_inputs + profile.inbound_tsvs
                         + profile.scan_flip_flops)
        count = max(1, min(config.max_clusters,
                           round(profile.gates / config.cluster_gates),
                           total_sources // config.min_sources_per_cluster
                           or 1))
        self.n_clusters = count
        self.pools = [_ClusterPool(config.max_depth) for _ in range(count)]

        def split(total: int) -> List[int]:
            base, extra = divmod(total, count)
            return [base + (1 if i < extra else 0) for i in range(count)]

        # Sources are dealt jointly (shuffled round-robin) so every
        # cluster owns at least one level-0 signal; per-type splits
        # would pile all the "extras" onto the early clusters and leave
        # late clusters sourceless.
        tags = (["pi"] * config.primary_inputs
                + ["tsvin"] * profile.inbound_tsvs
                + ["ff"] * profile.scan_flip_flops)
        self.rng.child("source_deal").shuffle(tags)
        per_cluster = {"pi": [0] * count, "tsvin": [0] * count,
                       "ff": [0] * count}
        for index, tag in enumerate(tags):
            per_cluster[tag][index % count] += 1
        self.pis_per_cluster = per_cluster["pi"]
        self.tsvin_per_cluster = per_cluster["tsvin"]
        self.ffs_per_cluster = per_cluster["ff"]

        self.gates_per_cluster = split(profile.gates)
        self.tsvout_per_cluster = split(profile.outbound_tsvs)
        self.pos_per_cluster = split(config.primary_outputs)

    def _register(self, cluster: int, name: str, level: int,
                  hub: bool = False, is_tsv: bool = False) -> None:
        if name not in self.signatures:
            self.signatures[name] = self.sig_rng.getrandbits(_SIG_BITS)
        self.pools[cluster].add(name, level)
        self.cluster_of[name] = cluster
        self.use_counts[name] = 0
        self.unused_set.add(name)
        if hub:
            self.hubs.append(name)
            self.hub_set.add(name)
        if is_tsv:
            self.tsv_set.add(name)

    def _mark_used(self, name: str) -> None:
        self.use_counts[name] += 1
        self.unused_set.discard(name)

    def _fanout_ok(self, name: str) -> bool:
        config = self.config
        if name in self.hub_set:
            cap = config.max_hub_fanout
        elif name in self.tsv_set:
            cap = config.tsv_max_fanout
        else:
            cap = config.max_fanout
        return self.use_counts[name] < cap

    # ------------------------------------------------------------------
    def _create_sources(self) -> None:
        config, profile, rng = self.config, self.profile, self.rng
        self.clock_net = self.builder.add_clock("clk")

        hub_count = max(1, round(profile.inbound_tsvs
                                 * config.hub_inbound_fraction))
        hub_picks = set(rng.sample(range(profile.inbound_tsvs), hub_count)) \
            if profile.inbound_tsvs else set()

        pi_index = tsv_index = ff_index = 0
        self.ff_q_nets: List[str] = []
        for cluster in range(self.n_clusters):
            for _ in range(self.pis_per_cluster[cluster]):
                net = self.builder.add_input(f"pi{pi_index}")
                pi_index += 1
                self._register(cluster, net, level=0)
            for _ in range(self.tsvin_per_cluster[cluster]):
                net = self.builder.add_input(f"tsvin{tsv_index}",
                                             kind=PortKind.TSV_INBOUND)
                self._register(cluster, net, level=0,
                               hub=(tsv_index in hub_picks), is_tsv=True)
                tsv_index += 1
            for _ in range(self.ffs_per_cluster[cluster]):
                net_name = f"ffq{ff_index}"
                ff_index += 1
                self.builder.netlist.add_net(net_name)
                self.ff_q_nets.append(net_name)
                self._register(cluster, net_name, level=0)

    # ------------------------------------------------------------------
    def _level_plan(self, cluster: int) -> List[int]:
        config = self.config
        budget = self.gates_per_cluster[cluster]
        if budget <= 0:
            return []
        # Depth varies per cluster: real designs mix shallow and deep
        # paths, which is where outbound-TSV slack diversity (and hence
        # the s_th filter's bite) comes from.
        low = max(2, config.max_depth // 2)
        depth = self.rng.child("depth", cluster).randint(low,
                                                         config.max_depth)
        depth = min(depth, max(1, budget))
        base, extra = divmod(budget, depth)
        counts = [base + (1 if i < extra else 0) for i in range(depth)]
        sink_capacity = (self.tsvout_per_cluster[cluster]
                         + self.ffs_per_cluster[cluster]
                         + self.pos_per_cluster[cluster])
        top_cap = max(1, int(sink_capacity * config.top_layer_sink_fraction))
        if counts and counts[-1] > top_cap:
            excess = counts[-1] - top_cap
            counts[-1] = top_cap
            for i in range(excess):
                counts[i % max(1, depth - 1)] += 1
        return counts

    def _pick_level_setter(self, cluster: int, level: int) -> str:
        pool, rng = self.pools[cluster], self.rng
        queue = pool.unused_by_level[level - 1]
        while queue and queue[-1] not in self.unused_set:
            queue.pop()
        # Usually take the unused head; sometimes randomize so the
        # redundancy-filter retries see different level setters.
        if queue and rng.random() < 0.8:
            return queue[-1]
        candidates = pool.by_level[level - 1]
        if not candidates:
            # Tiny cluster with an empty layer: any lower local layer.
            for l in range(level - 1, -1, -1):
                if pool.by_level[l]:
                    candidates = pool.by_level[l]
                    break
        for _attempt in range(8):
            candidate = rng.choice(candidates)
            if self._fanout_ok(candidate):
                return candidate
        return rng.choice(candidates)

    def _pick_filler(self, cluster: int, level: int,
                     exclude: List[str]) -> str:
        config, rng = self.config, self.rng
        pool = self.pools[cluster]
        backlog = len(self.unused_set)
        pressure = backlog / max(1, self.remaining_slots)
        p_unused = max(config.p_unused, min(0.98, 1.4 * pressure))
        excluded = set(exclude)

        for _attempt in range(8):
            draw = rng.random()
            candidate: Optional[str] = None
            if draw < p_unused:
                candidate = pool.pop_unused_below(level, self.unused_set)
            elif self.hubs and draw < p_unused + config.p_hub:
                candidate = rng.choice(self.hubs)
            if candidate is None:
                # Random draw: mostly local; cross-cluster taps read
                # foreign level-0 sources only, so a deep fan-in cone
                # imports single foreign sources, not foreign subcones.
                if self.n_clusters > 1 \
                        and rng.random() < config.p_cross_cluster:
                    other = rng.randint(0, self.n_clusters - 2)
                    if other >= cluster:
                        other += 1
                    bucket = self.pools[other].by_level[0]
                else:
                    pick_level = rng.randint(0, level - 1)
                    bucket = pool.by_level[pick_level]
                if not bucket:
                    continue
                candidate = rng.choice(bucket)
            if candidate in excluded:
                continue
            # All picks must respect the global level bound.
            owner = self.pools[self.cluster_of[candidate]]
            if owner.levels[candidate] >= level:
                continue
            if not self._fanout_ok(candidate) and _attempt < 6:
                continue
            return candidate

        # Fallback: any local signal below the level.
        for _attempt in range(32):
            pick_level = rng.randint(0, level - 1)
            bucket = pool.by_level[pick_level]
            if not bucket:
                continue
            candidate = rng.choice(bucket)
            if candidate not in excluded:
                return candidate
        return exclude[0] if exclude else pool.by_level[0][0]

    def _create_clouds(self) -> None:
        rng, config = self.rng, self.config
        cells = [g[0] for g in _GATE_MIX]
        weights = [g[1] for g in _GATE_MIX]
        arity = {g[0]: g[2] for g in _GATE_MIX}

        gate_cells = rng.choices(cells, weights, k=self.profile.gates)
        self.remaining_slots = sum(arity[c] for c in gate_cells)
        hub_budget = max(1, round(self.profile.gates
                                  * config.hub_internal_fraction))
        gate_index = 0
        for cluster in range(self.n_clusters):
            for level_minus_1, count in enumerate(self._level_plan(cluster)):
                level = level_minus_1 + 1
                for _ in range(count):
                    cell_name = gate_cells[gate_index]
                    gate_index += 1
                    n_inputs = arity[cell_name]
                    self.remaining_slots -= n_inputs
                    fn = LOGIC_FUNCTIONS[
                        self.builder.netlist.library.get(cell_name).function]
                    chosen: List[str] = []
                    signature = 0
                    for _retry in range(10):
                        chosen = [self._pick_level_setter(cluster, level)]
                        while len(chosen) < n_inputs:
                            chosen.append(self._pick_filler(cluster, level,
                                                            chosen))
                        signature = fn([self.signatures[c] for c in chosen],
                                       _SIG_MASK)
                        if cell_name in ("INV_X1", "BUF_X1"):
                            break
                        if signature in (0, _SIG_MASK):
                            continue  # constant: redundant gate
                        collapse = False
                        sigs = [self.signatures[c] for c in chosen]
                        for c, s in zip(chosen, sigs):
                            if signature == s or signature == (~s & _SIG_MASK):
                                collapse = True
                                break
                        if not collapse:
                            # Pin-level check: a pin whose stuck value
                            # would not change the function breeds a
                            # locally untestable fault — re-pick.
                            for position in range(len(sigs)):
                                for forced in (0, _SIG_MASK):
                                    trial = list(sigs)
                                    trial[position] = forced
                                    if fn(trial, _SIG_MASK) == signature:
                                        collapse = True
                                        break
                                if collapse:
                                    break
                        if not collapse:
                            break
                    for name in chosen:
                        self._mark_used(name)
                    out_net = self.builder.add_gate(cell_name, chosen)
                    self.signatures[out_net] = signature
                    promote = hub_budget > 0 and rng.random() < 0.02
                    if promote:
                        hub_budget -= 1
                    self._register(cluster, out_net, level=level,
                                   hub=promote)

    # ------------------------------------------------------------------
    def _late_signals(self, cluster: int, count: int, taken: set
                      ) -> List[str]:
        """Sink sources from *cluster*, deepest-unused first."""
        pool, rng = self.pools[cluster], self.rng
        chosen: List[str] = []
        ff_q_set = set(self.ff_q_nets)

        for level in range(pool.max_depth, 0, -1):
            if len(chosen) >= count:
                break
            for name in pool.unused_by_level[level]:
                if len(chosen) >= count:
                    break
                if name not in self.unused_set:
                    continue
                if name in taken or name in ff_q_set:
                    continue
                chosen.append(name)
                taken.add(name)

        attempts = 0
        while len(chosen) < count and attempts < 50 * count + 100:
            attempts += 1
            level = pool.max_depth - int((rng.random() ** 1.5)
                                         * pool.max_depth)
            bucket = pool.by_level[min(level, pool.max_depth)]
            if not bucket:
                continue
            candidate = rng.choice(bucket)
            if candidate in taken or candidate in ff_q_set:
                continue
            chosen.append(candidate)
            taken.add(candidate)

        gate_signals = [n for l in range(1, pool.max_depth + 1)
                        for n in pool.by_level[l]]
        pool_for_repeats = gate_signals or pool.by_level[0]
        while len(chosen) < count:
            chosen.append(rng.choice(pool_for_repeats))
        return chosen

    def _create_sinks(self) -> None:
        taken: set = set()
        out_index = ff_index = po_index = 0
        for cluster in range(self.n_clusters):
            for src in self._late_signals(cluster,
                                          self.tsvout_per_cluster[cluster],
                                          taken):
                self._mark_used(src)
                self.builder.add_output(f"tsvout{out_index}", src,
                                        kind=PortKind.TSV_OUTBOUND)
                out_index += 1
            for src in self._late_signals(cluster,
                                          self.ffs_per_cluster[cluster],
                                          taken):
                self._mark_used(src)
                self.builder.add_flip_flop(
                    src, self.clock_net, scan=True, name=f"ff{ff_index}",
                    q_net=self.ff_q_nets[ff_index],
                )
                ff_index += 1
            for src in self._late_signals(cluster,
                                          self.pos_per_cluster[cluster],
                                          taken):
                self._mark_used(src)
                self.builder.add_output(f"po{po_index}", src)
                po_index += 1


def generate_die(profile: DieProfile, seed: int = 2019,
                 config: Optional[DieGeneratorConfig] = None,
                 library: Optional[Library] = None) -> Netlist:
    """Generate a die netlist matching *profile* exactly.

    The result has unstitched scan FFs (SI/SE open) and no placement;
    run :mod:`repro.dft.scan` and :mod:`repro.place` next, as the flow
    in Fig. 6 does.
    """
    generator = _DieGenerator(profile, seed, config or DieGeneratorConfig(),
                              library)
    return generator.run()
