"""ITC'99 benchmark characteristics from the paper's Table II.

Each :class:`DieProfile` records the per-die statistics the paper
reports after Design Compiler synthesis and 3D-Craft partitioning:
scan flip-flop count, gate count, and inbound/outbound TSV counts.
The circuit generator reproduces these counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.errors import ConfigError

#: Circuits evaluated in the paper, in Table II order.
CIRCUITS: Tuple[str, ...] = ("b11", "b12", "b18", "b20", "b21", "b22")

#: Dies per circuit in the paper's 3D partitioning.
DIES_PER_CIRCUIT = 4


@dataclass(frozen=True)
class DieProfile:
    """Statistics of one die of one circuit (one Table II row)."""

    circuit: str
    die_index: int
    scan_flip_flops: int
    gates: int
    inbound_tsvs: int
    outbound_tsvs: int

    @property
    def name(self) -> str:
        return f"{self.circuit}_die{self.die_index}"

    @property
    def tsvs(self) -> int:
        return self.inbound_tsvs + self.outbound_tsvs


# (circuit, die) -> (#scan FFs, #gates, #inbound TSVs, #outbound TSVs)
# Verbatim from Table II of the paper. #TSVs column is inbound+outbound.
_TABLE_II_RAW: Dict[Tuple[str, int], Tuple[int, int, int, int]] = {
    ("b11", 0): (14, 120, 14, 16),
    ("b11", 1): (15, 234, 27, 43),
    ("b11", 2): (3, 229, 38, 38),
    ("b11", 3): (9, 148, 23, 11),
    ("b12", 0): (7, 304, 23, 27),
    ("b12", 1): (18, 397, 41, 41),
    ("b12", 2): (45, 344, 23, 42),
    ("b12", 3): (51, 317, 25, 5),
    ("b18", 0): (515, 22934, 772, 733),
    ("b18", 1): (1033, 26698, 1561, 1875),
    ("b18", 2): (833, 23575, 1732, 1797),
    ("b18", 3): (641, 20825, 810, 771),
    ("b20", 0): (180, 6937, 251, 363),
    ("b20", 1): (49, 8603, 720, 780),
    ("b20", 2): (118, 8101, 740, 778),
    ("b20", 3): (83, 7325, 408, 235),
    ("b21", 0): (196, 6200, 264, 328),
    ("b21", 1): (113, 9172, 836, 775),
    ("b21", 2): (69, 9093, 837, 895),
    ("b21", 3): (52, 6402, 368, 343),
    ("b22", 0): (225, 9427, 499, 483),
    ("b22", 1): (201, 12726, 1006, 1065),
    ("b22", 2): (181, 13075, 1031, 1064),
    ("b22", 3): (6, 11358, 511, 481),
}

TABLE_II: Dict[Tuple[str, int], DieProfile] = {
    key: DieProfile(
        circuit=key[0],
        die_index=key[1],
        scan_flip_flops=vals[0],
        gates=vals[1],
        inbound_tsvs=vals[2],
        outbound_tsvs=vals[3],
    )
    for key, vals in _TABLE_II_RAW.items()
}


def die_profile(circuit: str, die_index: int) -> DieProfile:
    """Look up one Table II row."""
    try:
        return TABLE_II[(circuit, die_index)]
    except KeyError:
        raise ConfigError(
            f"no Table II profile for {circuit!r} die {die_index} "
            f"(circuits: {CIRCUITS}, dies: 0..{DIES_PER_CIRCUIT - 1})"
        ) from None


def profiles_for_circuit(circuit: str) -> List[DieProfile]:
    """All four die profiles of one circuit, in die order."""
    if circuit not in CIRCUITS:
        raise ConfigError(f"unknown circuit {circuit!r}; expected one of {CIRCUITS}")
    return [die_profile(circuit, die) for die in range(DIES_PER_CIRCUIT)]


def all_die_profiles() -> List[DieProfile]:
    """All 24 die profiles in Table II order."""
    result: List[DieProfile] = []
    for circuit in CIRCUITS:
        result.extend(profiles_for_circuit(circuit))
    return result


def average_stats() -> Dict[str, float]:
    """The paper's Table II 'Average' row, recomputed from the data."""
    profiles = all_die_profiles()
    count = float(len(profiles))
    return {
        "scan_flip_flops": sum(p.scan_flip_flops for p in profiles) / count,
        "gates": sum(p.gates for p in profiles) / count,
        "tsvs": sum(p.tsvs for p in profiles) / count,
        "inbound_tsvs": sum(p.inbound_tsvs for p in profiles) / count,
        "outbound_tsvs": sum(p.outbound_tsvs for p in profiles) / count,
    }
