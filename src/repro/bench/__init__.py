"""Benchmark circuits: ITC'99 Table-II profiles and circuit generation.

The paper evaluates on six ITC'99 circuits (b11, b12, b18, b20, b21,
b22) synthesized at 45 nm and partitioned into four dies by 3D-Craft.
Neither Design Compiler nor 3D-Craft is available offline, so this
package generates deterministic gate-level die netlists *calibrated to
the paper's Table II*: the generated die has exactly the reported
number of scan flip-flops, combinational gates, inbound TSVs and
outbound TSVs, with realistic logic structure (bounded depth, skewed
fanout, mixed cell types). See DESIGN.md §2 for the substitution
argument.
"""

from repro.bench.itc99 import (
    CIRCUITS,
    DieProfile,
    TABLE_II,
    all_die_profiles,
    die_profile,
    profiles_for_circuit,
)
from repro.bench.generator import DieGeneratorConfig, generate_die
from repro.bench.families import (
    CELL_MIXES,
    FAMILIES,
    FamilyInstance,
    FamilyPlan,
    FamilySpec,
    generate_family,
    generate_family_die,
    netlist_fingerprint,
    plan_family,
)
from repro.bench.stack import (bond_stack, generate_family_stack,
                               generate_stack)

__all__ = [
    "CIRCUITS",
    "DieProfile",
    "TABLE_II",
    "all_die_profiles",
    "die_profile",
    "profiles_for_circuit",
    "DieGeneratorConfig",
    "generate_die",
    "generate_stack",
    "CELL_MIXES",
    "FAMILIES",
    "FamilyInstance",
    "FamilyPlan",
    "FamilySpec",
    "generate_family",
    "generate_family_die",
    "netlist_fingerprint",
    "plan_family",
    "bond_stack",
    "generate_family_stack",
]
